//! Storage-engine-v2 differential: chunking and compression are
//! **representation-only**. With the chunk layer on vs off (the
//! `KISHU_CHUNKING=0` kill-switch position, pinned programmatically here
//! because env vars are process-global):
//!
//! 1. every logical view is byte-identical — blob ids, payload bytes read
//!    back, restored namespaces at every checkpoint;
//! 2. every cell report is identical *minus the physical-byte fields*
//!    (`bytes_written`, `chunks_written`, `chunks_deduped`,
//!    `bytes_compressed` are exactly the representation-dependent truth the
//!    receipts exist to tell);
//! 3. fault ledgers are identical — the fault layer draws per logical
//!    operation, so the representation underneath cannot shift a draw;
//!
//! at restore/checkpoint workers 1 and 4, over [`MemoryStore`] and
//! [`FileStore`] backends, plus a [`FaultStore`]-wrapped arm.

use std::collections::BTreeMap;
use std::path::PathBuf;

use kishu::session::{CellReport, KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;
use kishu_storage::chunk::ChunkConfig;
use kishu_storage::{
    CheckpointStore, FaultLedgerHandle, FaultPlan, FaultStore, FileStore, MemoryStore,
};
use kishu_testkit::rng::Rng;

const WORKER_COUNTS: [usize; 2] = [1, 4];

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kishu-chunkdiff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

/// Cells exercising the chunk layer for real: multi-KB lists that get
/// appended to (large-object-small-mutation — the chunker's home turf),
/// plus small values that stay on the v1 path, repeats that dedup at the
/// blob level, and deletes.
fn scripted_cells(seed: u64, n: usize) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cells = Vec::new();
    cells.push(format!(
        "big = list(range({}))\nsmall = 7\n",
        800 + rng.random_range(0..200usize)
    ));
    for i in 0..n {
        let cell = match rng.random_range(0..6u32) {
            0 => format!("big.append({})\n", rng.random_range(0..1000i64)),
            1 => format!("small = {}\n", rng.random_range(0..100i64)),
            2 => format!("copy{i} = big\n"),
            3 => format!("other{i} = list(range({}))\n", 700 + rng.random_range(0..50usize)),
            4 => "probe = 1\ndel probe\n".to_string(),
            _ => format!("big[{}] = {}\n", rng.random_range(0..500usize), i),
        };
        cells.push(cell);
    }
    cells
}

/// The logical slice of a [`CellReport`] — everything except the
/// physical-byte fields, which are representation-dependent by design.
type Fingerprint = (Option<NodeId>, u64, usize, usize, Vec<String>);

fn logical_fingerprint(r: &CellReport) -> Fingerprint {
    (
        r.node,
        r.checkpoint_bytes,
        r.blobs_dropped,
        r.blobs_deduped,
        r.updated.iter().map(|k| format!("{k:?}")).collect(),
    )
}

fn snapshot(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

/// Everything logically observable from a run: per-cell fingerprints, the
/// store's logical view (every blob's bytes in id order), blob/payload
/// counts, every restored namespace, and the final namespace.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    reports: Vec<Fingerprint>,
    store_view: Vec<Vec<u8>>,
    logical_stats: (u64, u64),
    at_nodes: Vec<(NodeId, BTreeMap<String, String>)>,
    final_ns: BTreeMap<String, String>,
}

/// Physical attribution of the same run, for the arms where it must differ.
#[derive(Debug, Clone, Copy)]
struct Physical {
    bytes_written: u64,
    chunks_written: u64,
    chunks_deduped: u64,
    bytes_compressed: u64,
}

fn observe(store: Box<dyn CheckpointStore>, cells: &[String], workers: usize) -> (Observation, Physical) {
    let config = KishuConfig {
        checkpoint_workers: workers,
        restore_workers: workers,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::new(store, config);
    let mut reports = Vec::new();
    let mut nodes = Vec::new();
    for cell in cells {
        let r = s.run_cell(cell).expect("generated cells parse");
        if let Some(n) = r.node {
            nodes.push(n);
        }
        reports.push(logical_fingerprint(&r));
    }
    s.persist().expect("persist");
    let final_ns = snapshot(&s);
    let store_view: Vec<Vec<u8>> = (0..s.store().blob_count())
        .map(|i| s.store().get(i).expect("logical view reads back"))
        .collect();
    let st = s.store_stats();
    let mut at_nodes = Vec::new();
    for n in nodes {
        s.checkout(n).expect("checkout");
        at_nodes.push((n, snapshot(&s)));
    }
    let m = s.metrics();
    let physical = Physical {
        bytes_written: m.total_bytes_written(),
        chunks_written: m.total_chunks_written(),
        chunks_deduped: m.total_chunks_deduped(),
        bytes_compressed: m.total_bytes_compressed(),
    };
    (
        Observation {
            reports,
            store_view,
            logical_stats: (st.blobs, st.payload_bytes),
            at_nodes,
            final_ns,
        },
        physical,
    )
}

/// Chunking on with aggressive thresholds, so the scripted payloads
/// actually chunk (default min is 2048; sealed list payloads here run a
/// few KB).
fn v2_cfg() -> ChunkConfig {
    ChunkConfig { enabled: true, compress: true, min: 64, avg: 256, max: 1024 }
}

#[test]
fn chunking_is_representation_only_memory_store() {
    let cells = scripted_cells(0x5EED_C4F2, 14);
    for workers in WORKER_COUNTS {
        let (on, on_phys) =
            observe(Box::new(MemoryStore::with_config(v2_cfg())), &cells, workers);
        let (off, off_phys) =
            observe(Box::new(MemoryStore::with_config(ChunkConfig::disabled())), &cells, workers);
        assert_eq!(on, off, "logical views diverged at workers={workers}");
        // And the physical story must actually differ: the v2 arm chunked,
        // deduped, and wrote fewer physical bytes.
        assert!(on_phys.chunks_written > 0, "v2 arm never chunked: {on_phys:?}");
        assert!(on_phys.chunks_deduped > 0, "append-style edits must chunk-dedup");
        assert_eq!(off_phys.chunks_written, 0);
        assert_eq!(off_phys.bytes_compressed, 0);
        assert!(
            on_phys.bytes_written < off_phys.bytes_written,
            "chunk dedup + compression must shrink physical writes: {on_phys:?} vs {off_phys:?}"
        );
    }
}

#[test]
fn chunking_is_representation_only_file_store() {
    let cells = scripted_cells(0x5EED_F11E, 12);
    for workers in WORKER_COUNTS {
        let on_path = temp_path(&format!("on-{workers}.log"));
        let off_path = temp_path(&format!("off-{workers}.log"));
        // Group commit on for the v2 arm, off for the v1 arm: the barrier
        // plumbing must not leak into any logical observation either.
        let (on, on_phys) = observe(
            Box::new(FileStore::create_with(&on_path, v2_cfg(), true).expect("create")),
            &cells,
            workers,
        );
        let (off, off_phys) = observe(
            Box::new(
                FileStore::create_with(&off_path, ChunkConfig::disabled(), false)
                    .expect("create"),
            ),
            &cells,
            workers,
        );
        assert_eq!(on, off, "logical views diverged at workers={workers}");
        assert!(on_phys.chunks_written > 0, "v2 arm never chunked: {on_phys:?}");
        assert!(on_phys.bytes_written < off_phys.bytes_written, "{on_phys:?} vs {off_phys:?}");
        // The on-disk logs themselves must reflect the physical savings.
        let on_len = std::fs::metadata(&on_path).expect("meta").len();
        let off_len = std::fs::metadata(&off_path).expect("meta").len();
        assert!(on_len < off_len, "v2 log ({on_len}B) not smaller than v1 ({off_len}B)");
        // A reopened v2 log serves the identical logical view.
        let reopened = FileStore::open(&on_path).expect("open");
        let view: Vec<Vec<u8>> =
            (0..reopened.blob_count()).map(|i| reopened.get(i).expect("get")).collect();
        assert_eq!(view, on.store_view, "reopen changed the logical view");
        std::fs::remove_file(&on_path).ok();
        std::fs::remove_file(&off_path).ok();
    }
}

#[test]
fn chunking_does_not_shift_fault_draws() {
    let cells = scripted_cells(0x5EED_FA17, 12);
    let plan = FaultPlan {
        put_transient_p: 0.08,
        get_transient_p: 0.05,
        bit_flip_p: 0.03,
        ..FaultPlan::none()
    };
    for workers in WORKER_COUNTS {
        let run = |cfg: ChunkConfig| {
            let fs = FaultStore::new(Box::new(MemoryStore::with_config(cfg)), plan.clone(), 0xFA17);
            let ledger: FaultLedgerHandle = fs.ledger_handle();
            let (obs, _) = observe(Box::new(fs), &cells, workers);
            (obs, ledger.snapshot())
        };
        let (on, on_ledger) = run(v2_cfg());
        let (off, off_ledger) = run(ChunkConfig::disabled());
        assert_eq!(on, off, "faulty logical views diverged at workers={workers}");
        assert_eq!(
            on_ledger, off_ledger,
            "representation change shifted the fault ledger at workers={workers}"
        );
    }
}
