//! Property-based test of the core guarantee: **checkout restores exactly
//! the state that existed at the checkpoint**, for arbitrary (deterministic)
//! cell sequences — creations, in-place mutations, rebinds, aliases, merges,
//! and deletions over a small variable pool.

use std::collections::BTreeMap;

use kishu::session::{KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;
use kishu_testkit::prelude::*;

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

/// One generated notebook operation.
#[derive(Debug, Clone)]
enum Op {
    /// `name = [k, k+1, ...]`
    CreateList(usize, u8),
    /// `name = arange(n)`
    CreateArray(usize, u8),
    /// `name = {'k': v}`
    CreateDict(usize, u8),
    /// `name.append(v)` (only valid on lists; generated code guards).
    Mutate(usize, u8),
    /// `name[i] = v` on arrays (guarded).
    Poke(usize, u8),
    /// `dst = src` — aliasing merges co-variables.
    Alias(usize, usize),
    /// `del name` (guarded).
    Delete(usize),
    /// read-only: `tmp_len = ...` touching a variable.
    Inspect(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let idx = 0..NAMES.len();
    prop_oneof![
        (idx.clone(), any::<u8>()).prop_map(|(i, v)| Op::CreateList(i, v)),
        (idx.clone(), any::<u8>()).prop_map(|(i, v)| Op::CreateArray(i, v)),
        (idx.clone(), any::<u8>()).prop_map(|(i, v)| Op::CreateDict(i, v)),
        (idx.clone(), any::<u8>()).prop_map(|(i, v)| Op::Mutate(i, v)),
        (idx.clone(), any::<u8>()).prop_map(|(i, v)| Op::Poke(i, v)),
        (idx.clone(), 0..NAMES.len()).prop_map(|(a, b)| Op::Alias(a, b)),
        idx.clone().prop_map(Op::Delete),
        idx.prop_map(Op::Inspect),
    ]
}

impl Op {
    /// Emit guarded minipy for the op (no-ops when preconditions fail, so
    /// every generated cell runs cleanly).
    fn to_source(&self) -> String {
        match self {
            Op::CreateList(i, v) => {
                format!("{} = [{v}, {}, {}]\n", NAMES[*i], *v as u16 + 1, *v as u16 + 2)
            }
            Op::CreateArray(i, v) => format!("{} = arange({})\n", NAMES[*i], (*v as usize % 64) + 4),
            Op::CreateDict(i, v) => format!("{} = {{'k': {v}, 'j': [{v}]}}\n", NAMES[*i]),
            Op::Mutate(i, v) => format!(
                "if type({n}) == 'list':\n    {n}.append({v})\n",
                n = NAMES[*i]
            ),
            Op::Poke(i, v) => format!(
                "if type({n}) == 'ndarray':\n    {n}[0] = {v}.0\n",
                n = NAMES[*i]
            ),
            Op::Alias(a, b) => format!("{} = {}\n", NAMES[*a], NAMES[*b]),
            Op::Delete(i) => format!("del {}\n", NAMES[*i]),
            Op::Inspect(i) => format!("tmp_len = len(str({}))\n", NAMES[*i]),
        }
    }

    /// Whether the op's preconditions hold given the currently-bound names
    /// (ops with unbound operands are skipped by the generator harness).
    fn ready(&self, bound: &[bool]) -> bool {
        match self {
            Op::CreateList(..) | Op::CreateArray(..) | Op::CreateDict(..) => true,
            Op::Mutate(i, _) | Op::Poke(i, _) | Op::Delete(i) | Op::Inspect(i) => bound[*i],
            Op::Alias(_, b) => bound[*b],
        }
    }

    fn apply_binding(&self, bound: &mut [bool]) {
        match self {
            Op::CreateList(i, _) | Op::CreateArray(i, _) | Op::CreateDict(i, _) => bound[*i] = true,
            Op::Alias(a, _) => bound[*a] = true,
            Op::Delete(i) => bound[*i] = false,
            _ => {}
        }
    }
}

/// Snapshot every variable's rendered value (read-only; uses `peek` so no
/// access is recorded).
fn snapshot(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checkout_restores_any_past_state(ops in prop::collection::vec(op_strategy(), 1..25)) {
        let mut s = KishuSession::in_memory(KishuConfig::default());
        let mut bound = [false; NAMES.len()];
        let mut checkpoints: Vec<(NodeId, BTreeMap<String, String>)> = Vec::new();

        for op in &ops {
            if !op.ready(&bound) {
                continue;
            }
            op.apply_binding(&mut bound);
            let report = s.run_cell(&op.to_source()).expect("generated cell parses");
            prop_assert!(
                report.outcome.error.is_none(),
                "generated cell raised: {:?} for {:?}",
                report.outcome.error,
                op
            );
            checkpoints.push((report.node.expect("auto-checkpoint committed"), snapshot(&s)));
        }

        // Visit the recorded states in a scrambled order and verify each
        // restores exactly.
        let mut order: Vec<usize> = (0..checkpoints.len()).collect();
        order.reverse();
        if order.len() > 2 {
            let mid = order.len() / 2;
            order.swap(0, mid);
        }
        for idx in order {
            let (node, expected) = &checkpoints[idx];
            s.checkout(*node).expect("checkout succeeds");
            let now = snapshot(&s);
            prop_assert_eq!(&now, expected, "state {} not restored exactly", idx);
        }
    }

    #[test]
    fn checkpoint_sizes_are_bounded_by_state_size(ops in prop::collection::vec(op_strategy(), 1..15)) {
        // An incremental checkpoint never stores more than the (deep) size
        // of the whole state it belongs to, plus small framing.
        let mut s = KishuSession::in_memory(KishuConfig::default());
        let mut bound = [false; NAMES.len()];
        for op in &ops {
            if !op.ready(&bound) {
                continue;
            }
            op.apply_binding(&mut bound);
            let report = s.run_cell(&op.to_source()).expect("parses");
            prop_assert!(report.outcome.error.is_none());
            let roots = s.interp.globals.roots();
            let state = s.interp.heap.deep_size(roots);
            prop_assert!(
                report.checkpoint_bytes <= 3 * state + 4096,
                "checkpoint {} vs state {}",
                report.checkpoint_bytes,
                state
            );
        }
    }
}

/// Branching fuzz: interleave cell executions with random checkouts (which
/// fork new branches), recording a full namespace snapshot at every
/// checkpoint — then verify every recorded state, across all branches,
/// restores exactly.
#[derive(Debug, Clone)]
enum SessionOp {
    Cell(Op),
    Checkout(u8),
}

fn session_op_strategy() -> impl Strategy<Value = SessionOp> {
    prop_oneof![
        4 => op_strategy().prop_map(SessionOp::Cell),
        1 => any::<u8>().prop_map(SessionOp::Checkout),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn branching_sessions_restore_every_state(
        ops in prop::collection::vec(session_op_strategy(), 2..30)
    ) {
        let mut s = KishuSession::in_memory(KishuConfig::default());
        let mut bound = [false; NAMES.len()];
        let mut checkpoints: Vec<(NodeId, BTreeMap<String, String>)> = Vec::new();

        for op in &ops {
            match op {
                SessionOp::Cell(op) => {
                    if !op.ready(&bound) {
                        continue;
                    }
                    op.apply_binding(&mut bound);
                    let report = s.run_cell(&op.to_source()).expect("parses");
                    prop_assert!(report.outcome.error.is_none(), "{:?}", op);
                    checkpoints.push((report.node.expect("auto-checkpoint committed"), snapshot(&s)));
                }
                SessionOp::Checkout(pick) => {
                    if checkpoints.is_empty() {
                        continue;
                    }
                    let (node, expected) = &checkpoints[*pick as usize % checkpoints.len()];
                    s.checkout(*node).expect("checkout succeeds");
                    prop_assert_eq!(&snapshot(&s), expected, "mid-session restore of {:?}", node);
                    // Re-derive the binding table for the restored state so
                    // subsequent generated cells stay well-formed.
                    for (i, name) in NAMES.iter().enumerate() {
                        bound[i] = s.interp.globals.contains(name);
                    }
                }
            }
        }

        // Every state across every branch restores exactly.
        for (node, expected) in checkpoints.iter().rev() {
            s.checkout(*node).expect("final sweep checkout");
            prop_assert_eq!(&snapshot(&s), expected, "final sweep restore of {:?}", node);
        }
    }
}
