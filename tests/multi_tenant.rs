//! Multi-tenant differential suite: the shared checkpoint store is
//! **observationally private** per session.
//!
//! The serial-oracle methodology of `tests/parallel_pipeline.rs` /
//! `tests/parallel_checkout.rs` (any worker count must be byte-identical to
//! workers=1) is extended here along the tenancy axis: a session running on
//! its own private store is the oracle, and the same session running
//! *interleaved with K other sessions on one shared store* must produce —
//! at checkpoint/restore workers 1 and 4 —
//!
//! 1. **an identical store view**: same dense blob ids, same bytes, same
//!    errors, same logical stats;
//! 2. **identical per-cell reports**: node ids, checkpoint/written bytes,
//!    dedup and drop counters;
//! 3. **identical restored namespaces** at every checkpoint of every
//!    session;
//! 4. **an identical fault ledger** when the store injects faults —
//!    [`FaultStore`] scope-keyed draws mean a neighbor's retries cannot
//!    perturb a tenant's fault sequence (the latent single-store
//!    assumption this PR fixed);
//! 5. **GC as a pure space optimization**: collecting everything
//!    unreferenced changes no restored state anywhere, and refcount
//!    invariants hold after arbitrary interleavings.
//!
//! Scripts are generated from a seed; set `KISHU_TESTKIT_SEED` to replay.

use std::collections::{BTreeMap, BTreeSet};

use kishu::session::{CellReport, KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;
use kishu_storage::{
    tenant_scope, FaultLedger, FaultPlan, FaultStore, MemoryStore, SharedStore,
};
use kishu_testkit::prelude::*;
use kishu_testkit::rng::{env_seed, Rng};

/// Tenants in the interleaved runs: the differential holds for *every* one
/// of them (each is "the" session; the other K=3 are its neighbors).
const TENANTS: [&str; 4] = ["ana", "ben", "cho", "dia"];

/// Checkpoint/restore worker counts under differential test.
const WORKER_COUNTS: [usize; 2] = [1, 4];

fn config(workers: usize) -> KishuConfig {
    KishuConfig {
        checkpoint_workers: workers,
        restore_workers: workers,
        dedup_blobs: true,
        ..KishuConfig::default()
    }
}

/// Scripted notebook for one tenant. Cells at indices divisible by 3 come
/// from a **common stream** shared verbatim by every tenant (the same
/// dataset loaded everywhere — the cross-user redundancy motivating
/// store-wide dedup); the rest are tenant-private: fresh bindings, in-place
/// mutations, re-created constants, shared structure.
fn tenant_cells(base_seed: u64, tenant: usize, n_cells: usize) -> Vec<String> {
    let mut common = Rng::seed_from_u64(base_seed);
    let mut private = Rng::seed_from_u64(base_seed ^ (tenant as u64 + 1).wrapping_mul(0x9E37_79B9));
    let mut live: Vec<String> = Vec::new();
    let mut fresh = 0usize;
    let mut cells = Vec::new();
    for i in 0..n_cells {
        if i % 3 == 0 {
            // Common dataset cell: identical code (and payload bytes) in
            // every tenant's notebook.
            let len = common.random_range(4..12usize);
            let vals: Vec<String> =
                (0..len).map(|_| common.random_range(0..100i64).to_string()).collect();
            cells.push(format!("d{i} = [{}]\n", vals.join(", ")));
            continue;
        }
        let roll = private.random_range(0..10u32);
        let cell = match roll {
            0..=3 => {
                let name = format!("v{fresh}");
                fresh += 1;
                let len = private.random_range(1..6usize);
                let vals: Vec<String> =
                    (0..len).map(|_| private.random_range(0..50i64).to_string()).collect();
                live.push(name.clone());
                format!("{name} = [{}]\n", vals.join(", "))
            }
            4..=5 if !live.is_empty() => {
                let name = &live[private.random_range(0..live.len())];
                format!("{name}.append({})\n", private.random_range(0..50i64))
            }
            6..=7 => {
                let name = format!("v{fresh}");
                fresh += 1;
                live.push(name.clone());
                format!("{name} = [1, 2, 3]\n")
            }
            8 if !live.is_empty() => {
                let src = live[private.random_range(0..live.len())].clone();
                let name = format!("v{fresh}");
                fresh += 1;
                live.push(name.clone());
                format!("{name} = {src}\n")
            }
            _ => "probe = 1\ndel probe\n".to_string(),
        };
        cells.push(cell);
    }
    cells
}

type Fingerprint = (Option<NodeId>, u64, u64, usize, usize, Vec<String>);

/// The fields of a [`CellReport`] that must agree solo vs interleaved.
fn report_fingerprint(r: &CellReport) -> Fingerprint {
    (
        r.node,
        r.checkpoint_bytes,
        r.bytes_written,
        r.blobs_dropped,
        r.blobs_deduped,
        r.updated.iter().map(|k| format!("{k:?}")).collect(),
    )
}

/// Render the namespace (ground truth for state equivalence).
fn snapshot(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

/// Everything a session can observe about its own world: per-cell reports,
/// its store view (every blob id's bytes, in order), its logical store
/// stats, the namespace restored at every one of its checkpoints, and its
/// final namespace.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    reports: Vec<Fingerprint>,
    store_view: Vec<Vec<u8>>,
    stats: (u64, u64, u64),
    at_nodes: Vec<(NodeId, BTreeMap<String, String>)>,
    final_ns: BTreeMap<String, String>,
}

/// Run `cells` to completion on `session`, then observe it: dump the store
/// view and check out every checkpoint.
fn observe(mut session: KishuSession, cells: &[String]) -> Observation {
    let mut reports = Vec::new();
    let mut nodes = Vec::new();
    for cell in cells {
        let r = session.run_cell(cell).expect("generated cells parse");
        if let Some(n) = r.node {
            nodes.push(n);
        }
        reports.push(report_fingerprint(&r));
    }
    let final_ns = snapshot(&session);
    let store_view: Vec<Vec<u8>> = (0..session.store().blob_count())
        .map(|i| session.store().get(i).expect("own blobs read back"))
        .collect();
    let st = session.store_stats();
    let mut at_nodes = Vec::new();
    for n in nodes {
        session.checkout(n).expect("checkout own checkpoint");
        at_nodes.push((n, snapshot(&session)));
    }
    Observation { reports, store_view, stats: (st.blobs, st.payload_bytes, st.physical_bytes), at_nodes, final_ns }
}

/// The solo oracle: each tenant alone on a private in-memory store.
fn run_solo(base_seed: u64, n_cells: usize, workers: usize) -> Vec<Observation> {
    TENANTS
        .iter()
        .enumerate()
        .map(|(ti, _)| {
            let cells = tenant_cells(base_seed, ti, n_cells);
            observe(KishuSession::in_memory(config(workers)), &cells)
        })
        .collect()
}

/// The same tenants interleaved cell-by-cell on one shared store.
fn run_interleaved(
    base_seed: u64,
    n_cells: usize,
    workers: usize,
    shards: usize,
) -> (Vec<Observation>, SharedStore) {
    let store = SharedStore::in_memory(shards);
    let scripts: Vec<Vec<String>> =
        (0..TENANTS.len()).map(|ti| tenant_cells(base_seed, ti, n_cells)).collect();
    let mut sessions: Vec<KishuSession> = TENANTS
        .iter()
        .map(|name| KishuSession::on_shared(&store, name, config(workers)).expect("tenant"))
        .collect();
    let mut reports: Vec<Vec<Fingerprint>> = vec![Vec::new(); TENANTS.len()];
    let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); TENANTS.len()];
    // Round-robin interleaving: cell 0 of every tenant, then cell 1, ...
    for i in 0..n_cells {
        for (ti, s) in sessions.iter_mut().enumerate() {
            let r = s.run_cell(&scripts[ti][i]).expect("generated cells parse");
            if let Some(n) = r.node {
                nodes[ti].push(n);
            }
            reports[ti].push(report_fingerprint(&r));
        }
    }
    let mut out = Vec::new();
    for (ti, mut s) in sessions.into_iter().enumerate() {
        let final_ns = snapshot(&s);
        let store_view: Vec<Vec<u8>> = (0..s.store().blob_count())
            .map(|i| s.store().get(i).expect("own blobs read back"))
            .collect();
        let st = s.store_stats();
        let mut at_nodes = Vec::new();
        for n in nodes[ti].clone() {
            s.checkout(n).expect("checkout own checkpoint");
            at_nodes.push((n, snapshot(&s)));
        }
        out.push(Observation {
            reports: reports[ti].clone(),
            store_view,
            stats: (st.blobs, st.payload_bytes, st.physical_bytes),
            at_nodes,
            final_ns,
        });
    }
    (out, store)
}

/// The headline differential: every tenant's observable world — store view,
/// reports, stats, every restored namespace — is byte-identical solo on a
/// private store vs interleaved with K=3 neighbors on the shared store, at
/// 1 and 4 checkpoint/restore workers, for 1 and 4 shards.
#[test]
fn tenant_views_are_byte_identical_solo_vs_interleaved() {
    let base_seed = env_seed(0x5EED_7E4A);
    for workers in WORKER_COUNTS {
        let solo = run_solo(base_seed, 18, workers);
        for shards in [1usize, 4] {
            let (inter, store) = run_interleaved(base_seed, 18, workers, shards);
            for (ti, name) in TENANTS.iter().enumerate() {
                assert_eq!(
                    solo[ti], inter[ti],
                    "tenant {name} diverged at workers={workers} shards={shards}"
                );
            }
            store.check_invariants(true).expect("refcount invariants");
            // The interleaved runs share identical dataset cells, so the
            // store-wide dedup must have found cross-tenant redundancy.
            assert!(
                store.dedup_ratio() > 1.0,
                "common cells must dedup across tenants (ratio {})",
                store.dedup_ratio()
            );
        }
    }
}

/// Fault-injection differential (and the regression for the latent
/// single-store assumption): with a fault-injecting store shared by all
/// tenants, each tenant's fault ledger and reports are identical to
/// running alone over a private faulty store with the same scope — one
/// session's retries never perturb another's deterministic draws.
#[test]
fn fault_ledgers_are_identical_solo_vs_interleaved() {
    let base_seed = env_seed(0xFA17_5EED);
    let plan = FaultPlan {
        put_transient_p: 0.08,
        get_transient_p: 0.05,
        short_write_p: 0.02,
        bit_flip_p: 0.02,
        ..FaultPlan::none()
    };
    let fault_seed = base_seed ^ 0xFA17;
    let n_cells = 16;
    for workers in WORKER_COUNTS {
        // Solo oracles: private MemoryStore under a FaultStore scoped to
        // the tenant's name.
        let mut solo: Vec<(Vec<Fingerprint>, FaultLedger)> = Vec::new();
        for (ti, name) in TENANTS.iter().enumerate() {
            let cells = tenant_cells(base_seed, ti, n_cells);
            let fs = FaultStore::scoped(
                Box::new(MemoryStore::new()),
                plan.clone(),
                fault_seed,
                tenant_scope(name),
            );
            let handle = fs.ledger_handle();
            let mut s = KishuSession::new(Box::new(fs), config(workers));
            let reports: Vec<Fingerprint> = cells
                .iter()
                .map(|c| report_fingerprint(&s.run_cell(c).expect("cells parse")))
                .collect();
            solo.push((reports, handle.snapshot_scoped(tenant_scope(name))));
        }
        // Interleaved: one shared store, one shared fault state, one
        // FaultStore twin per tenant wrapping that tenant's view.
        let store = SharedStore::in_memory(4);
        let base = FaultStore::scoped(
            Box::new(store.tenant(TENANTS[0]).expect("tenant")),
            plan.clone(),
            fault_seed,
            tenant_scope(TENANTS[0]),
        );
        let handle = base.ledger_handle();
        let mut faulty_views: Vec<FaultStore> = vec![base];
        for name in &TENANTS[1..] {
            let twin = faulty_views[0]
                .twin(Box::new(store.tenant(name).expect("tenant")), tenant_scope(name));
            faulty_views.push(twin);
        }
        let mut sessions: Vec<KishuSession> = faulty_views
            .into_iter()
            .map(|fs| KishuSession::new(Box::new(fs), config(workers)))
            .collect();
        let scripts: Vec<Vec<String>> =
            (0..TENANTS.len()).map(|ti| tenant_cells(base_seed, ti, n_cells)).collect();
        let mut reports: Vec<Vec<Fingerprint>> = vec![Vec::new(); TENANTS.len()];
        for i in 0..n_cells {
            for (ti, s) in sessions.iter_mut().enumerate() {
                reports[ti]
                    .push(report_fingerprint(&s.run_cell(&scripts[ti][i]).expect("cells parse")));
            }
        }
        for (ti, name) in TENANTS.iter().enumerate() {
            let ledger = handle.snapshot_scoped(tenant_scope(name));
            assert_eq!(reports[ti], solo[ti].0, "tenant {name} reports diverged (workers={workers})");
            assert_eq!(ledger, solo[ti].1, "tenant {name} fault ledger diverged (workers={workers})");
        }
        if std::env::var("KISHU_TESTKIT_SEED").is_err() {
            let total: usize = solo.iter().map(|(_, l)| l.total()).sum();
            assert!(total > 0, "default seed should fire at these probabilities");
        }
    }
}

/// GC is a pure space optimization: after collecting everything the live
/// graphs don't reach, every checkpoint of every session restores exactly
/// the pre-GC namespace, the store's refcount invariants hold, and a
/// second collection finds nothing left to reclaim (100% of unreferenced
/// bytes went in the first pass).
#[test]
fn gc_preserves_every_commit_of_every_session() {
    let base_seed = env_seed(0x6C_5EED);
    let store = SharedStore::in_memory(4);
    let mut sessions: Vec<KishuSession> = TENANTS
        .iter()
        .map(|name| KishuSession::on_shared(&store, name, config(2)).expect("tenant"))
        .collect();
    let scripts: Vec<Vec<String>> =
        (0..TENANTS.len()).map(|ti| tenant_cells(base_seed, ti, 15)).collect();
    let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); TENANTS.len()];
    for i in 0..15 {
        for (ti, s) in sessions.iter_mut().enumerate() {
            if let Some(n) = s.run_cell(&scripts[ti][i]).expect("cells parse").node {
                nodes[ti].push(n);
            }
            // Periodic persists create superseded snapshots — GC fodder.
            if i % 5 == 4 {
                s.persist().expect("persist");
            }
        }
    }
    // Ground truth: every checkpoint's namespace before GC.
    let mut before: Vec<Vec<BTreeMap<String, String>>> = Vec::new();
    for (ti, s) in sessions.iter_mut().enumerate() {
        let mut per = Vec::new();
        for &n in &nodes[ti] {
            s.checkout(n).expect("checkout pre-gc");
            per.push(snapshot(s));
        }
        before.push(per);
    }
    let live: BTreeMap<String, BTreeSet<u64>> = TENANTS
        .iter()
        .zip(&sessions)
        .map(|(name, s)| (name.to_string(), s.live_blobs()))
        .collect();
    let r = store.collect(&live).expect("gc");
    assert!(r.reclaimed_blobs > 0, "superseded snapshots should be reclaimable: {r:?}");
    assert!(r.physical_after < r.physical_before);
    store.check_invariants(true).expect("refcount invariants after gc");
    for s in &mut sessions {
        s.invalidate_store_caches();
    }
    // Idempotence = completeness: nothing unreferenced survived.
    let r2 = store.collect(&live).expect("second gc");
    assert_eq!(r2.reclaimed_blobs, 0, "first gc must reclaim 100% of garbage");
    assert_eq!(r2.reclaimed_payload_bytes, 0);
    // Every commit of every session restores exactly as before.
    for (ti, s) in sessions.iter_mut().enumerate() {
        for (k, &n) in nodes[ti].iter().enumerate() {
            s.checkout(n).expect("checkout post-gc");
            assert_eq!(snapshot(s), before[ti][k], "tenant {} node {n:?}", TENANTS[ti]);
        }
        // And the sessions keep working: new cells, new checkpoints.
        s.run_cell("post_gc = [9, 9, 9]\n").expect("post-gc cell");
    }
    store.check_invariants(true).expect("invariants after post-gc writes");
}

/// `resume` works through a tenant view: a session persisted into a shared
/// store resumes to the same state whether its tenant was alone in the
/// store or interleaved with neighbors.
#[test]
fn resume_through_a_tenant_view_is_isolation_blind() {
    let base_seed = env_seed(0x2E_5135);
    let run_and_resume = |neighbors: bool| -> (Vec<String>, BTreeMap<String, String>) {
        let store = SharedStore::in_memory(4);
        let mut sessions: Vec<(usize, KishuSession)> = Vec::new();
        for (ti, name) in TENANTS.iter().enumerate() {
            if ti == 0 || neighbors {
                sessions
                    .push((ti, KishuSession::on_shared(&store, name, config(2)).expect("tenant")));
            }
        }
        let scripts: Vec<Vec<String>> =
            (0..TENANTS.len()).map(|ti| tenant_cells(base_seed, ti, 12)).collect();
        for i in 0..12 {
            for (ti, s) in sessions.iter_mut() {
                s.run_cell(&scripts[*ti][i]).expect("cells parse");
            }
        }
        for (_, s) in sessions.iter_mut() {
            s.persist().expect("persist");
        }
        drop(sessions);
        let resumed = KishuSession::resume(
            Box::new(store.tenant(TENANTS[0]).expect("tenant")),
            config(2),
        )
        .expect("resume through tenant view");
        (resumed.log(), snapshot(&resumed))
    };
    let (solo_log, solo_ns) = run_and_resume(false);
    let (inter_log, inter_ns) = run_and_resume(true);
    assert_eq!(solo_log, inter_log, "resumed graph log diverged");
    assert_eq!(solo_ns, inter_ns, "resumed namespace diverged");
}

/// Decode one random-interleaving op from a byte (tenant + what to do).
/// Plain data so proptest shrinking yields a minimal interleaving.
fn decode_op(b: u8, n_tenants: usize) -> (usize, bool, usize) {
    let tenant = b as usize % n_tenants;
    let checkout = (b / 64) == 3; // 1 in 4 ops is a checkout
    (tenant, checkout, b as usize / n_tenants)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of 2–4 sessions' checkpoint/checkout ops:
    /// store-wide dedup never changes any session's restored namespace
    /// (differentially vs private stores running the identical op
    /// subsequence), and refcounts stay exact. On failure, proptest
    /// shrinks `ops` to a minimal interleaving.
    #[test]
    fn random_interleavings_are_observationally_private(
        seed in any::<u64>(),
        n_tenants in 2usize..5,
        ops in prop::collection::vec(any::<u8>(), 8..40),
    ) {
        let scripts: Vec<Vec<String>> =
            (0..n_tenants).map(|ti| tenant_cells(seed, ti, ops.len())).collect();
        let store = SharedStore::in_memory(4);
        let mut shared: Vec<KishuSession> = (0..n_tenants)
            .map(|ti| KishuSession::on_shared(&store, TENANTS[ti], config(1)).expect("tenant"))
            .collect();
        let mut private: Vec<KishuSession> =
            (0..n_tenants).map(|_| KishuSession::in_memory(config(1))).collect();
        let mut cursors = vec![0usize; n_tenants];
        let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); n_tenants];
        for &b in &ops {
            let (ti, checkout, pick) = decode_op(b, n_tenants);
            if checkout && !nodes[ti].is_empty() {
                let n = nodes[ti][pick % nodes[ti].len()];
                shared[ti].checkout(n).expect("shared checkout");
                private[ti].checkout(n).expect("private checkout");
                prop_assert_eq!(
                    snapshot(&shared[ti]),
                    snapshot(&private[ti]),
                    "checkout diverged for tenant {} at node {:?}",
                    ti,
                    n
                );
            } else {
                let cell = &scripts[ti][cursors[ti]];
                cursors[ti] += 1;
                let a = shared[ti].run_cell(cell).expect("cells parse");
                let b2 = private[ti].run_cell(cell).expect("cells parse");
                prop_assert_eq!(
                    report_fingerprint(&a),
                    report_fingerprint(&b2),
                    "report diverged for tenant {}",
                    ti
                );
                if let Some(n) = a.node {
                    nodes[ti].push(n);
                }
            }
        }
        // Final sweep: every checkpoint of every tenant restores the same
        // namespace from the shared store as from the private one.
        for ti in 0..n_tenants {
            for &n in &nodes[ti] {
                shared[ti].checkout(n).expect("shared checkout");
                private[ti].checkout(n).expect("private checkout");
                prop_assert_eq!(snapshot(&shared[ti]), snapshot(&private[ti]));
            }
        }
        if let Err(e) = store.check_invariants(true) {
            return Err(TestCaseError::fail(format!("store invariant violated: {e}")));
        }
    }
}

/// The acceptance workload: 4 sessions loading overlapping datasets on one
/// shared store must dedup better than 1.5× vs what 4 private stores would
/// hold.
#[test]
fn overlapping_datasets_dedup_beyond_the_acceptance_bar() {
    let store = SharedStore::in_memory(4);
    let mut sessions: Vec<KishuSession> = TENANTS
        .iter()
        .map(|name| KishuSession::on_shared(&store, name, config(2)).expect("tenant"))
        .collect();
    // Every tenant loads the same "dataset" and trains the same "model";
    // only a small private preamble differs.
    for (ti, s) in sessions.iter_mut().enumerate() {
        s.run_cell(&format!("mine = [{ti}]\n")).expect("private cell");
        for c in 0..6 {
            let vals: Vec<String> = (0..200).map(|v| ((v * 7 + c * 13) % 97).to_string()).collect();
            s.run_cell(&format!("data{c} = [{}]\n", vals.join(", "))).expect("dataset cell");
        }
    }
    let ratio = store.dedup_ratio();
    assert!(ratio > 1.5, "dedup ratio {ratio:.2} must beat 1.5x on overlapping datasets");
    store.check_invariants(true).expect("invariants");
    // And the privacy contract still holds: each session sees only its own
    // logical bytes.
    for (ti, s) in sessions.iter().enumerate() {
        let mine = s.store().get(0).expect("private blob readable");
        assert!(!mine.is_empty(), "tenant {ti} reads its own first blob");
    }
}
