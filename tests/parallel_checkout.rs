//! Differential suite for the parallel checkout read pipeline — the
//! read-side twin of `parallel_pipeline.rs`.
//!
//! The serial path (`restore_workers = 1`) is the oracle: for any scripted
//! session and any checkout sequence, any restore worker count must produce
//!
//! 1. **identical checkout reports** — loaded/recomputed/removed sets,
//!    bytes loaded, integrity failures, cache hits (store reads never leave
//!    the session thread; only CRC verification and the decode charge fan
//!    out, and pool results return in job order);
//! 2. **identical restored namespaces** — the ground truth of §5.2;
//! 3. **an identical fault ledger** when the store injects read faults —
//!    [`FaultStore`] decisions are keyed by `(op, operation key, attempt)`,
//!    not drawn from a shared stream, so pipeline width cannot perturb them;
//! 4. **cache transparency** — with the read cache on and off, every
//!    checkout restores the same state and reports the same attribution
//!    (only `blobs_cached` may differ);
//! 5. **graceful degradation at every width** — a corrupt blob read lands
//!    in `integrity_failures` and falls back to recomputation no matter how
//!    many restore workers verify payloads.
//!
//! Scripts are generated from a seed; set `KISHU_TESTKIT_SEED` to replay.

use std::collections::BTreeMap;

use kishu::session::{CheckoutReport, KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;
use kishu_storage::{FaultLedgerHandle, FaultPlan, FaultStore, MemoryStore};
use kishu_testkit::prelude::*;
use kishu_testkit::rng::Rng;

/// Restore worker counts under differential test; 1 is the oracle.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Default read-cache capacity used by the fixtures (the config default is
/// environment-sensitive; tests pin it).
const CACHE_BYTES: u64 = 32 * 1024 * 1024;

/// Generate a scripted notebook: fresh bindings, in-place mutations,
/// deletes, and shared structure — enough churn that checkouts mix loads,
/// removals, and identical skips.
fn scripted_cells(seed: u64, n_cells: usize) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: Vec<String> = Vec::new();
    let mut cells = Vec::new();
    let mut fresh = 0usize;
    for _ in 0..n_cells {
        let roll = rng.random_range(0..10u32);
        let cell = match roll {
            0..=3 => {
                let name = format!("v{fresh}");
                fresh += 1;
                let len = rng.random_range(1..6usize);
                let vals: Vec<String> =
                    (0..len).map(|_| rng.random_range(0..50i64).to_string()).collect();
                live.push(name.clone());
                format!("{name} = [{}]\n", vals.join(", "))
            }
            4..=6 if !live.is_empty() => {
                let name = &live[rng.random_range(0..live.len())];
                format!("{name}.append({})\n", rng.random_range(0..50i64))
            }
            7 if live.len() > 1 => {
                let name = live.remove(rng.random_range(0..live.len()));
                format!("del {name}\n")
            }
            8 if !live.is_empty() => {
                let src = live[rng.random_range(0..live.len())].clone();
                let name = format!("v{fresh}");
                fresh += 1;
                live.push(name.clone());
                format!("{name} = {src}\n")
            }
            _ => "probe = 1\ndel probe\n".to_string(),
        };
        cells.push(cell);
    }
    cells
}

/// The fields of a [`CheckoutReport`] that must agree across restore worker
/// counts (everything except wall time).
type CoFingerprint = (
    NodeId,
    Vec<String>,
    Vec<String>,
    Vec<String>,
    usize,
    u64,
    usize,
    usize,
    usize,
);

fn co_fingerprint(r: &CheckoutReport) -> CoFingerprint {
    (
        r.target,
        r.loaded.iter().map(|k| format!("{k:?}")).collect(),
        r.recomputed.iter().map(|k| format!("{k:?}")).collect(),
        r.removed.iter().map(|k| format!("{k:?}")).collect(),
        r.identical,
        r.bytes_loaded,
        r.integrity_failures,
        r.flushed,
        r.blobs_cached,
    )
}

/// Zero out `blobs_cached`, for comparing runs whose cache configuration
/// legitimately differs.
fn without_cache_field(fps: &[CoFingerprint]) -> Vec<CoFingerprint> {
    fps.iter()
        .map(|f| {
            let mut f = f.clone();
            f.8 = 0;
            f
        })
        .collect()
}

/// Render the namespace (ground truth for state equivalence).
fn snapshot(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

/// A deterministic time-travel itinerary over the committed nodes: jump
/// back, bounce around the middle, and return to the tip — revisits
/// included, so the read cache actually gets hits.
fn itinerary(nodes: &[NodeId], seed: u64) -> Vec<NodeId> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x17_17);
    let mut stops = Vec::new();
    if nodes.is_empty() {
        return stops;
    }
    stops.push(nodes[0]);
    for _ in 0..6 {
        stops.push(nodes[rng.random_range(0..nodes.len())]);
    }
    stops.push(nodes[nodes.len() - 1]);
    stops.push(nodes[0]);
    stops.push(nodes[nodes.len() - 1]);
    stops
}

/// Run `cells`, then execute the checkout itinerary with `workers` restore
/// threads; return per-checkout fingerprints and post-checkout snapshots.
fn run_restore(
    cells: &[String],
    seed: u64,
    workers: usize,
    cache_bytes: u64,
) -> (Vec<CoFingerprint>, Vec<BTreeMap<String, String>>, kishu_storage::CacheStats) {
    let config = KishuConfig {
        checkpoint_workers: 1,
        restore_workers: workers,
        checkout_cache_bytes: cache_bytes,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    let mut nodes = Vec::new();
    for cell in cells {
        let r = s.run_cell(cell).expect("generated cells parse");
        if let Some(n) = r.node {
            nodes.push(n);
        }
    }
    let mut fingerprints = Vec::new();
    let mut snapshots = Vec::new();
    for target in itinerary(&nodes, seed) {
        let r = s.checkout(target).expect("checkout");
        fingerprints.push(co_fingerprint(&r));
        snapshots.push(snapshot(&s));
    }
    let cache = s.read_cache_stats();
    (fingerprints, snapshots, cache)
}

/// Same itinerary over a fault-injecting store (read-heavy fault plan);
/// also returns the final fault ledger.
fn run_faulty_restore(
    cells: &[String],
    seed: u64,
    workers: usize,
) -> (Vec<CoFingerprint>, Vec<BTreeMap<String, String>>, kishu_storage::FaultLedger) {
    let plan = FaultPlan {
        get_transient_p: 0.10,
        bit_flip_p: 0.05,
        put_transient_p: 0.02,
        ..FaultPlan::none()
    };
    let fault_store = FaultStore::new(Box::new(MemoryStore::new()), plan, seed ^ 0xFA17);
    let ledger: FaultLedgerHandle = fault_store.ledger_handle();
    let config = KishuConfig {
        checkpoint_workers: 1,
        restore_workers: workers,
        checkout_cache_bytes: CACHE_BYTES,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::new(Box::new(fault_store), config);
    let mut nodes = Vec::new();
    for cell in cells {
        let r = s.run_cell(cell).expect("generated cells parse");
        if let Some(n) = r.node {
            nodes.push(n);
        }
    }
    let mut fingerprints = Vec::new();
    let mut snapshots = Vec::new();
    for target in itinerary(&nodes, seed) {
        let r = s.checkout(target).expect("checkout degrades, never fails");
        fingerprints.push(co_fingerprint(&r));
        snapshots.push(snapshot(&s));
    }
    (fingerprints, snapshots, ledger.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any restore worker count produces identical checkout reports and
    /// identical restored namespaces vs the serial oracle.
    #[test]
    fn parallel_checkout_matches_serial_oracle(seed in any::<u64>()) {
        let cells = scripted_cells(seed, 24);
        let (oracle_fp, oracle_snaps, _) = run_restore(&cells, seed, 1, CACHE_BYTES);
        for workers in WORKER_COUNTS {
            let (fp, snaps, _) = run_restore(&cells, seed, workers, CACHE_BYTES);
            prop_assert_eq!(&fp, &oracle_fp, "reports diverged at restore_workers={}", workers);
            prop_assert_eq!(&snaps, &oracle_snaps, "namespaces diverged at restore_workers={}", workers);
        }
    }

    /// Read-fault injection is independent of the pipeline width: the
    /// ledger — every injected fault, in order — is identical at every
    /// restore worker count, and every checkout still lands on the right
    /// state (by load or by counted fallback recomputation).
    #[test]
    fn checkout_fault_ledger_is_identical_at_every_worker_count(seed in any::<u64>()) {
        let cells = scripted_cells(seed, 20);
        let (oracle_fp, oracle_snaps, oracle_ledger) = run_faulty_restore(&cells, seed, 1);
        for workers in WORKER_COUNTS {
            let (fp, snaps, ledger) = run_faulty_restore(&cells, seed, workers);
            prop_assert_eq!(&fp, &oracle_fp, "reports diverged at restore_workers={}", workers);
            prop_assert_eq!(&snaps, &oracle_snaps, "namespaces diverged at restore_workers={}", workers);
            prop_assert_eq!(&ledger, &oracle_ledger, "fault ledger diverged at restore_workers={}", workers);
        }
    }

    /// The read cache is an optimization, never a behavior change: with the
    /// cache on and off, every checkout restores the same namespace and
    /// reports the same attribution (only `blobs_cached` may differ).
    #[test]
    fn read_cache_is_transparent(seed in any::<u64>()) {
        let cells = scripted_cells(seed, 18);
        let (with_fp, with_snaps, with_cache) = run_restore(&cells, seed, 4, CACHE_BYTES);
        let (without_fp, without_snaps, off_cache) = run_restore(&cells, seed, 4, 0);
        prop_assert_eq!(
            without_cache_field(&with_fp),
            without_cache_field(&without_fp),
            "cache changed checkout attribution"
        );
        prop_assert_eq!(&with_snaps, &without_snaps, "cache changed restored state");
        // And with the cache off, nothing may ever report as cached.
        prop_assert!(without_fp.iter().all(|f| f.8 == 0), "cache off but hits reported");
        // The disabled cache is not a 100%-miss cache: its lookups land in
        // the `disabled` counter, never in `misses` — and since the cache
        // is behavior-free, the off run makes exactly as many lookups as
        // the on run resolved to hits + misses.
        prop_assert_eq!((off_cache.hits, off_cache.misses), (0, 0), "{:?}", off_cache);
        prop_assert_eq!(off_cache.disabled, with_cache.hits + with_cache.misses);
        prop_assert_eq!(with_cache.disabled, 0, "enabled cache drew a disabled count");
    }
}

/// A corrupt blob read degrades identically at every pipeline width: the
/// CRC failure is counted, the co-variable is recomputed, and the restored
/// value is right.
#[test]
fn corrupt_read_degrades_at_every_worker_count() {
    use kishu_storage::{FaultKind, FaultOp};
    for workers in WORKER_COUNTS {
        let plan = FaultPlan::none().schedule(FaultOp::Get, 0, FaultKind::BitFlip);
        let store = FaultStore::new(Box::new(MemoryStore::new()), plan, 5);
        let config = KishuConfig {
            restore_workers: workers,
            checkout_cache_bytes: CACHE_BYTES,
            ..KishuConfig::default()
        };
        let mut s = KishuSession::new(Box::new(store), config);
        s.run_cell("xs = [1, 2]\n").expect("cell");
        let target = s.head();
        s.run_cell("del xs\n").expect("cell");
        let report = s.checkout(target).expect("degrades to recomputation");
        assert_eq!(
            report.integrity_failures, 1,
            "read failure must be counted at restore_workers={workers}"
        );
        assert!(
            report.recomputed.iter().any(|k| k.contains("xs")),
            "xs must be recomputed at restore_workers={workers}"
        );
        assert_eq!(report.blobs_cached, 0, "a corrupt payload must never be cached");
        let xs = s.interp.globals.peek("xs").expect("xs restored");
        assert_eq!(repr(&s.interp.heap, xs), "[1, 2]");
    }
}

/// The resolution logic's floor and the config plumbing for the new knobs.
#[test]
fn restore_worker_default_honors_env() {
    assert!(kishu::session::default_restore_workers() >= 1);
    let cfg = KishuConfig {
        restore_workers: 7,
        checkout_cache_bytes: 12_345,
        ..KishuConfig::default()
    };
    assert_eq!(cfg.restore_workers, 7);
    assert_eq!(cfg.checkout_cache_bytes, 12_345);
}
