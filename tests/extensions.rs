//! Integration tests for the extension features the paper sketches in §6.2
//! and §7.6 (rule-based read-only cells, primitive-list hashing) and for
//! session persistence/resume.

use std::sync::Arc;

use kishu::session::{KishuConfig, KishuSession};
use kishu::vargraph::{VarGraph, VarGraphConfig};
use kishu_libsim::Registry;
use kishu_storage::FileStore;

fn probe(s: &mut KishuSession, expr: &str) -> Option<String> {
    let out = s.run_cell(&format!("{expr}\n")).ok()?;
    if out.outcome.error.is_some() {
        return None;
    }
    out.outcome.value_repr
}

// ----------------------------------------------------------------------
// rule-based read-only cells (§6.2 extension)

#[test]
fn rule_based_cells_skip_detection_on_print_cells() {
    let config = KishuConfig {
        rule_based_cells: true,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    s.run_cell("y_train = arange(5000)\n").expect("runs");
    // The §7.6 printing cell: with the rule engine on, zero co-variables
    // are verified and nothing is stored.
    let report = s.run_cell("y_train[:10]\n").expect("runs");
    assert!(report.updated.is_empty());
    assert_eq!(report.checkpoint_bytes, 0);
    let cell_metrics = s.metrics().cells.last().expect("recorded").clone();
    assert_eq!(cell_metrics.candidates_checked, 0, "no VarGraph verification ran");
}

#[test]
fn rule_based_cells_never_misclassify_mutations() {
    // Safety: with the rules on, every actually-mutating construct must
    // still go through full detection and be undoable.
    let config = KishuConfig {
        rule_based_cells: true,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    s.run_cell("ls = [1, 2, 3]\nm = lib_obj('sk.KMeans', 256, 1)\n").expect("runs");
    let before = s.head();
    for mutating in [
        "ls.append(4)\n",
        "ls[0] = 9\n",
        "m.fit(2)\n",
        "x = len(ls)\n",
    ] {
        let report = s.run_cell(mutating).expect("runs");
        assert!(
            !report.updated.is_empty(),
            "rules wrongly skipped a mutating cell: {mutating:?}"
        );
    }
    s.checkout(before).expect("undo everything");
    assert_eq!(probe(&mut s, "len(ls)").as_deref(), Some("3"));
    assert_eq!(probe(&mut s, "ls[0]").as_deref(), Some("1"));
}

#[test]
fn rule_based_cells_reduce_tracking_on_inspection_heavy_notebooks() {
    let run = |rules: bool| -> std::time::Duration {
        let config = KishuConfig {
            rule_based_cells: rules,
            auto_checkpoint: false,
            ..KishuConfig::default()
        };
        let mut s = KishuSession::in_memory(config);
        s.run_cell("big = []\nfor k in range(4000):\n    big.append('item ' + str(k))\n")
            .expect("runs");
        let mut total = std::time::Duration::ZERO;
        for _ in 0..20 {
            let r = s.run_cell("big[:10]\n").expect("runs");
            total += r.tracking_time;
        }
        total
    };
    let with_rules = run(true);
    let without = run(false);
    assert!(
        with_rules < without,
        "rules should cut inspection-cell tracking: {with_rules:?} vs {without:?}"
    );
}

// ----------------------------------------------------------------------
// primitive-list hashing (§7.6 extension)

#[test]
fn list_hashing_collapses_nodes_but_keeps_detection() {
    let registry = Arc::new(Registry::standard());
    let mut i = kishu_minipy::Interp::new();
    kishu_libsim::install(&mut i, registry.clone());
    let out = i
        .run_cell("ls = []\nfor k in range(500):\n    ls.append('txt ' + str(k))\n")
        .expect("parses");
    assert!(out.error.is_none());
    let root = i.globals.peek("ls").expect("bound");

    let plain = VarGraphConfig::new(registry.clone());
    let mut hashed = VarGraphConfig::new(registry);
    hashed.hash_primitive_lists = true;

    let mut nonce = 0;
    let g_plain = VarGraph::build(&i.heap, root, &plain, &mut nonce);
    let g_hashed = VarGraph::build(&i.heap, root, &hashed, &mut nonce);
    assert_eq!(g_plain.len(), 501, "one node per element without the extension");
    assert_eq!(g_hashed.len(), 1, "single digest node with it");
    assert_eq!(
        g_plain.reachable, g_hashed.reachable,
        "membership (reachable set) must be identical"
    );

    // Detection still works: element rebind and in-place append both
    // change the digest.
    let snapshot = VarGraph::build(&i.heap, root, &hashed, &mut nonce);
    i.run_cell("ls[250] = 'changed'\n").expect("runs");
    let after_poke = VarGraph::build(&i.heap, root, &hashed, &mut nonce);
    assert!(snapshot.differs_from(&after_poke));
    i.run_cell("ls.append('more')\n").expect("runs");
    let after_append = VarGraph::build(&i.heap, root, &hashed, &mut nonce);
    assert!(after_poke.differs_from(&after_append));
}

#[test]
fn list_hashing_preserves_covariable_merges() {
    // The digest path must not hide sharing: aliasing an element still
    // merges co-variables.
    let config = KishuConfig {
        hash_primitive_lists: true,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    s.run_cell("ls = ['a', 'b', 'c']\nobj = Object()\n").expect("runs");
    let report = s.run_cell("obj.foo = ls[1]\n").expect("runs");
    let merged: std::collections::BTreeSet<String> =
        ["ls".to_string(), "obj".to_string()].into();
    assert!(
        report.updated.contains(&merged),
        "sharing through a hashed list element must still merge: {:?}",
        report.updated
    );
}

#[test]
fn list_hashing_round_trips_through_checkout() {
    let config = KishuConfig {
        hash_primitive_lists: true,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    s.run_cell("words = ['alpha', 'beta']\n").expect("runs");
    let before = s.head();
    s.run_cell("words[0] = 'gamma'\n").expect("runs");
    s.checkout(before).expect("undo");
    assert_eq!(probe(&mut s, "words[0]").as_deref(), Some("'alpha'"));
}

// ----------------------------------------------------------------------
// persistence / resume

#[test]
fn session_resumes_from_a_durable_store_in_a_fresh_kernel() {
    let dir = std::env::temp_dir().join(format!("kishu-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("resume.log");
    let _ = std::fs::remove_file(&path);

    let head;
    {
        let store = FileStore::create(&path).expect("create");
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        s.run_cell("df = read_csv('d', 200, 3, 9)\n").expect("runs");
        s.run_cell("total = df['c0'].sum()\n").expect("runs");
        s.run_cell("tags = ['x', 'y']\n").expect("runs");
        head = s.head();
        s.persist().expect("persist graph");
        // The kernel process "dies" here (session dropped).
    }

    let store = FileStore::open(&path).expect("reopen");
    let mut resumed =
        KishuSession::resume(Box::new(store), KishuConfig::default()).expect("resume");
    assert_eq!(resumed.head(), head);
    assert_eq!(probe(&mut resumed, "len(tags)").as_deref(), Some("2"));
    assert_eq!(probe(&mut resumed, "len(df.columns)").as_deref(), Some("3"));
    // Time-traveling still works in the resumed session.
    let g = resumed.graph().clone();
    let first = g.children(g.root())[0];
    resumed.checkout(first).expect("checkout in resumed session");
    assert!(!resumed.interp.globals.contains("tags"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_without_a_persisted_graph_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("kishu-resume2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("no-graph.log");
    let _ = std::fs::remove_file(&path);
    {
        let store = FileStore::create(&path).expect("create");
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        s.run_cell("x = 1\n").expect("runs");
        // No persist() call.
    }
    let store = FileStore::open(&path).expect("reopen");
    assert!(KishuSession::resume(Box::new(store), KishuConfig::default()).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn persist_is_incremental_and_latest_wins() {
    let dir = std::env::temp_dir().join(format!("kishu-resume3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("multi.log");
    let _ = std::fs::remove_file(&path);
    {
        let store = FileStore::create(&path).expect("create");
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        s.run_cell("v = 1\n").expect("runs");
        s.persist().expect("persist #1");
        s.run_cell("v = 2\n").expect("runs");
        s.persist().expect("persist #2");
    }
    let store = FileStore::open(&path).expect("reopen");
    let mut resumed =
        KishuSession::resume(Box::new(store), KishuConfig::default()).expect("resume");
    assert_eq!(probe(&mut resumed, "v").as_deref(), Some("2"), "latest snapshot wins");
    std::fs::remove_file(&path).ok();
}

// ----------------------------------------------------------------------
// think-time deferred checkpointing (§2.2 / §8.1 future work)

#[test]
fn deferred_serialization_moves_bytes_into_think_time() {
    let config = KishuConfig {
        defer_serialization: true,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    let report = s.run_cell("big = arange(100000)\n").expect("runs");
    // The user-visible checkpoint wrote nothing yet.
    assert_eq!(report.checkpoint_bytes, 0);
    assert_eq!(s.pending_count(), 1);
    assert_eq!(s.store_stats().payload_bytes, 0);
    // Think time passes...
    let flushed = s.flush_pending();
    assert_eq!(flushed, 1);
    assert!(s.store_stats().payload_bytes > 800_000, "the array hit storage");
    assert_eq!(s.pending_count(), 0);
}

#[test]
fn deferred_bytes_flush_before_the_next_cell() {
    let config = KishuConfig {
        defer_serialization: true,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    s.run_cell("ls = [1, 2]\n").expect("runs");
    let before = s.head();
    assert_eq!(s.pending_count(), 1);
    // The next cell mutates ls — the pending snapshot must have been
    // written first, or the undo below would restore the wrong value.
    s.run_cell("ls.append(3)\n").expect("runs");
    s.checkout(before).expect("undo");
    assert_eq!(probe(&mut s, "len(ls)").as_deref(), Some("2"));
}

#[test]
fn checkout_flushes_pending_first() {
    let config = KishuConfig {
        defer_serialization: true,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    s.run_cell("a = [1]\n").expect("runs");
    let t1 = s.head();
    s.run_cell("a = [1, 2, 3]\n").expect("runs");
    let t2 = s.head();
    // t2's delta is still pending; checking out t1 must not lose it.
    s.checkout(t1).expect("back");
    assert_eq!(probe(&mut s, "len(a)").as_deref(), Some("1"));
    s.checkout(t2).expect("forward again");
    assert_eq!(probe(&mut s, "len(a)").as_deref(), Some("3"));
}


// ----------------------------------------------------------------------
// serializer chaining (§6.1: CloudPickle first, Dill as fallback)

#[test]
fn chained_reducers_over_the_full_registry() {
    use kishu_kernel::{Heap, ObjKind};
    use kishu_libsim::LibReducer;
    use kishu_pickle::{dumps, ChainReducer};
    // Chaining the registry reducer with itself changes nothing: the same
    // 5 classes stay unserializable (they model objects NO pickle library
    // handles, like live generators) — per-co-variable storage is what
    // makes the chain composable at all.
    let registry = Arc::new(Registry::standard());
    let chain = ChainReducer::new(
        LibReducer::new(registry.clone()),
        LibReducer::new(registry.clone()),
    );
    let mut heap = Heap::new();
    let mut failures = 0;
    for spec in registry.classes() {
        let obj = heap.alloc(ObjKind::External {
            class: spec.id,
            attrs: Vec::new(),
            payload: vec![7; 16],
            epoch: 0,
        });
        if dumps(&heap, &[obj], &chain).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 5);
    assert_eq!(chain.fallback_hits(), 5, "the fallback was consulted each time");
}

#[test]
fn persist_flushes_pending_think_time_writes() {
    let dir = std::env::temp_dir().join(format!("kishu-persistflush-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("flush.log");
    let _ = std::fs::remove_file(&path);
    {
        let store = FileStore::create(&path).expect("create");
        let config = KishuConfig {
            defer_serialization: true,
            ..KishuConfig::default()
        };
        let mut s = KishuSession::new(Box::new(store), config);
        s.run_cell("payload = arange(5000)\n").expect("runs");
        assert_eq!(s.pending_count(), 1);
        s.persist().expect("persist");
        assert_eq!(s.pending_count(), 0, "persist must flush first");
    }
    let store = FileStore::open(&path).expect("reopen");
    let mut resumed =
        KishuSession::resume(Box::new(store), KishuConfig::default()).expect("resume");
    let out = resumed.run_cell("payload.sum()\n").expect("runs");
    assert!(out.outcome.error.is_none());
    assert!(out.outcome.value_repr.is_some(), "deferred data survived the restart");
    std::fs::remove_file(&path).ok();
}
