//! The paper's five evaluation claims (§7), as executable assertions at
//! test scale. EXPERIMENTS.md records the full-scale `repro` outputs.

use std::time::Duration;

use kishu_bench::experiments::{checkpoint, tracking};
use kishu_bench::methods::{Driver, MethodKind};
use kishu_libsim::Registry;
use kishu_workloads::{cell, notebooks};

/// Claim 1 (§7.2): Kishu checkpoints and checks out session states holding
/// any of the 146 classes — zero failures.
#[test]
fn claim1_kishu_handles_all_146_classes() {
    let registry = Registry::standard();
    for spec in registry.classes() {
        let mut d = Driver::new(MethodKind::Kishu);
        d.run_cell(&cell(format!("x = lib_obj('{}', 256, 3)\n", spec.name)));
        d.run_cell(&cell("y = 1\n"));
        assert!(d.failed.is_none(), "{}: checkpoint failed", spec.name);
        d.restore_to(0)
            .unwrap_or_else(|e| panic!("{}: checkout failed: {e}", spec.name));
        assert_eq!(
            d.probe("type(x)").as_deref(),
            Some("'external'"),
            "{}: object not restored",
            spec.name
        );
        assert!(d.probe("y").is_none(), "{}: later state leaked", spec.name);
    }
}

/// Claim 2 (§7.3): Kishu's cumulative incremental checkpoints are smaller
/// than every alternative that stores data unconditionally.
#[test]
fn claim2_smallest_checkpoints() {
    for nb in [notebooks::hw_lm(0.1), notebooks::sklearn(0.1)] {
        let kishu = checkpoint::run_notebook(&nb, MethodKind::Kishu)
            .bytes
            .expect("kishu never fails");
        for kind in [
            MethodKind::DumpSession,
            MethodKind::CriuFull,
            MethodKind::CriuIncremental,
        ] {
            if let Some(bytes) = checkpoint::run_notebook(&nb, kind).bytes {
                assert!(
                    kishu < bytes,
                    "{}: Kishu {kishu} not smaller than {} {bytes}",
                    nb.name,
                    kind.label()
                );
            }
        }
    }
}

/// Claim 3 (§7.4): Kishu's checkpoint time is a small fraction of notebook
/// runtime (the paper's bound is 15.5%; we allow head-room for the
/// unoptimized simulator at tiny cell times).
#[test]
fn claim3_checkpoint_time_is_a_fraction_of_runtime() {
    let nb = notebooks::torch_gpu(0.2);
    let r = checkpoint::run_notebook(&nb, MethodKind::Kishu);
    let ckpt = r.time.expect("kishu ok");
    let run = r.cell_time.max(Duration::from_micros(1));
    assert!(
        ckpt < run,
        "checkpointing ({ckpt:?}) should not dominate execution ({run:?})"
    );
}

/// Claim 4 (§7.5): Kishu's incremental checkout beats every complete
/// restore for undoing a small cell on a large state.
#[test]
fn claim4_fastest_undo() {
    let nb = notebooks::sklearn(0.3);
    let undo = |kind: MethodKind| -> Option<Duration> {
        let mut d = Driver::new(kind);
        for c in &nb.cells {
            d.run_cell(c);
        }
        if d.failed.is_some() {
            return None;
        }
        d.restore_to(nb.cells.len() - 2).ok().map(|c| c.time)
    };
    let kishu = undo(MethodKind::Kishu).expect("kishu works");
    for kind in [
        MethodKind::DumpSession,
        MethodKind::ElasticNotebook,
        MethodKind::CriuFull,
        MethodKind::CriuIncremental,
    ] {
        if let Some(t) = undo(kind) {
            assert!(
                kishu < t,
                "Kishu undo ({kishu:?}) must beat {} ({t:?})",
                kind.label()
            );
        }
    }
}

/// Claim 5 (§7.6): delta tracking costs a few percent of runtime and beats
/// the check-all ablation on state-heavy notebooks.
#[test]
fn claim5_low_tracking_overhead() {
    let nb = notebooks::sklearn(0.3);
    let ours = tracking::run_kishu_tracking(&nb, false);
    let ablated = tracking::run_kishu_tracking(&nb, true);
    assert!(
        ours.total() < ablated.total(),
        "pruning must win: {:?} vs {:?}",
        ours.total(),
        ablated.total()
    );
    // The paper's ≤2-3%-of-runtime bound is measured against real ML cell
    // times (seconds); our simulated cells are far lighter, which inflates
    // the ratio. Assert the percentage where compute is heaviest, and only
    // sanity-bound the light-cell notebook.
    assert!(
        ours.percent() < 100.0,
        "tracking dominates runtime ({:.1}%)",
        ours.percent()
    );
    let heavy = notebooks::torch_gpu(0.5);
    let heavy_run = tracking::run_kishu_tracking(&heavy, false);
    // Debug builds slow the hash fast-path ~10x; the release-mode number
    // (recorded by `repro table6` in EXPERIMENTS.md) sits in the paper's
    // band. Keep a generous debug-build bound here.
    assert!(
        heavy_run.percent() < 60.0,
        "tracking at {:.1}% of a compute-heavy notebook's runtime",
        heavy_run.percent()
    );
}
