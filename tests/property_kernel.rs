//! Property tests of the kernel substrate's invariants: the heap's GC and
//! page accounting, and the namespace's access-tracking laws.

use kishu_kernel::{Heap, Namespace, ObjId, ObjKind};
use kishu_testkit::prelude::*;

#[derive(Debug, Clone)]
enum HeapOp {
    AllocInt(i64),
    AllocList,
    /// Push object `a % live` into list `b % live` (if the target is a
    /// list).
    Link(usize, usize),
    /// Mutate object `a % live` (if an int or array).
    Mutate(usize),
    /// Drop root `a % roots`.
    DropRoot(usize),
    Gc,
}

fn op_strategy() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        any::<i64>().prop_map(HeapOp::AllocInt),
        Just(HeapOp::AllocList),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| HeapOp::Link(a, b)),
        any::<usize>().prop_map(HeapOp::Mutate),
        any::<usize>().prop_map(HeapOp::DropRoot),
        Just(HeapOp::Gc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence: every object reachable from a root is
    /// live, every collected object is unreachable, and stats agree with a
    /// fresh traversal.
    #[test]
    fn gc_preserves_exactly_the_reachable(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut heap = Heap::new();
        let mut roots: Vec<ObjId> = Vec::new();
        for op in ops {
            match op {
                HeapOp::AllocInt(v) => roots.push(heap.alloc(ObjKind::Int(v))),
                HeapOp::AllocList => roots.push(heap.alloc(ObjKind::List(Vec::new()))),
                HeapOp::Link(a, b) => {
                    if roots.is_empty() {
                        continue;
                    }
                    let src = roots[a % roots.len()];
                    let dst = roots[b % roots.len()];
                    if matches!(heap.kind(dst), ObjKind::List(_)) {
                        heap.modify(dst, |k| {
                            if let ObjKind::List(items) = k {
                                items.push(src);
                            }
                        });
                    }
                }
                HeapOp::Mutate(a) => {
                    if roots.is_empty() {
                        continue;
                    }
                    let id = roots[a % roots.len()];
                    if matches!(heap.kind(id), ObjKind::Int(_)) {
                        heap.modify(id, |k| {
                            if let ObjKind::Int(v) = k {
                                *v = v.wrapping_add(1);
                            }
                        });
                    }
                }
                HeapOp::DropRoot(a) => {
                    if !roots.is_empty() {
                        let idx = a % roots.len();
                        roots.swap_remove(idx);
                    }
                }
                HeapOp::Gc => {
                    heap.collect_garbage(roots.iter().copied());
                    // Every root and everything reachable from it survives.
                    for r in &roots {
                        for obj in heap.reachable_from(*r) {
                            prop_assert!(heap.is_live(obj));
                        }
                    }
                }
            }
        }
        // Final GC: live set equals the closure of the roots.
        heap.collect_garbage(roots.iter().copied());
        let mut expected: std::collections::BTreeSet<ObjId> = Default::default();
        for r in &roots {
            expected.extend(heap.reachable_from(*r));
        }
        let live: std::collections::BTreeSet<ObjId> = heap.live_objects().collect();
        prop_assert_eq!(live, expected);
        // Stats agree.
        let stats = heap.stats();
        prop_assert_eq!(stats.live_objects, heap.live_objects().count());
    }

    /// Dirty pages are always a subset of live pages, and clearing empties
    /// them.
    #[test]
    fn dirty_pages_are_live_pages(sizes in prop::collection::vec(1usize..4000, 1..30)) {
        let mut heap = Heap::new();
        let mut ids = Vec::new();
        for n in &sizes {
            ids.push(heap.alloc(ObjKind::NdArray(vec![0.0; *n])));
        }
        heap.clear_dirty_pages();
        prop_assert!(heap.dirty_pages().is_empty());
        for id in &ids {
            heap.modify(*id, |k| {
                if let ObjKind::NdArray(v) = k {
                    v[0] = 1.0;
                }
            });
        }
        let live: std::collections::BTreeSet<u64> = heap.live_pages().into_iter().collect();
        for p in heap.dirty_pages() {
            prop_assert!(live.contains(&p), "dirty page {p} not live");
        }
    }

    /// Namespace law: the access record is exactly the tracked operations,
    /// and untracked operations never leak into it.
    #[test]
    fn namespace_records_exactly_tracked_accesses(
        names in prop::collection::vec("[a-z]{1,5}", 1..12),
        tracked in prop::collection::vec(any::<bool>(), 1..12),
    ) {
        let mut ns = Namespace::new();
        ns.begin_tracking();
        let mut expected: std::collections::BTreeSet<String> = Default::default();
        for (name, t) in names.iter().zip(&tracked) {
            if *t {
                ns.set(name, ObjId(1));
                expected.insert(name.clone());
            } else {
                ns.set_untracked(name, ObjId(1));
            }
        }
        let rec = ns.end_tracking();
        prop_assert_eq!(rec.accessed(), expected);
    }
}
