//! Crash-recovery and fault-injection suite.
//!
//! Three layers of the durability story, bottom-up:
//!
//! 1. **Kill-at-any-byte on the log file**: truncating a [`FileStore`] log at
//!    *every* possible prefix length must recover exactly the longest intact
//!    record prefix — never a panic, never a torn record, and the recovered
//!    log accepts appends.
//! 2. **Resume from any persisted prefix**: a session that `persist()`ed its
//!    Checkpoint Graph periodically must `resume` from any crash prefix that
//!    still holds at least one intact graph snapshot, restoring exactly the
//!    newest surviving persist point — and error (not panic) otherwise.
//! 3. **Acceptance under live faults**: a 50-cell scripted session running
//!    over a [`FaultStore`] at 5% transient fault probability completes
//!    every checkout with namespace state equivalent to a fault-free twin,
//!    with the degradation visible in the session's counters and the fault
//!    ledger.
//! 4. **Kill-at-any-byte during shared-store GC**: a compaction of a
//!    multi-tenant [`SharedStore`] killed at any point of its commit
//!    sequence must leave a store that reopens, `resume`s every tenant to
//!    its persisted head, and checks out every historical commit
//!    byte-identically — the generation either fully committed or is
//!    fully absent, never torn.
//!
//! Fault decisions are seeded; set `KISHU_TESTKIT_SEED` to replay a run.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use kishu::session::{KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;
use kishu_storage::{CheckpointStore, FaultPlan, FaultStore, FileStore, MemoryStore, SharedStore};
use kishu_testkit::rng::env_seed;

/// Whether this run uses the test's built-in seed (for which fault-firing
/// counts are known) rather than a caller-chosen `KISHU_TESTKIT_SEED`. A
/// custom seed still gets the full equivalence checking, but can
/// legitimately draw a fault-free run, so "faults fired" is only asserted
/// for the default.
fn default_seed() -> bool {
    std::env::var("KISHU_TESTKIT_SEED").is_err()
}

/// Private temp dir per test process.
fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kishu-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

/// Render every variable in the session namespace (ground truth for state
/// equivalence).
fn snapshot(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

/// FileStore record framing: marker byte + u32 len + u32 crc.
const HEADER_LEN: u64 = 9;

/// End offsets of each *blob-completing* record in a FileStore log, parsed
/// from the raw bytes. A v1 record (`K`) or a chunk manifest (`M`) completes
/// a blob; a chunk record (`C`) does not — a blob's chunks precede its
/// manifest, so a log cut after some chunks but before their manifest holds
/// no new blob (the orphan chunks are harmless dedup fodder).
fn record_ends(log: &[u8]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut off = 0u64;
    while off + HEADER_LEN <= log.len() as u64 {
        let o = off as usize;
        let marker = log[o];
        assert!(
            matches!(marker, 0x4B | 0x43 | 0x4D),
            "unknown record marker {marker:#x}"
        );
        let len = u32::from_le_bytes([log[o + 1], log[o + 2], log[o + 3], log[o + 4]]) as u64;
        off += HEADER_LEN + len;
        assert!(off <= log.len() as u64, "log ends on a record boundary");
        if marker != 0x43 {
            ends.push(off);
        }
    }
    ends
}

#[test]
fn kill_at_any_byte_recovers_the_longest_intact_prefix() {
    // A log with records of assorted sizes: empty through multi-KB, the
    // large ones crossing the chunking threshold so the log mixes v1
    // records with chunk + manifest sequences (one compressible payload,
    // one incompressible, so both stored-chunk flags appear).
    let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rng = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state >> 24) as u8
    };
    let payloads: Vec<Vec<u8>> = vec![
        vec![],
        vec![0xAA; 1],
        (0..=16u8).collect(),
        vec![0x55; 64],
        (0..6000u32).map(|i| (i % 251) as u8).collect(),
        vec![1, 2, 3],
        (0..4000).map(|_| rng()).collect(),
        (0..130u8).map(|b| b.wrapping_mul(7)).collect(),
    ];
    let full = temp_path("kill.full.log");
    {
        let mut s = FileStore::create(&full).expect("create");
        for p in &payloads {
            s.put(p).expect("put");
        }
        s.sync().expect("sync");
    }
    let log = std::fs::read(&full).expect("read log");
    let ends = record_ends(&log);
    assert_eq!(ends.len(), payloads.len());

    let cut_path = temp_path("kill.cut.log");
    for cut in 0..=log.len() {
        std::fs::write(&cut_path, &log[..cut]).expect("write prefix");
        let mut s = FileStore::open(&cut_path).expect("open never fails on a prefix");
        let intact = ends.iter().filter(|e| **e <= cut as u64).count();
        assert_eq!(
            s.blob_count(),
            intact as u64,
            "cut at byte {cut}: expected exactly the longest intact record prefix"
        );
        for (i, p) in payloads.iter().take(intact).enumerate() {
            assert_eq!(&s.get(i as u64).expect("surviving record reads"), p, "cut {cut}");
        }
        // The recovered log accepts appends and reads them back.
        let id = s.put(b"post-crash append").expect("append after recovery");
        assert_eq!(s.get(id).expect("read back"), b"post-crash append");
        assert_eq!(s.blob_count(), intact as u64 + 1);
    }
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&cut_path).ok();
}

#[test]
fn resume_succeeds_from_any_prefix_with_an_intact_snapshot() {
    // Scripted session on a FileStore, persisting the graph three times.
    let full = temp_path("resume.full.log");
    let cells = [
        "a = [1, 2, 3]\n",
        "b = arange(8)\n",
        "a.append(4)\n", // persist #1 after this
        "c = {'k': 10}\n",
        "b[0] = 99.0\n", // persist #2 after this
        "d = a\n",
        "del c\n",
        "a.append(5)\n", // persist #3 after this
    ];
    // After each persist: (number of blobs the store holds, expected state).
    let mut persists: Vec<(u64, BTreeMap<String, String>)> = Vec::new();
    {
        let store = FileStore::create(&full).expect("create");
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        for (i, cell) in cells.iter().enumerate() {
            let r = s.run_cell(cell).expect("parses");
            assert!(r.outcome.error.is_none(), "cell {i}: {:?}", r.outcome.error);
            if matches!(i, 2 | 4 | 7) {
                s.persist().expect("persist");
                persists.push((s.store_stats().blobs, snapshot(&s)));
            }
        }
    }
    let log = std::fs::read(&full).expect("read log");
    let ends = record_ends(&log);

    // Cut at every record boundary and at bytes straddling each boundary
    // (mid-header and mid-payload), so torn snapshots and torn data blobs
    // are both exercised.
    let mut cuts: Vec<u64> = vec![0];
    for e in &ends {
        for c in [e.saturating_sub(5), e.saturating_sub(1), *e, e + 1, e + 4] {
            if c <= log.len() as u64 {
                cuts.push(c);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();

    let cut_path = temp_path("resume.cut.log");
    for cut in cuts {
        std::fs::write(&cut_path, &log[..cut as usize]).expect("write prefix");
        let intact = ends.iter().filter(|e| **e <= cut).count() as u64;
        // The newest persist whose snapshot blob (the last blob written by
        // that persist) survived the crash is what resume must restore.
        let expected = persists.iter().rev().find(|(blobs, _)| *blobs <= intact);
        let store = FileStore::open(&cut_path).expect("open recovers");
        match KishuSession::resume(Box::new(store), KishuConfig::default()) {
            Ok(resumed) => {
                let (_, want) = expected.unwrap_or_else(|| {
                    panic!("cut {cut}: resume succeeded with no intact snapshot")
                });
                assert_eq!(
                    &snapshot(&resumed),
                    want,
                    "cut {cut}: resumed state is not the newest surviving persist"
                );
            }
            Err(e) => {
                assert!(
                    expected.is_none(),
                    "cut {cut}: resume failed despite an intact snapshot: {e}"
                );
            }
        }
    }
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&cut_path).ok();
}

/// 50 deterministic cells over a small variable pool: creations, guarded
/// mutations, aliasing, deletes — enough churn that checkpoints carry real
/// deltas and fallback recomputation has work to do.
fn scripted_cells() -> Vec<String> {
    (0..50u32)
        .map(|i| {
            let k = i % 7;
            if i < 7 {
                return format!("v{k} = [{i}, {}]\n", i + 1);
            }
            match i % 5 {
                0 => format!("v{k} = arange({})\n", (i % 11) + 4),
                1 => format!(
                    "if type(v{k}) == 'list':\n    v{k}.append({i})\nelse:\n    v{k} = [{i}]\n"
                ),
                2 => format!("v{k} = {{'i': {i}, 'l': [{i}, {}]}}\n", i * 2),
                3 => format!("v{k} = v{}\n", (i + 3) % 7),
                _ => format!("tmp = len(str(v{k}))\n"),
            }
        })
        .collect()
}

/// Drive the faulty session and its fault-free twin through the same cells
/// and checkouts; assert state equivalence throughout. Returns the faulty
/// session's accumulated degradation (blobs dropped + integrity failures).
fn run_twins(faulty: &mut KishuSession, clean: &mut KishuSession) -> (usize, usize) {
    let mut dropped = 0usize;
    let mut integrity = 0usize;
    for (i, cell) in scripted_cells().iter().enumerate() {
        let rf = faulty.run_cell(cell).expect("parses");
        let rc = clean.run_cell(cell).expect("parses");
        assert_eq!(rf.outcome.error, rc.outcome.error, "cell {i} outcome diverged");
        assert_eq!(rf.node, rc.node, "cell {i} committed different nodes");
        dropped += rf.blobs_dropped;
        assert_eq!(rc.blobs_dropped, 0, "the fault-free twin never drops blobs");
        assert_eq!(snapshot(faulty), snapshot(clean), "state diverged after cell {i}");
        // Every 10th cell: time-travel to an earlier checkpoint in both.
        if (i + 1) % 10 == 0 {
            let target = NodeId((i as u32).div_ceil(2));
            let cf = faulty.checkout(target).expect("faulty checkout completes");
            let cc = clean.checkout(target).expect("clean checkout completes");
            integrity += cf.integrity_failures;
            assert_eq!(cc.integrity_failures, 0);
            assert_eq!(
                snapshot(faulty),
                snapshot(clean),
                "checkout of {target:?} after cell {i} diverged"
            );
        }
    }
    (dropped, integrity)
}

#[test]
fn faulty_session_matches_fault_free_twin_with_retries() {
    // 5% transient faults with the default retry policy: retries absorb
    // nearly everything, state never diverges.
    let seed = env_seed(0xC0FFEE);
    let store = FaultStore::new(Box::new(MemoryStore::new()), FaultPlan::transient(0.05), seed);
    let ledger = store.ledger_handle();
    let mut faulty = KishuSession::new(Box::new(store), KishuConfig::default());
    let mut clean = KishuSession::in_memory(KishuConfig::default());
    run_twins(&mut faulty, &mut clean);
    assert!(
        !default_seed() || ledger.total() > 0,
        "no faults fired at 5% over a 50-cell session (seed {seed})"
    );
}

#[test]
fn faulty_session_degrades_gracefully_without_retries() {
    // Same plan but zero retries: every transient fault lands, so blobs are
    // dropped at write time and reads fail over to recomputation — and the
    // namespace still never diverges from the fault-free run.
    let seed = env_seed(0xC0FFEE);
    let config = KishuConfig {
        store_retries: 0,
        ..KishuConfig::default()
    };
    let store = FaultStore::new(Box::new(MemoryStore::new()), FaultPlan::transient(0.05), seed);
    let ledger = store.ledger_handle();
    let mut faulty = KishuSession::new(Box::new(store), config);
    let mut clean = KishuSession::in_memory(KishuConfig::default());
    let (dropped, integrity) = run_twins(&mut faulty, &mut clean);
    assert!(
        !default_seed() || ledger.total() > 0,
        "no faults fired at 5% over a 50-cell session (seed {seed})"
    );
    assert_eq!(
        faulty.metrics().total_blobs_dropped(),
        dropped,
        "session metrics agree with per-cell reports"
    );
    assert!(
        !default_seed() || dropped + integrity > 0,
        "without retries, degradation must be visible in the counters (seed {seed})"
    );
}

#[test]
fn corrupt_reads_fall_back_to_recomputation() {
    // Bit-flips on every 4th get: integrity checks catch the corruption and
    // checkout recomputes instead of loading garbage.
    let seed = env_seed(0xBADC0DE);
    let mut plan = FaultPlan::none();
    plan.bit_flip_p = 0.25;
    let store = FaultStore::new(Box::new(MemoryStore::new()), plan, seed);
    let ledger = store.ledger_handle();
    let mut faulty = KishuSession::new(Box::new(store), KishuConfig::default());
    let mut clean = KishuSession::in_memory(KishuConfig::default());
    let (_, integrity) = run_twins(&mut faulty, &mut clean);
    let flips = ledger.snapshot().count(kishu_storage::FaultKind::BitFlip);
    assert!(!default_seed() || flips > 0, "no bit-flips fired (seed {seed})");
    assert!(
        flips == 0 || integrity > 0,
        "bit-flips fired but no integrity failures were counted (seed {seed})"
    );
}

/// Private temp *directory* per test process (the shared store is a
/// directory of shard/tenant logs plus a manifest, not a single file).
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kishu-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Clone a store directory, so each simulated crash starts from the same
/// pre-GC disk image.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("mkdir");
    for e in std::fs::read_dir(src).expect("read dir").flatten() {
        std::fs::copy(e.path(), dst.join(e.file_name())).expect("copy file");
    }
}

/// Everything recovery must reproduce for one tenant: its persisted-head
/// namespace, and the namespace at every committed node.
struct TenantTruth {
    name: &'static str,
    head: BTreeMap<String, String>,
    at_nodes: Vec<(NodeId, BTreeMap<String, String>)>,
}

/// GC compaction killed at any byte of its commit sequence: the store must
/// reopen either fully on the old generation or fully on the new one, and
/// in both worlds every tenant resumes to its persisted head and every
/// historical commit checks out byte-identically. Afterwards, a clean GC
/// pass always converges (reclaiming the garbage the killed pass did not).
#[test]
fn gc_compaction_killed_at_any_byte_recovers_every_tenant() {
    // ---- Build the pre-GC store: two tenants, interleaved cells, two
    // persists each (the first persist's snapshot becomes GC fodder).
    let base = temp_dir("gc-base");
    let scripts: [&[&str]; 2] = [
        &["data = [7, 7, 7, 7]\n", "a = [1, 2]\n", "a.append(3)\n", "b = a\n", "a.append(4)\n"],
        &["data = [7, 7, 7, 7]\n", "x = {'k': 1}\n", "x['k'] = 2\n", "y = [9]\n", "del y\n"],
    ];
    let mut live: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    let mut truths: Vec<TenantTruth> = Vec::new();
    {
        let store = SharedStore::create(&base, 3).expect("create");
        let mut sessions: Vec<(&str, KishuSession)> = ["ana", "ben"]
            .iter()
            .map(|n| (*n, KishuSession::on_shared(&store, n, KishuConfig::default()).expect("tenant")))
            .collect();
        for i in 0..scripts[0].len() {
            for (ti, (_, s)) in sessions.iter_mut().enumerate() {
                let r = s.run_cell(scripts[ti][i]).expect("parses");
                assert!(r.outcome.error.is_none(), "cell {i}");
                if i == 2 {
                    s.persist().expect("mid persist (superseded later)");
                }
            }
        }
        for (name, s) in sessions.iter_mut() {
            s.persist().expect("final persist");
            let head = snapshot(s);
            live.insert(name.to_string(), s.live_blobs());
            let nodes: Vec<NodeId> = (1..=scripts[0].len() as u32).map(NodeId).collect();
            let mut at_nodes = Vec::new();
            for n in nodes {
                s.checkout(n).expect("pre-crash checkout");
                at_nodes.push((n, snapshot(s)));
            }
            truths.push(TenantTruth { name, head, at_nodes });
        }
        store.sync_all().expect("sync");
    }

    // ---- Reference run (no crash): learn the commit's total byte budget
    // and confirm there is real garbage to reclaim.
    let reference = temp_dir("gc-ref");
    copy_dir(&base, &reference);
    let expected_reclaimed = {
        let store = SharedStore::open(&reference).expect("open");
        let r = store.collect(&live).expect("reference gc");
        assert!(r.reclaimed_blobs > 0, "superseded snapshots must be garbage: {r:?}");
        r.reclaimed_blobs
    };
    // Budget units consumed by a full commit: every byte of every
    // new-generation file and of the manifest, plus 1 for the rename.
    let total_units: u64 = std::fs::read_dir(&reference)
        .expect("read dir")
        .flatten()
        .filter(|e| {
            let n = e.file_name().to_string_lossy().into_owned();
            n.contains(".g1.") || n == "MANIFEST.json"
        })
        .map(|e| e.metadata().expect("metadata").len())
        .sum::<u64>()
        + 1;

    // ---- Kill the compaction at byte budgets spanning the whole commit:
    // the first bytes of the first shard file, both sides of every file
    // boundary (a stride finer than the smallest file), the
    // fully-written-but-unrenamed manifest, and the commit itself.
    let mut cuts: Vec<u64> = (0..4).collect();
    let stride = (total_units / 120).max(1);
    cuts.extend((0..=total_units).step_by(stride as usize));
    cuts.extend(total_units.saturating_sub(3)..=total_units);
    cuts.sort_unstable();
    cuts.dedup();

    let work = temp_dir("gc-work");
    for &cut in &cuts {
        copy_dir(&base, &work);
        let store = SharedStore::open(&work).expect("open pre-crash copy");
        store.set_crash_after_bytes(Some(cut));
        let outcome = store.collect(&live);
        drop(store); // the machine dies here
        let reopened = SharedStore::open(&work).expect("open after crash never fails");
        match &outcome {
            Ok(r) => {
                assert_eq!(reopened.generation(), 1, "cut {cut}: commit went through");
                assert_eq!(r.reclaimed_blobs, expected_reclaimed, "cut {cut}");
            }
            Err(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::Interrupted, "cut {cut}: {e}");
                assert_eq!(
                    reopened.generation(),
                    0,
                    "cut {cut}: a killed commit must leave the old generation"
                );
            }
        }
        // Stray partial files (half-written new generation, orphaned
        // MANIFEST.tmp) are swept on open.
        for e in std::fs::read_dir(&work).expect("read dir").flatten() {
            let n = e.file_name().to_string_lossy().into_owned();
            let current = format!(".g{}.log", reopened.generation());
            assert!(
                n == "MANIFEST.json" || n.ends_with(&current),
                "cut {cut}: stray file {n} survived recovery"
            );
        }
        reopened.check_invariants(true).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        // Every tenant resumes to its persisted head, and every commit in
        // its history restores byte-identically — GC (computed or killed)
        // reclaimed nothing reachable.
        for truth in &truths {
            let handle = reopened.tenant(truth.name).expect("tenant");
            let mut s = KishuSession::resume(Box::new(handle), KishuConfig::default())
                .unwrap_or_else(|e| panic!("cut {cut}: resume {} failed: {e}", truth.name));
            assert_eq!(snapshot(&s), truth.head, "cut {cut}: {} head", truth.name);
            for (n, want) in &truth.at_nodes {
                s.checkout(*n).expect("post-crash checkout");
                assert_eq!(&snapshot(&s), want, "cut {cut}: {} node {n:?}", truth.name);
            }
        }
        // Recovery converges: a clean pass reclaims exactly what is left.
        let r = reopened.collect(&live).expect("post-recovery gc");
        match &outcome {
            Ok(_) => assert_eq!(r.reclaimed_blobs, 0, "cut {cut}: nothing left after a commit"),
            Err(_) => assert_eq!(r.reclaimed_blobs, expected_reclaimed, "cut {cut}"),
        }
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&work).ok();
}
