//! Differential suite for the parallel checkpoint write pipeline.
//!
//! The serial path (`checkpoint_workers = 1`) is the oracle: for any
//! scripted session, any worker count must produce
//!
//! 1. **byte-identical store contents** — same blob ids, same bytes, in
//!    the same order (writes never leave the session thread; only
//!    serialization and CRC sealing fan out);
//! 2. **identical per-cell reports** — node ids, logical checkpoint bytes,
//!    physical bytes written, dedup and drop counters;
//! 3. **an identical fault ledger** when the store injects faults —
//!    [`FaultStore`] decisions are keyed, not drawn from a shared stream,
//!    so interleaving cannot perturb them;
//! 4. **dedup that never suppresses a changed payload** — with dedup on
//!    and off, every checkpoint restores the same namespace at every node.
//!
//! Scripts are generated from a seed; set `KISHU_TESTKIT_SEED` to replay.

use std::collections::BTreeMap;

use kishu::session::{CellReport, KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;
use kishu_storage::{FaultLedgerHandle, FaultPlan, FaultStore, MemoryStore};
use kishu_testkit::prelude::*;
use kishu_testkit::rng::Rng;

/// Worker counts under differential test; 1 is the oracle.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Generate a scripted notebook from a seed: fresh bindings, in-place
/// mutations, re-creations of identical values (the dedup bait), deletes,
/// and the occasional shared-structure cell.
fn scripted_cells(seed: u64, n_cells: usize) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: Vec<String> = Vec::new();
    let mut cells = Vec::new();
    let mut fresh = 0usize;
    for _ in 0..n_cells {
        let roll = rng.random_range(0..10u32);
        let cell = match roll {
            // Fresh list binding (a new co-variable).
            0..=3 => {
                let name = format!("v{fresh}");
                fresh += 1;
                let len = rng.random_range(1..6usize);
                let vals: Vec<String> =
                    (0..len).map(|_| rng.random_range(0..50i64).to_string()).collect();
                live.push(name.clone());
                format!("{name} = [{}]\n", vals.join(", "))
            }
            // In-place mutation: the payload *must* change.
            4..=5 if !live.is_empty() => {
                let name = &live[rng.random_range(0..live.len())];
                format!("{name}.append({})\n", rng.random_range(0..50i64))
            }
            // Re-create a constant value the session has likely produced
            // before — the detector fires (new object), the bytes repeat.
            6..=7 => {
                let name = format!("v{fresh}");
                fresh += 1;
                live.push(name.clone());
                format!("{name} = [1, 2, 3]\n")
            }
            // Share structure between two names (a merged co-variable).
            8 if !live.is_empty() => {
                let src = live[rng.random_range(0..live.len())].clone();
                let name = format!("v{fresh}");
                fresh += 1;
                live.push(name.clone());
                format!("{name} = {src}\n")
            }
            // Read-only cell.
            _ => "probe = 1\ndel probe\n".to_string(),
        };
        cells.push(cell);
    }
    cells
}

/// The fields of a [`CellReport`] that must agree across worker counts.
fn report_fingerprint(r: &CellReport) -> (Option<NodeId>, u64, u64, usize, usize, Vec<String>) {
    (
        r.node,
        r.checkpoint_bytes,
        r.bytes_written,
        r.blobs_dropped,
        r.blobs_deduped,
        r.updated.iter().map(|k| format!("{k:?}")).collect(),
    )
}

/// Run `cells` on an in-memory store with `workers` threads; return the
/// per-cell fingerprints and a full dump of the store (id → bytes).
fn run_plain(cells: &[String], workers: usize, dedup: bool) -> (Vec<(Option<NodeId>, u64, u64, usize, usize, Vec<String>)>, Vec<Vec<u8>>) {
    let config = KishuConfig {
        checkpoint_workers: workers,
        dedup_blobs: dedup,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    let mut reports = Vec::new();
    for cell in cells {
        let r = s.run_cell(cell).expect("generated cells parse");
        reports.push(report_fingerprint(&r));
    }
    let store = s.store();
    let blobs: Vec<Vec<u8>> = (0..store.blob_count())
        .map(|i| store.get(i).expect("in-memory blob reads back"))
        .collect();
    (reports, blobs)
}

/// Run `cells` over a fault-injecting store; return fingerprints and the
/// final fault ledger.
fn run_faulty(
    cells: &[String],
    workers: usize,
    seed: u64,
) -> (Vec<(Option<NodeId>, u64, u64, usize, usize, Vec<String>)>, kishu_storage::FaultLedger) {
    let plan = FaultPlan {
        put_transient_p: 0.08,
        get_transient_p: 0.05,
        short_write_p: 0.02,
        bit_flip_p: 0.02,
        ..FaultPlan::none()
    };
    let fault_store = FaultStore::new(Box::new(MemoryStore::new()), plan, seed);
    let ledger: FaultLedgerHandle = fault_store.ledger_handle();
    let config = KishuConfig {
        checkpoint_workers: workers,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::new(Box::new(fault_store), config);
    let mut reports = Vec::new();
    for cell in cells {
        let r = s.run_cell(cell).expect("generated cells parse");
        reports.push(report_fingerprint(&r));
    }
    (reports, ledger.snapshot())
}

/// Render the namespace (ground truth for state equivalence).
fn snapshot(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any worker count produces byte-identical store contents and
    /// identical per-cell reports vs the serial oracle.
    #[test]
    fn parallel_pipeline_matches_serial_oracle(seed in any::<u64>()) {
        let cells = scripted_cells(seed, 24);
        let (oracle_reports, oracle_blobs) = run_plain(&cells, 1, true);
        for workers in WORKER_COUNTS {
            let (reports, blobs) = run_plain(&cells, workers, true);
            prop_assert_eq!(&reports, &oracle_reports, "reports diverged at workers={}", workers);
            prop_assert_eq!(&blobs, &oracle_blobs, "store bytes diverged at workers={}", workers);
        }
    }

    /// Fault injection is independent of the pipeline width: the ledger —
    /// every injected fault, in order — is identical at every worker count.
    #[test]
    fn fault_ledger_is_identical_at_every_worker_count(seed in any::<u64>()) {
        let cells = scripted_cells(seed, 20);
        let (oracle_reports, oracle_ledger) = run_faulty(&cells, 1, seed ^ 0xFA17);
        for workers in WORKER_COUNTS {
            let (reports, ledger) = run_faulty(&cells, workers, seed ^ 0xFA17);
            prop_assert_eq!(&reports, &oracle_reports, "reports diverged at workers={}", workers);
            prop_assert_eq!(&ledger, &oracle_ledger, "fault ledger diverged at workers={}", workers);
        }
    }

    /// Dedup never suppresses a changed payload: with dedup on and off,
    /// checking out every node restores the same namespace.
    #[test]
    fn dedup_preserves_every_checkpoint(seed in any::<u64>()) {
        let cells = scripted_cells(seed, 18);
        let mut with = KishuSession::in_memory(KishuConfig {
            dedup_blobs: true,
            ..KishuConfig::default()
        });
        let mut without = KishuSession::in_memory(KishuConfig {
            dedup_blobs: false,
            ..KishuConfig::default()
        });
        let mut nodes = Vec::new();
        for cell in &cells {
            let a = with.run_cell(cell).expect("cells parse");
            let b = without.run_cell(cell).expect("cells parse");
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(a.checkpoint_bytes, b.checkpoint_bytes,
                "dedup must not change the logical checkpoint size");
            if let Some(n) = a.node {
                nodes.push(n);
            }
        }
        // Dedup is an optimization, never a behavior change: every past
        // state restores identically from both stores.
        for node in nodes {
            with.checkout(node).expect("checkout with dedup");
            without.checkout(node).expect("checkout without dedup");
            prop_assert_eq!(snapshot(&with), snapshot(&without), "node {:?}", node);
        }
    }
}

/// Repeat checkpoints of unchanged bytes are metadata-only: the dedup
/// counter fires and the store does not grow.
#[test]
fn repeat_payloads_are_deduplicated() {
    let mut s = KishuSession::in_memory(KishuConfig::default());
    s.run_cell("x = [1, 2, 3]\n").expect("first");
    let before = s.store_stats();
    // Re-creating the same value makes a fresh object, so the conservative
    // detector fires — but the sealed bytes are identical.
    let r = s.run_cell("x = [1, 2, 3]\n").expect("repeat");
    if r.node.is_some() && !r.updated.is_empty() {
        assert!(r.blobs_deduped > 0, "repeat write must dedup: {r:?}");
        assert_eq!(r.bytes_written, 0, "no physical bytes for a pure repeat");
        assert!(r.checkpoint_bytes > 0, "logical size still counted");
        assert_eq!(s.store_stats().blobs, before.blobs, "store did not grow");
    } else {
        panic!("detector did not fire on re-creation; dedup bait needs rework");
    }
    // A genuinely changed payload is never suppressed.
    let r = s.run_cell("x.append(4)\n").expect("mutate");
    assert_eq!(r.blobs_deduped, 0, "changed bytes must not dedup");
    assert!(r.bytes_written > 0, "changed bytes must hit the store");
    let node = r.node.expect("auto checkpoint");
    s.run_cell("x = 0\n").expect("clobber");
    s.checkout(node).expect("checkout");
    assert_eq!(
        repr(&s.interp.heap, s.interp.globals.peek("x").expect("x bound")),
        "[1, 2, 3, 4]"
    );
}

/// The serial oracle really is serial, and the default worker count obeys
/// the environment override.
#[test]
fn worker_count_default_honors_env() {
    // Can't set env vars safely in-process across threads; just check the
    // resolution logic's floor and the config plumbing.
    assert!(kishu::session::default_checkpoint_workers() >= 1);
    let cfg = KishuConfig {
        checkpoint_workers: 7,
        ..KishuConfig::default()
    };
    assert_eq!(cfg.checkpoint_workers, 7);
}
