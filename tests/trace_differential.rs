//! Differential suite proving the observability layer is **behavior-free**:
//! running the exact same faulty, time-traveling session with tracing on
//! and off produces
//!
//! 1. byte-identical store contents (blob ids, bytes, order);
//! 2. identical per-cell and per-checkout reports (every non-timing field);
//! 3. identical namespaces after every checkout;
//! 4. an identical fault ledger — span recording must not perturb the
//!    keyed fault decisions, their order, or their attempt numbers;
//!
//! at both the serial-oracle width (1 worker) and the parallel defaults
//! (4 workers), covering the checkpoint write pipeline and the checkout
//! read pipeline in one script. This is the invariant that makes
//! `KISHU_TRACE=...` safe to flip on against any workload: the trace
//! observes the run, it never participates in it.

use std::collections::BTreeMap;

use kishu::session::{CellReport, CheckoutReport, KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;
use kishu_storage::{FaultLedger, FaultPlan, FaultStore, MemoryStore};
use kishu_trace::Trace;

const FAULT_SEED: u64 = 0x7ACE_D1FF;

/// A fixed notebook exercising both pipelines: multi-co-variable cells
/// (fan-out for the worker pool), in-place mutations, a byte-identical
/// re-creation (dedup bait), shared structure, and a delete.
fn cells() -> Vec<&'static str> {
    vec![
        "x0 = list(range(40))\nx1 = list(range(50))\nx2 = list(range(60))\n",
        "y0 = [1, 2, 3]\ny1 = [4, 5, 6]\n",
        "x0.append(99)\n",
        "z = [7, 8, 9]\n",
        "y0 = [1, 2, 3]\n",
        "w0 = list(range(70))\nw1 = list(range(80))\n",
        "del x2\n",
        "x1.append(1)\n",
    ]
}

/// Every non-timing field of a [`CellReport`].
fn cell_fingerprint(r: &CellReport) -> String {
    format!(
        "node={:?} updated={:?} bytes={} written={} dropped={} deduped={}",
        r.node, r.updated, r.checkpoint_bytes, r.bytes_written, r.blobs_dropped, r.blobs_deduped
    )
}

/// Every non-timing field of a [`CheckoutReport`].
fn checkout_fingerprint(r: &CheckoutReport) -> String {
    format!(
        "target={:?} loaded={:?} recomputed={:?} removed={:?} identical={} bytes={} \
         integrity={} flushed={} cached={}",
        r.target,
        r.loaded,
        r.recomputed,
        r.removed,
        r.identical,
        r.bytes_loaded,
        r.integrity_failures,
        r.flushed,
        r.blobs_cached
    )
}

fn namespace(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

struct Run {
    cell_fps: Vec<String>,
    checkout_fps: Vec<String>,
    namespaces: Vec<BTreeMap<String, String>>,
    ledger: FaultLedger,
    blobs: Vec<Option<Vec<u8>>>,
    spans_recorded: usize,
}

/// One full write+time-travel session over a fault-injecting store, with
/// tracing on or off. Everything returned is a non-timing observable.
fn run_session(workers: usize, traced: bool) -> Run {
    let plan = FaultPlan {
        put_transient_p: 0.10,
        get_transient_p: 0.08,
        short_write_p: 0.03,
        bit_flip_p: 0.03,
        ..FaultPlan::none()
    };
    let fault_store = FaultStore::new(Box::new(MemoryStore::new()), plan, FAULT_SEED);
    let ledger_handle = fault_store.ledger_handle();
    let config = KishuConfig {
        checkpoint_workers: workers,
        restore_workers: workers,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::new(Box::new(fault_store), config);
    let trace = if traced { Trace::enabled() } else { Trace::disabled() };
    s.set_trace(&trace);

    let mut cell_fps = Vec::new();
    let mut nodes: Vec<NodeId> = Vec::new();
    for cell in cells() {
        let r = s.run_cell(cell).expect("scripted cells parse");
        cell_fps.push(cell_fingerprint(&r));
        if let Some(n) = r.node {
            nodes.push(n);
        }
    }
    // Time-travel across the whole history: cold undos, redos, and a
    // second round trip that exercises the read cache and memoized
    // fallback recomputation under injected read faults.
    let head = s.head();
    let mut checkout_fps = Vec::new();
    let mut namespaces = Vec::new();
    for target in [nodes[1], head, nodes[3], nodes[1], head] {
        let r = s.checkout(target).expect("checkout degrades, never fails");
        checkout_fps.push(checkout_fingerprint(&r));
        namespaces.push(namespace(&s));
    }
    let ledger = ledger_handle.snapshot();
    // Store dump last: these reads also pass through the fault injector,
    // deterministically (keyed decisions), so `Option` is the fingerprint.
    let store = s.store();
    let blobs: Vec<Option<Vec<u8>>> =
        (0..store.blob_count()).map(|i| store.get(i).ok()).collect();
    Run {
        cell_fps,
        checkout_fps,
        namespaces,
        ledger,
        blobs,
        spans_recorded: trace.spans().len(),
    }
}

#[test]
fn tracing_is_behavior_free_for_both_pipelines_at_1_and_4_workers() {
    for workers in [1usize, 4] {
        let off = run_session(workers, false);
        let on = run_session(workers, true);
        assert_eq!(off.cell_fps, on.cell_fps, "cell reports diverged at workers={workers}");
        assert_eq!(
            off.checkout_fps, on.checkout_fps,
            "checkout reports diverged at workers={workers}"
        );
        assert_eq!(
            off.namespaces, on.namespaces,
            "restored namespaces diverged at workers={workers}"
        );
        assert_eq!(off.ledger, on.ledger, "fault ledger diverged at workers={workers}");
        assert_eq!(off.blobs, on.blobs, "store bytes diverged at workers={workers}");
        // And the trace actually observed the run it did not perturb.
        assert_eq!(off.spans_recorded, 0, "disabled trace must record nothing");
        assert!(
            on.spans_recorded > 0,
            "enabled trace must record spans at workers={workers}"
        );
    }
}

/// The traced and untraced runs agree *with each other across widths* too:
/// one combined transcript (serial+untraced vs parallel+traced) — the
/// strongest composition of the two invariants.
#[test]
fn traced_parallel_run_matches_the_untraced_serial_oracle() {
    let oracle = run_session(1, false);
    let traced_parallel = run_session(4, true);
    assert_eq!(oracle.cell_fps, traced_parallel.cell_fps);
    assert_eq!(oracle.checkout_fps, traced_parallel.checkout_fps);
    assert_eq!(oracle.namespaces, traced_parallel.namespaces);
    assert_eq!(oracle.ledger, traced_parallel.ledger);
    assert_eq!(oracle.blobs, traced_parallel.blobs);
}
