//! Cross-crate integration tests: whole notebooks through the whole stack
//! (kernel → minipy → libsim → kishu → storage), plus cross-method state
//! agreement.

use kishu::session::{KishuConfig, KishuSession};
use kishu_bench::methods::{Driver, MethodKind};
use kishu_storage::FileStore;
use kishu_workloads::{all_notebooks, notebooks};

fn probe(s: &mut KishuSession, expr: &str) -> Option<String> {
    let out = s.run_cell(&format!("{expr}\n")).ok()?;
    out.outcome.error.is_none().then_some(out.outcome.value_repr)?
}

#[test]
fn every_notebook_runs_under_kishu_with_per_cell_checkpoints() {
    for nb in all_notebooks(0.05) {
        let mut s = KishuSession::in_memory(KishuConfig::default());
        for (i, c) in nb.cells.iter().enumerate() {
            let r = s
                .run_cell(&c.src)
                .unwrap_or_else(|e| panic!("{} cell {i}: {e}", nb.name));
            assert!(
                r.outcome.error.is_none(),
                "{} cell {i} raised: {:?}",
                nb.name,
                r.outcome.error
            );
        }
        // One checkpoint node per cell (plus root).
        assert_eq!(s.graph().len(), nb.cell_count() + 1, "{}", nb.name);
        assert!(s.store_stats().blobs > 0, "{} stored nothing", nb.name);
    }
}

#[test]
fn undo_restores_exact_values_on_every_notebook() {
    // For each notebook: remember a mid-run probe value, keep running,
    // checkout back, and verify the probe.
    for nb in all_notebooks(0.05) {
        let mut s = KishuSession::in_memory(KishuConfig::default());
        let mid = nb.cells.len() / 2;
        let mut mid_node = None;
        let mut mid_vars: Vec<String> = Vec::new();
        for (i, c) in nb.cells.iter().enumerate() {
            let r = s.run_cell(&c.src).expect("parses");
            assert!(r.outcome.error.is_none(), "{}: {:?}", nb.name, r.outcome.error);
            if i == mid {
                mid_node = r.node;
                mid_vars = s.interp.globals.names();
            }
        }
        let mid_node = mid_node.expect("mid cell ran");
        s.checkout(mid_node)
            .unwrap_or_else(|e| panic!("{}: checkout failed: {e}", nb.name));
        let now_vars = s.interp.globals.names();
        assert_eq!(now_vars, mid_vars, "{}: variable set mismatch after undo", nb.name);
    }
}

#[test]
fn kishu_and_dump_session_agree_after_restore() {
    // Two independent mechanisms restoring the same version must agree on
    // every probe-able value.
    let nb = notebooks::hw_lm(0.05);
    let mut kishu = Driver::new(MethodKind::Kishu);
    let mut dump = Driver::new(MethodKind::DumpSession);
    for c in &nb.cells {
        kishu.run_cell(c);
        dump.run_cell(c);
    }
    let target = nb.cells.len() / 2;
    kishu.restore_to(target).expect("kishu restores");
    dump.restore_to(target).expect("dump restores");
    for expr in ["theta_w", "theta_b", "len(losses)", "train_loss", "X_train.size"] {
        assert_eq!(
            kishu.probe(expr),
            dump.probe(expr),
            "mechanisms disagree on `{expr}`"
        );
    }
}

#[test]
fn all_methods_agree_on_a_shared_scenario() {
    let cells = [
        "data = arange(500)\n",
        "stats = {'mean': data.mean(), 'max': data.max()}\n",
        "data[0] = 999.0\n",
        "total = data.sum()\n",
    ];
    let mut answers: Vec<(String, Option<String>)> = Vec::new();
    for kind in MethodKind::ALL {
        let mut d = Driver::new(kind);
        for c in cells {
            d.run_cell(&kishu_workloads::cell(c));
        }
        d.restore_to(1).expect("restore to pre-mutation");
        let probe = d.probe("data[0]");
        answers.push((kind.label().to_string(), probe));
    }
    for (label, probe) in &answers {
        assert_eq!(
            probe.as_deref(),
            Some("0.0"),
            "{label} restored the wrong value"
        );
    }
}

#[test]
fn kishu_checkpoints_survive_a_durable_store() {
    let dir = std::env::temp_dir().join(format!("kishu-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("session.log");
    let _ = std::fs::remove_file(&path);
    {
        let store = FileStore::create(&path).expect("create");
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        s.run_cell("x = arange(1000)\n").expect("runs");
        let t = s.head();
        s.run_cell("x.fill(0.0)\n").expect("runs");
        s.checkout(t).expect("checkout reads from the file store");
        assert_eq!(probe(&mut s, "x.sum()").as_deref(), Some("499500.0"));
    }
    // The log itself is recoverable.
    let store = FileStore::open(&path).expect("reopen");
    assert!(kishu_storage::CheckpointStore::blob_count(&store) > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn det_replay_round_trips_a_fully_deterministic_notebook() {
    let nb = notebooks::hw_lm(0.05);
    assert!(nb.cells.iter().all(|c| c.deterministic));
    let mut d = Driver::new(MethodKind::KishuDetReplay);
    for c in &nb.cells {
        d.run_cell(c);
    }
    let final_theta = d.probe("theta_w").expect("bound");
    let mid = nb.cells.len() / 2;
    d.restore_to(mid).expect("restore via replay");
    d.restore_to(nb.cells.len() - 1).expect("back to the end");
    assert_eq!(d.probe("theta_w").as_deref(), Some(final_theta.as_str()));
}

#[test]
fn repeated_back_and_forth_is_stable() {
    // Hop between two states many times; values must never drift.
    let mut s = KishuSession::in_memory(KishuConfig::default());
    s.run_cell("ls = [1, 2, 3]\n").expect("runs");
    let a = s.head();
    s.run_cell("ls.append(4)\nls.append(5)\n").expect("runs");
    let b = s.head();
    for _ in 0..10 {
        s.checkout(a).expect("to a");
        assert_eq!(probe(&mut s, "len(ls)").as_deref(), Some("3"));
        s.checkout(b).expect("to b");
        assert_eq!(probe(&mut s, "len(ls)").as_deref(), Some("5"));
    }
    // Probing ran cells, which created checkpoints — the graph grew, but
    // the two original states stayed intact throughout.
}

#[test]
fn every_workload_cell_roundtrips_through_the_unparser() {
    // The unparser's round-trip law, checked over the entire language
    // surface the evaluation notebooks actually use.
    use kishu_minipy::{parse_program, unparse::unparse};
    for nb in all_notebooks(0.05) {
        for (i, c) in nb.cells.iter().enumerate() {
            let ast1 = parse_program(&c.src)
                .unwrap_or_else(|e| panic!("{} cell {i}: {e}", nb.name));
            let printed = unparse(&ast1);
            let ast2 = parse_program(&printed).unwrap_or_else(|e| {
                panic!("{} cell {i}: unparse output unparseable: {e}\n{printed}", nb.name)
            });
            // `def` source text is regenerated; none of the workload cells
            // define functions, so direct equality applies.
            assert_eq!(ast1, ast2, "{} cell {i} drifted via\n{printed}", nb.name);
        }
    }
}
