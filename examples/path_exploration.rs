//! Path-based exploration (§2.1, Fig 10): train two model variants on two
//! branches of the Checkpoint Graph and hop between them at sub-second
//! cost, because the (large) input data is *identical* across branches and
//! never reloaded.
//!
//! ```text
//! cargo run --example path_exploration
//! ```

use kishu::session::{KishuConfig, KishuSession};

fn value(s: &mut KishuSession, expr: &str) -> String {
    s.run_cell(&format!("{expr}\n"))
        .expect("parses")
        .outcome
        .value_repr
        .unwrap_or_default()
}

fn main() {
    let mut s = KishuSession::in_memory(KishuConfig::default());

    println!("-- shared prefix: load data (t1)");
    s.run_cell("df = read_csv('features', 50000, 8, 7)\ngmm = lib_obj('sk.GaussianMixture', 262144, 1)\n")
        .expect("runs");
    let t1 = s.head();

    println!("-- branch A: fit with k=3 (t2), plot (t3)");
    s.run_cell("gmm.fit(3)\n").expect("runs");
    s.run_cell("plot = gmm.result(64)\n").expect("runs");
    let t3 = s.head();
    let plot_a = value(&mut s, "plot.sum()");
    println!("   branch A plot fingerprint: {plot_a}");

    println!("-- checkout t1, branch B: fit with k=10 (t4), plot (t5)");
    s.checkout(t1).expect("back to the fork");
    s.run_cell("gmm.fit(10)\n").expect("runs");
    s.run_cell("plot = gmm.result(64)\n").expect("runs");
    let t5 = s.head();
    let plot_b = value(&mut s, "plot.sum()");
    println!("   branch B plot fingerprint: {plot_b}");

    println!("-- the graph now holds both branches:");
    for line in s.log() {
        println!("   {line}");
    }

    println!("-- switch back and forth; df is identical and never reloaded");
    for (label, target, expected) in [("A", t3, &plot_a), ("B", t5, &plot_b), ("A", t3, &plot_a)] {
        let report = s.checkout(target).expect("switch");
        let now = value(&mut s, "plot.sum()");
        assert_eq!(&now, expected, "branch {label} state restored exactly");
        println!(
            "   -> branch {label}: loaded {} co-variable(s), {} identical untouched, {:?}",
            report.loaded.len(),
            report.identical,
            report.wall_time
        );
    }
}
