//! Fault-tolerant time-traveling (§5.3): co-variables that cannot be
//! serialized (or refuse to load back) are restored by *fallback
//! recomputation* — Kishu loads the cell's recorded dependencies and
//! re-runs its code, recursively if needed (Fig 11).
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use kishu::session::{KishuConfig, KishuSession};

fn main() {
    println!("== part 1: unserializable objects ==");
    let mut s = KishuSession::in_memory(KishuConfig::default());
    // `pl.LazyFrame` refuses to pickle (like a live query plan); Kishu
    // skips its storage instead of failing the checkpoint.
    s.run_cell("lazy = lib_obj('pl.LazyFrame', 4096, 5)\nrows = 10000\n")
        .expect("runs");
    let target = s.head();
    let node = s.graph().node(target);
    for sc in &node.delta {
        println!(
            "   stored co-variable {:?}: bytes on disk = {}",
            sc.names,
            if sc.blob.is_some() { sc.bytes.to_string() } else { "none (unserializable)".into() }
        );
    }
    s.run_cell("del lazy\n").expect("runs");
    let report = s.checkout(target).expect("checkout still works");
    println!(
        "   checkout restored it by recomputation: recomputed = {:?}",
        report.recomputed
    );

    println!("== part 2: deserialization failures ==");
    let mut s = KishuSession::in_memory(KishuConfig::default());
    // `bokeh.figure` stores fine but refuses to rebuild; the load failure
    // is detected at checkout and recovery falls back to replay.
    s.run_cell("fig = lib_obj('bokeh.figure', 2048, 1)\n").expect("runs");
    let target = s.head();
    s.run_cell("fig = 'overwritten'\n").expect("runs");
    let report = s.checkout(target).expect("checkout");
    println!(
        "   loaded = {:?}, recomputed = {:?}",
        report.loaded, report.recomputed
    );

    println!("== part 3: recursive fallback along a chain (Fig 11) ==");
    let mut config = KishuConfig::default();
    // The blocklist (§6.2) forces recomputation for a class — here it makes
    // the whole gmm chain storage-free, so restoring `plot` must walk
    // t3 -> t2 -> t1 re-running cells.
    config.blocklist.insert("sk.GaussianMixture".to_string());
    let mut s = KishuSession::new(Box::new(kishu_storage::MemoryStore::new()), config);
    s.run_cell("gmm = lib_obj('sk.GaussianMixture', 8192, 1)\n").expect("t1");
    s.run_cell("gmm.fit(3)\n").expect("t2");
    s.run_cell("plot = gmm.result(16)\n").expect("t3");
    let t3 = s.head();
    let fingerprint = s
        .run_cell("plot.sum()\n")
        .expect("runs")
        .outcome
        .value_repr;
    s.run_cell("del plot\ndel gmm\n").expect("wipe");
    let report = s.checkout(t3).expect("recursive fallback");
    println!("   recomputed co-variables: {:?}", report.recomputed);
    let restored = s
        .run_cell("plot.sum()\n")
        .expect("runs")
        .outcome
        .value_repr;
    assert_eq!(fingerprint, restored, "deterministic chain restores exactly");
    println!("   plot fingerprint identical before/after: {restored:?}");

    println!("== part 4: the documented limitation ==");
    let mut s = KishuSession::in_memory(KishuConfig::default());
    // A nondeterministic cell whose output also cannot be stored cannot be
    // exactly restored (§5.3 Remark) — recomputation re-draws the noise.
    s.run_cell("noise = randn(8)\ng = make_generator()\nbag = [noise, g]\n")
        .expect("runs");
    let target = s.head();
    let before = s.run_cell("noise.sum()\n").expect("runs").outcome.value_repr;
    s.run_cell("del bag\ndel noise\ndel g\n").expect("wipe");
    s.checkout(target).expect("fallback recomputes the cell");
    let after = s.run_cell("noise.sum()\n").expect("runs").outcome.value_repr;
    println!("   noise.sum() before={before:?} after={after:?} (differs: nondeterministic replay)");
}
