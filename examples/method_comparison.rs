//! Head-to-head on a real workload: run the paper's *Sklearn* text-mining
//! notebook under Kishu and every baseline, then compare cumulative
//! checkpoint cost and undo latency (a miniature of Figs 13–15).
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use kishu_bench::methods::{Driver, MethodKind};
use kishu_bench::report::{fmt_bytes, fmt_duration, Table};
use kishu_workloads::notebooks;

fn main() {
    let nb = notebooks::sklearn(0.3);
    println!(
        "workload: {} ({} cells, {})\n",
        nb.name,
        nb.cell_count(),
        nb.topic
    );

    let mut t = Table::new(
        "example",
        "per-method checkpoint cost and undo latency on Sklearn",
        &["Method", "cum. ckpt size", "cum. ckpt time", "undo last cell"],
    );
    for kind in MethodKind::ALL {
        let mut d = Driver::new(kind);
        let mut bytes = 0u64;
        let mut time = std::time::Duration::ZERO;
        for c in &nb.cells {
            let cost = d.run_cell(c);
            bytes += cost.ckpt_bytes;
            time += cost.ckpt_time;
        }
        let (size_s, time_s, undo_s) = if d.failed.is_some() {
            ("FAIL".to_string(), "FAIL".to_string(), "FAIL".to_string())
        } else {
            let undo = d.restore_to(nb.cells.len() - 2);
            (
                fmt_bytes(bytes),
                fmt_duration(time),
                undo.map(|c| fmt_duration(c.time)).unwrap_or_else(|_| "FAIL".into()),
            )
        };
        t.row(vec![kind.label().to_string(), size_s, time_s, undo_s]);
    }
    println!("{}", t.render());
    println!("expected shape (paper Figs 13-15): Kishu smallest+fastest among");
    println!("data-storing methods; Det-replay smaller still; CRIU largest and");
    println!("slowest to undo; DumpSession/ElasticNotebook pay full-state costs.");
}
