//! Crash recovery / migration: persist a session to a durable store, "lose"
//! the kernel, and resume in a fresh one — state, checkpoint graph, and
//! time-traveling all intact.
//!
//! ```text
//! cargo run --example session_resume
//! ```

use kishu::session::{KishuConfig, KishuSession};
use kishu_storage::FileStore;

fn main() {
    let dir = std::env::temp_dir().join("kishu-resume-example");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("session.log");
    let _ = std::fs::remove_file(&path);

    println!("-- session #1: do some work, persist, and 'crash'");
    {
        let store = FileStore::create(&path).expect("create store");
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        s.run_cell("df = read_csv('experiments', 2000, 5, 3)\n").expect("runs");
        s.run_cell("model = lib_obj('sk.KMeans', 65536, 1)\nmodel.fit(4)\n").expect("runs");
        s.run_cell("score = model.score()\nprint(score)\n").expect("runs");
        s.persist().expect("graph snapshot written");
        println!(
            "   persisted {} checkpoints ({} blobs on disk)",
            s.graph().len(),
            s.store_stats().blobs
        );
        // The kernel process dies here.
    }

    println!("-- session #2: fresh kernel, resume from the log file");
    let store = FileStore::open(&path).expect("reopen store");
    let mut s = KishuSession::resume(Box::new(store), KishuConfig::default())
        .expect("resume restores the head state");
    let out = s.run_cell("print(score)\nprint(len(df.columns))\n").expect("runs");
    for line in &out.outcome.output {
        println!("   {line}");
    }

    println!("-- and time-traveling still works across the restart:");
    let g = s.graph().clone();
    let first = g.children(g.root())[0];
    s.checkout(first).expect("checkout a pre-crash checkpoint");
    println!(
        "   after checkout to checkpoint {}: model bound = {}",
        first.0,
        s.interp.globals.contains("model")
    );
    std::fs::remove_file(&path).ok();
}
