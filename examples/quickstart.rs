//! Quickstart: attach Kishu to a notebook session, make a mistake, and
//! time-travel back — the §2.1 "un-drop a dataframe column" scenario.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kishu::session::{KishuConfig, KishuSession};

fn main() {
    // `init`: attach Kishu to a fresh kernel. The namespace is patched and
    // the Checkpoint Graph initialized; every cell below is incrementally
    // checkpointed automatically.
    let mut session = KishuSession::in_memory(KishuConfig::default());

    let run = |s: &mut KishuSession, src: &str| {
        let report = s.run_cell(src).expect("cell parses");
        if let Some(e) = &report.outcome.error {
            println!("!! cell raised: {e}");
        }
        for line in &report.outcome.output {
            println!("   {line}");
        }
        if let Some(v) = &report.outcome.value_repr {
            println!("   Out: {v}");
        }
        report
    };

    println!("-- load a dataset and explore it");
    run(&mut session, "df = read_csv('sales', 1000, 6, 42)\n");
    run(&mut session, "print(df.shape)\n");
    run(&mut session, "means = df.mean()\nprint(means)\n");

    // Remember where we are before the risky operation.
    let safe_point = session.head();

    println!("-- oops: drop a column we still needed");
    run(&mut session, "df = df.drop('c2')\n");
    run(&mut session, "print(len(df.columns))\n");

    println!("-- the checkpoint log so far (head marked *):");
    for line in session.log() {
        println!("   {line}");
    }

    println!("-- checkout: un-drop the column");
    let report = session.checkout(safe_point).expect("checkout succeeds");
    println!(
        "   restored {} co-variable(s) ({} bytes read), {} identical co-variable(s) untouched, in {:?}",
        report.loaded.len(),
        report.bytes_loaded,
        report.identical,
        report.wall_time
    );
    run(&mut session, "print(len(df.columns))\n");

    println!("-- storage used by all incremental checkpoints:");
    let stats = session.store_stats();
    println!(
        "   {} blobs, {} payload bytes",
        stats.blobs, stats.payload_bytes
    );
}
