#!/usr/bin/env bash
# Bench regression gate: compare a PR bench run against the committed
# baseline and fail on any checkpoint/checkout latency more than
# KISHU_BENCH_TOLERANCE (default 25%) slower. The comparison itself lives
# in-tree (kishu-bench `pipeline::compare`, exposed as `repro
# bench-compare`) so this stays a thin wrapper.
#
# usage: bench_gate.sh [BASELINE [PR]]
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_baseline.json}"
PR="${2:-target/BENCH_pr.json}"
TOL="${KISHU_BENCH_TOLERANCE:-0.25}"

if [ ! -f "$BASELINE" ]; then
    echo "bench-gate: no baseline at $BASELINE; skipping." \
         "Record one with: cargo run --release --offline -p kishu-bench --bin repro -- bench --out $BASELINE"
    exit 0
fi
if [ ! -f "$PR" ]; then
    echo "bench-gate: no PR metrics at $PR (run: KISHU_BENCH_QUICK=1 repro bench)" >&2
    exit 1
fi

# Capture the comparator's output (instead of exec'ing it away) so metrics
# that exist in the baseline but vanished from the PR run surface as a loud
# warning block — a silently dropped metric would otherwise un-gate itself
# forever. Warnings never change the exit status; regressions still do.
OUT="$(cargo run -q --release --offline -p kishu-bench --bin repro -- \
    bench-compare "$BASELINE" "$PR" --tolerance "$TOL")" || STATUS=$?
echo "$OUT"

WARNINGS_FILE="target/bench_gate_warnings.txt"
mkdir -p target
if echo "$OUT" | grep "WARNING:" > "$WARNINGS_FILE"; then
    echo ""
    echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!"
    echo "!! bench-gate: metric(s) present in baseline but MISSING from the"
    echo "!! PR run (see $WARNINGS_FILE):"
    sed 's/^/!!   /' "$WARNINGS_FILE"
    echo "!! If a metric was intentionally renamed or dropped, refresh the"
    echo "!! baseline: cargo run --release --offline -p kishu-bench --bin repro -- bench --out $BASELINE"
    echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!"
else
    rm -f "$WARNINGS_FILE"
fi

# Storage-engine-v2 gate: when `repro chunks` has emitted its JSON (ci.sh
# runs it right before this gate), the v2-vs-v1 physical-bytes reduction on
# the mutate-slightly workload must hold the acceptance bar. This is a
# representation property, not a latency, so it gets an absolute floor
# rather than the relative tolerance above.
CHUNKS="target/CHUNKS.json"
MIN_REDUCTION="${KISHU_CHUNKS_MIN_REDUCTION:-2.0}"
if [ -f "$CHUNKS" ]; then
    RED="$(sed -n 's/.*"reduction": *\([0-9.][0-9.eE+-]*\).*/\1/p' "$CHUNKS" | head -n 1)"
    if [ -z "$RED" ]; then
        echo "bench-gate: $CHUNKS present but has no \"reduction\" field" >&2
        exit 1
    fi
    if awk -v r="$RED" -v m="$MIN_REDUCTION" 'BEGIN { exit !(r < m) }'; then
        echo "bench-gate: storage engine v2 physical reduction ${RED}x is below the ${MIN_REDUCTION}x floor (see $CHUNKS)" >&2
        exit 1
    fi
    echo "bench-gate: storage engine v2 physical reduction ${RED}x (floor ${MIN_REDUCTION}x) OK"
fi

exit "${STATUS:-0}"
