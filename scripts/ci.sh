#!/usr/bin/env bash
# Tier-1 verification gate. The build is hermetic: every dependency is an
# in-tree path crate (kishu-testkit replaces rand/proptest/serde_json/
# criterion/parking_lot), so everything below runs fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: no external registry dependencies =="
if grep -nE '^\s*(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde|serde_json)[ .=]' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "error: external registry dependency declared above" >&2
    exit 1
fi

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace --benches

echo "== cargo test --offline =="
cargo test -q --offline --workspace

# The fault suites also run inside the workspace pass with their built-in
# seeds; this extra pass pins a second, independent seed so determinism
# regressions (same seed, different faults) and seed-specific breakage
# both surface.
FAULT_SEED="${FAULT_SEED:-20250807}"
echo "== fault injection & crash recovery (KISHU_TESTKIT_SEED=$FAULT_SEED) =="
if ! { KISHU_TESTKIT_SEED="$FAULT_SEED" \
        cargo test -q --offline -p kishu-repro --test crash_recovery \
    && KISHU_TESTKIT_SEED="$FAULT_SEED" \
        cargo test -q --offline -p kishu-bench --lib fault_sweep; }; then
    echo "error: fault suite failed; replay with KISHU_TESTKIT_SEED=$FAULT_SEED" >&2
    exit 1
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy =="
    cargo clippy -q --offline --workspace --benches
else
    echo "== cargo clippy unavailable; skipping =="
fi

echo "CI OK"
