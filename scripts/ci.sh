#!/usr/bin/env bash
# Tier-1 verification gate. The build is hermetic: every dependency is an
# in-tree path crate (kishu-testkit replaces rand/proptest/serde_json/
# criterion/parking_lot), so everything below runs fully offline.
#
# usage: ci.sh [--quick]
#   --quick   build + one test pass + bench smoke/gate; skips the
#             dual-worker-count test matrix and the pinned-seed fault pass.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [ "${1:-}" = "--quick" ]; then
    QUICK=1
fi

# Per-stage wall-time accounting.
CI_T0=$(date +%s)
STAGE_NAME=""
STAGE_T0=$CI_T0
stage() {
    local now; now=$(date +%s)
    if [ -n "$STAGE_NAME" ]; then
        echo "-- $STAGE_NAME: $(( now - STAGE_T0 ))s"
    fi
    STAGE_NAME="${1:-}"
    STAGE_T0=$now
    if [ -n "$STAGE_NAME" ]; then
        echo "== $STAGE_NAME =="
    fi
}

stage "guard: no external registry dependencies"
if grep -nE '^\s*(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde|serde_json)[ .=]' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "error: external registry dependency declared above" >&2
    exit 1
fi

stage "cargo build --release --offline"
cargo build --release --offline --workspace --benches

if [ "$QUICK" = 1 ]; then
    stage "cargo test --offline (quick: single pass)"
    cargo test -q --offline --workspace
else
    # Both pipelines (checkpoint writes and checkout reads) must behave
    # identically at every worker count (the serial path is the
    # differential-testing oracle), so the whole suite runs twice: once
    # fully serial, once at the parallel defaults for both directions.
    stage "cargo test --offline (CHECKPOINT/RESTORE_WORKERS=1, serial oracle)"
    KISHU_CHECKPOINT_WORKERS=1 KISHU_RESTORE_WORKERS=1 \
        cargo test -q --offline --workspace

    stage "cargo test --offline (CHECKPOINT/RESTORE_WORKERS=4, parallel pipelines)"
    KISHU_CHECKPOINT_WORKERS=4 KISHU_RESTORE_WORKERS=4 \
        cargo test -q --offline --workspace
fi

stage "bench smoke (KISHU_BENCH_QUICK=1, KISHU_TRACE -> target/trace.json)"
KISHU_BENCH_QUICK=1 KISHU_TRACE=target/trace.json \
    cargo run -q --release --offline -p kishu-bench --bin repro -- bench

stage "trace smoke (validate target/trace.json parses with expected spans)"
cargo run -q --release --offline -p kishu-bench --bin repro -- \
    trace-validate target/trace.json

stage "storage engine v2 sweep (repro chunks -> target/CHUNKS.json)"
cargo run -q --release --offline -p kishu-bench --bin repro -- chunks

stage "bench gate (vs BENCH_baseline.json; CHUNKS.json reduction floor)"
./scripts/bench_gate.sh

if [ "$QUICK" != 1 ]; then
    # The fault suites also run inside the workspace passes with their
    # built-in seeds; this extra pass pins a second, independent seed so
    # determinism regressions (same seed, different faults) and
    # seed-specific breakage both surface.
    FAULT_SEED="${FAULT_SEED:-20250807}"
    stage "fault injection & crash recovery (KISHU_TESTKIT_SEED=$FAULT_SEED)"
    if ! { KISHU_TESTKIT_SEED="$FAULT_SEED" \
            cargo test -q --offline -p kishu-repro --test crash_recovery \
        && KISHU_TESTKIT_SEED="$FAULT_SEED" \
            cargo test -q --offline -p kishu-bench --lib fault_sweep; }; then
        echo "error: fault suite failed; replay with KISHU_TESTKIT_SEED=$FAULT_SEED" >&2
        exit 1
    fi

    # Multi-tenant isolation differential under the same pinned seed and
    # both ends of the worker matrix (the suite also fixes worker counts
    # internally; the env pass covers the defaulted paths). Each session's
    # view of a shared store must be byte-identical to a private store.
    stage "multi-tenant isolation (KISHU_TESTKIT_SEED=$FAULT_SEED, workers 1 and 4)"
    if ! { KISHU_TESTKIT_SEED="$FAULT_SEED" \
            KISHU_CHECKPOINT_WORKERS=1 KISHU_RESTORE_WORKERS=1 \
            cargo test -q --offline -p kishu-repro --test multi_tenant \
        && KISHU_TESTKIT_SEED="$FAULT_SEED" \
            KISHU_CHECKPOINT_WORKERS=4 KISHU_RESTORE_WORKERS=4 \
            cargo test -q --offline -p kishu-repro --test multi_tenant; }; then
        echo "error: multi-tenant suite failed; replay with KISHU_TESTKIT_SEED=$FAULT_SEED" >&2
        exit 1
    fi

    # Storage-engine-v2 kill-switch matrix: chunking/compression must be
    # representation-only, so the storage crate and every integration
    # differential run with the layer forced off (KISHU_CHUNKING=0, the v1
    # bit-identical path) and forced on, under the same pinned seed, at
    # both ends of the worker matrix. The workspace passes above already
    # cover the default-on/default-seed paths; this matrix pins everything
    # that could mask a chunking-dependent divergence.
    stage "storage engine v2 matrix (KISHU_CHUNKING={0,1} x workers {1,4}, seed $FAULT_SEED)"
    for CHUNKING in 0 1; do
        for W in 1 4; do
            if ! KISHU_CHUNKING=$CHUNKING KISHU_TESTKIT_SEED="$FAULT_SEED" \
                KISHU_CHECKPOINT_WORKERS=$W KISHU_RESTORE_WORKERS=$W \
                cargo test -q --offline -p kishu-storage -p kishu-repro; then
                echo "error: v2 matrix failed at KISHU_CHUNKING=$CHUNKING workers=$W;" \
                     "replay with KISHU_TESTKIT_SEED=$FAULT_SEED" >&2
                exit 1
            fi
        done
    done
fi

if cargo clippy --version >/dev/null 2>&1; then
    stage "cargo clippy"
    cargo clippy -q --offline --workspace --benches
else
    stage "cargo clippy (unavailable; skipped)"
fi

stage ""
if [ -s target/bench_gate_warnings.txt ]; then
    echo "CI OK, WITH BENCH-GATE WARNINGS (metrics missing vs baseline):"
    sed 's/^/  /' target/bench_gate_warnings.txt
fi
echo "CI OK in $(( $(date +%s) - CI_T0 ))s$([ "$QUICK" = 1 ] && echo ' (quick)')"
