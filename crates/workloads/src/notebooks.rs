//! Generators for the 8 evaluation notebooks of Table 2.
//!
//! Each builder emits minipy cells shaped like the original notebook's
//! workflow: load → explore → transform → train → plot, with the
//! incremental-access and create/modify-balance traits of §2.2 and the
//! per-notebook quirks the experiments rely on (off-process tensors in
//! TorchGPU/Ray, an unserializable object in Qiskit, IPyFlow-hostile
//! control flow in StoreSales cell 27, out-of-order re-executions in the
//! in-progress notebooks).

use crate::{cell, NotebookSpec};

fn rows(scale: f64, base: usize) -> usize {
    ((base as f64 * scale) as usize).max(8)
}

fn payload(scale: f64, base: usize) -> usize {
    ((base as f64 * scale) as usize).max(64)
}

/// *Cluster* — cluster analysis with seaborn (24 cells, final).
/// Fig 23/24 style: granular cells, one model trained per cell into the
/// same variable group.
pub fn cluster(scale: f64) -> NotebookSpec {
    let n = rows(scale, 20_000);
    let mut cells = vec![
        cell(format!("df = read_csv('clusters', {n}, 12, 42)\n")),
        cell("print(df.describe())\n"),
        cell("print(df.shape)\n"),
        cell("X_scaled = df.copy()\n"),
        cell(format!(
            "pt = lib_obj('sk.PowerTransformer', {p}, 1)\npt.fit(1)\n",
            p = payload(scale, 4096)
        )),
        cell("X_scaled['c0'] = X_scaled['c0'] * 0.5 + 1.0\n"),
        cell("X_scaled['c1'] = X_scaled['c1'] * 2.0\n"),
        cell("cols = X_scaled.columns\n"),
        cell("n_init = 5\nrandom_seed = 42\nn_components_max = 10\nadditional_hyperparams = {'n_init': 5}\n"),
        cell("scores = []\nlabels = []\n"),
    ];
    // Granular model training (Fig 24): one model per cell, overwriting the
    // same variables each time.
    for k in 2..10 {
        cells.push(cell(format!(
            "model = lib_obj('sk.GaussianMixture', {p}, {k})\nmodel.fit({k})\nscore = model.score()\nbic{k} = score * 2.0\nscores.append(score)\n",
            p = payload(scale, 131_072)
        )));
    }
    cells.push(cell("best = max(scores)\n"));
    cells.push(cell(format!(
        "plot = lib_obj('sns.JointGrid', {p}, 9)\nplot.update(best)\n",
        p = payload(scale, 32_768)
    )));
    cells.push(cell("print(best)\n"));
    cells.push(cell("final_labels = model.predict(200)\n"));
    cells.push(cell("elapsed_s = 1.0\nnotes = 'bruteforce sweep'\nsummary = {'best': best, 'k': 9}\n"));
    cells.push(cell("print(summary)\n"));
    assert_eq!(cells.len(), 24);
    NotebookSpec {
        name: "Cluster",
        topic: "Cluster analysis",
        library: "seaborn",
        is_final: true,
        hidden_states: 0,
        out_of_order: 0,
        cells,
    }
}

/// *TPS* — random-forest tabular playground with sklearnex (49 cells,
/// final). Feature engineering creates columns; models overwrite a shared
/// variable group (Fig 25's create/modify balance).
pub fn tps(scale: f64) -> NotebookSpec {
    let n = rows(scale, 25_000);
    let mut cells = vec![
        cell("random_state = 42\nn_folds = 5\nn_estimators = 300\nmax_depth = 8\n"),
        cell(format!("train = read_csv('tps_train', {n}, 10, 11)\n")),
        cell(format!("test = read_csv('tps_test', {m}, 10, 12)\n", m = n / 4)),
        cell("print(train.shape)\nprint(test.shape)\n"),
        cell("print(train.describe())\n"),
        cell("target = train['c9']\n"),
        cell("features = train.drop('c9')\n"),
    ];
    // Feature engineering: one standalone feature array per cell (like the
    // real notebook, each cell touches a sliver of the state — Fig 25).
    for k in 0..8 {
        cells.push(cell(format!(
            "fe{k} = features['c{k}'] * features['c{next}'] + {k}.0\nfe{k}_mu = fe{k}.mean()\n",
            next = (k + 1) % 9
        )));
    }
    // In-place cleanup of the engineered features (modification phase).
    for k in 0..6 {
        cells.push(cell(format!("fe{k} -= fe{k}.mean()\n")));
    }
    cells.push(cell("fe_names = features.columns\nprint(len(fe_names))\n"));
    // Nondeterministic split (random train/test split — the classic
    // irreproducible cell).
    cells.push(cell(format!("split_noise = randn({q})\n", q = n.min(4096))));
    cells.push(cell("print(split_noise.mean())\n"));
    // Model sweep with timing cells interleaved.
    for k in 0..10 {
        cells.push(cell(format!(
            "rf = lib_obj('sk.RandomForestClassifier', {p}, {k})\nrf.fit({k})\n",
            p = payload(scale, 98_304)
        )));
        if k % 5 == 4 {
            cells.push(cell("cv_score = rf.score()\nprint(cv_score)\n"));
        }
    }
    // Manual cross-validation loop (the long, loop-heavy cells Fig 17
    // flags in TPS).
    cells.push(cell(
        "cv_sum = 0.0\nfor fold in range(2500):\n    cv_sum += (fold % 5) * 0.01 + cv_score * 0.001\n",
    ));
    cells.push(cell("preds = rf.predict(500)\npred_mu = preds.mean()\npred_sd = preds.std()\n"));
    cells.push(cell("submission = test.head(500)\n"));
    cells.push(cell("submission['pred'] = preds\n"));
    cells.push(cell("print(submission.shape)\n"));
    cells.push(cell(format!(
        "fig = lib_obj('plotly.Figure', {p}, 3)\nfig.update(cv_score)\n",
        p = payload(scale, 16_384)
    )));
    cells.push(cell("gc_hint = 0\n"));
    cells.push(cell("done = True\n"));
    cells.push(cell("print(done)\n"));
    while cells.len() < 49 {
        let k = cells.len();
        cells.push(cell(format!("audit{k} = cv_score * {k}.0\n")));
    }
    assert_eq!(cells.len(), 49);
    NotebookSpec {
        name: "TPS",
        topic: "Random forest",
        library: "intelex",
        is_final: true,
        hidden_states: 0,
        out_of_order: 0,
        cells,
    }
}

/// *Sklearn* — tweet text mining (44 cells, in-progress). The Fig 2/4
/// notebook: interleaved sentiment lists built by a loop, an in-place
/// mapping over one list, and out-of-order re-executions.
pub fn sklearn(scale: f64) -> NotebookSpec {
    let n_tweets = rows(scale, 4_000);
    let corpus_rows = rows(scale, 40_000);
    let mut cells = vec![
        cell(format!("corpus = read_csv('climatechange_tweets', {corpus_rows}, 12, 7)\n")),
        cell("data_dir = 'data/twitter'\n"),
        cell("print(corpus.shape)\n"),
        cell(format!(
            "texts = []\nfor k in range({n_tweets}):\n    texts.append('tweet about climate ' + str(k))\n"
        )),
        cell("print(len(texts))\n"),
        // Complex control flow in a loop (IPyFlow-hostile, §7.6).
        cell(format!(
            "moods = []\nfor k in range({n_tweets}):\n    if k % 3 == 0:\n        moods.append('sad')\n    elif k % 3 == 1:\n        moods.append('happy')\n    else:\n        moods.append('neutral')\n"
        )),
        cell("sad_ls = []\nhappy_ls = []\n"),
        // Fig 4 cell 3: interleaved construction.
        cell("for k in range(len(texts)):\n    if moods[k] == 'sad':\n        sad_ls.append(texts[k])\n    elif moods[k] == 'happy':\n        happy_ls.append(texts[k])\n"),
        cell("print(len(sad_ls))\nprint(len(happy_ls))\n"),
    ];
    // Fig 4 cell 4: the in-place mapping over sad_ls only.
    cells.push(cell("for k in range(len(sad_ls)):\n    sad_ls[k] = sad_ls[k].replace('tweet', 'tw')\n"));
    cells.push(cell("text_neg = sad_ls.copy()\n"));
    cells.push(cell("text_pos = happy_ls.copy()\n"));
    // Out-of-order / re-executed cells (in-progress trait): the mapping is
    // re-run after inspection.
    cells.push(cell("print(sad_ls[0])\n"));
    cells.push(cell("for k in range(len(sad_ls)):\n    sad_ls[k] = sad_ls[k].replace('climate', 'cl')\n"));
    // Vectorization + models.
    cells.push(cell(format!(
        "vec = lib_obj('sk.TfidfVectorizer', {p}, 1)\nvec.fit(len(text_neg))\n",
        p = payload(scale, 65_536)
    )));
    cells.push(cell(format!(
        "vec2 = lib_obj('sk.CountVectorizer', {p}, 2)\nvec2.fit(len(text_pos))\n",
        p = payload(scale, 65_536)
    )));
    for k in 0..8 {
        cells.push(cell(format!(
            "clf = lib_obj('sk.LogisticRegression', {p}, {k})\nclf.fit({k})\nacc = clf.score()\n",
            p = payload(scale, 49_152)
        )));
        if k % 2 == 0 {
            cells.push(cell("print(acc)\n"));
        }
    }
    cells.push(cell("aux = corpus.head(100)\n"));
    cells.push(cell("aux['flag'] = zeros(100)\n"));
    // The §7.5.1 test case: drop a column of the auxiliary dataframe.
    cells.push(cell("aux = aux.drop('c1')\n"));
    cells.push(cell("stopwords = {'the', 'a', 'of'}\nmin_df = 2\nmax_df = 0.95\nngram_lo = 1\nngram_hi = 2\n"));
    cells.push(cell("stopwords.add('and')\n"));
    cells.push(cell("counts = {}\nfor w in ['cl', 'tw', 'about']:\n    counts[w] = 0\n"));
    cells.push(cell("for k in range(len(sad_ls)):\n    if 'cl' in sad_ls[k]:\n        counts['cl'] += 1\n"));
    cells.push(cell("print(counts)\n"));
    cells.push(cell(format!(
        "wc_plot = lib_obj('plotly.Figure', {p}, 4)\nwc_plot.update(len(sad_ls))\n",
        p = payload(scale, 24_576)
    )));
    cells.push(cell("shared_view = text_neg\n"));
    cells.push(cell("n_neg = len(text_neg)\nn_pos = len(text_pos)\nbalance = n_neg - n_pos\nsummary = [n_neg, n_pos]\n"));
    cells.push(cell("print(summary)\n"));
    while cells.len() < 44 {
        let k = cells.len();
        cells.push(cell(format!("probe{k} = len(texts) + {k}\n")));
    }
    assert_eq!(cells.len(), 44);
    NotebookSpec {
        name: "Sklearn",
        topic: "Text mining",
        library: "sklearn",
        is_final: false,
        hidden_states: 1,
        out_of_order: 2,
        cells,
    }
}

/// *HW-LM* — linear-regression homework with NumPy (81 cells, final).
/// Many tiny cells over small arrays; ~170 variables; the loop-heavy cells
/// and read-only printing cells Fig 17 highlights.
pub fn hw_lm(scale: f64) -> NotebookSpec {
    let n = rows(scale, 1_000);
    let mut cells = vec![
        cell(format!("X = randn_seeded({n}, 1)\n")),
        cell(format!("noise = randn_seeded({n}, 2)\n")),
        cell("y = X * 3.0 + 0.5 + noise * 0.1\n"),
        cell(format!("X_train = X[:{t}]\ny_train = y[:{t}]\n", t = n * 8 / 10)),
        cell(format!("X_test = X[{t}:]\ny_test = y[{t}:]\n", t = n * 8 / 10)),
        cell("print(X_train.size)\n"),
        // The read-only printing cell called out in §7.6.
        cell("y_train[:10]\n"),
        cell("theta_w = 0.0\ntheta_b = 0.0\n"),
        cell("lr = 0.05\nepochs = 40\n"),
        cell("losses = []\n"),
        // Gradient-descent loop: complex looped control flow.
        cell(
            "for e in range(epochs):\n    pred = X_train * theta_w + theta_b\n    err = pred - y_train\n    gw = (err * X_train).mean()\n    gb = err.mean()\n    theta_w = theta_w - lr * gw\n    theta_b = theta_b - lr * gb\n    losses.append((err * err).mean())\n",
        ),
        cell("print(theta_w)\nprint(theta_b)\n"),
        cell("if len(losses) == 0:\n    losses.append(0.0)\ntrain_loss = losses[len(losses) - 1]\n"),
        cell("pred_test = X_test * theta_w + theta_b\n"),
        cell("test_err = pred_test - y_test\n"),
        cell("test_loss = (test_err * test_err).mean()\n"),
        cell("print(test_loss)\n"),
    ];
    // Polynomial-feature study: many small variables, two per cell.
    for d in 0..28 {
        cells.push(cell(format!(
            "feat{d} = X_train * {w:.1} + {d}.0\ncoef{d} = feat{d}.mean()\nsd{d} = feat{d}.std()\nrng{d} = feat{d}.max() - feat{d}.min()\n",
            w = 0.1 * (d + 1) as f64
        )));
        if d % 2 == 0 {
            cells.push(cell(format!("print(coef{d})\n")));
        }
    }
    cells.push(cell("coef_all = []\n"));
    for d in 0..8 {
        cells.push(cell(format!("coef_all.append(coef{d})\n")));
    }
    cells.push(cell("best_coef = max(coef_all + [coef0])\n"));
    cells.push(cell("ridge_w = theta_w * 0.9\n"));
    cells.push(cell("lasso_w = theta_w * 0.8\n"));
    cells.push(cell("models_summary = {'ols': theta_w, 'ridge': ridge_w, 'lasso': lasso_w}\n"));
    cells.push(cell("print(models_summary)\n"));
    cells.push(cell("alias_losses = losses\n"));
    cells.push(cell("final_report = [train_loss, test_loss, best_coef]\n"));
    cells.push(cell("print(final_report)\n"));
    while cells.len() < 81 {
        let k = cells.len();
        cells.push(cell(format!("metric{k} = test_loss * {k}.0\n")));
    }
    assert_eq!(cells.len(), 81);
    NotebookSpec {
        name: "HW-LM",
        topic: "Linear regression",
        library: "NumPy",
        is_final: true,
        hidden_states: 0,
        out_of_order: 0,
        cells,
    }
}

/// *StoreSales* — time-series forecasting with statsmodels (41 cells,
/// final). Auxiliary dataframes branch off the main one; SARIMAX models are
/// dynamically-generated-identity classes; cell 27 carries the nested
/// control flow that hangs IPyFlow (Table 6).
pub fn store_sales(scale: f64) -> NotebookSpec {
    let n = rows(scale, 25_000);
    let mut cells = vec![
        cell(format!("train = read_csv('store_sales', {n}, 8, 3)\n")),
        cell(format!("holidays = read_csv('holidays', {m}, 3, 4)\n", m = n / 50)),
        cell(format!("oil = read_csv('oil', {m}, 2, 5)\n", m = n / 50)),
        cell("print(train.shape)\n"),
        cell("sales = train['c0']\n"),
        cell("sales_mean = sales.mean()\n"),
        cell("train['c0'] = train['c0'] - sales_mean\n"),
        cell("aux_daily = train.head(365)\n"),
        cell("aux_weekly = train.head(52)\n"),
        cell("aux_monthly = train.head(12)\n"),
        cell("print(aux_daily.shape)\n"),
    ];
    for k in 0..6 {
        cells.push(cell(format!(
            "train['lag{k}'] = train['c{c}'] * 0.5\n",
            c = k % 8
        )));
    }
    cells.push(cell("trend = arange(365)\n"));
    cells.push(cell("seasonal = trend * 0.01\n"));
    cells.push(cell("aux_daily['trend'] = trend\n"));
    cells.push(cell(format!(
        "sarimax = lib_obj('sm.SARIMAX', {p}, 1)\nsarimax.fit(1)\n",
        p = payload(scale, 131_072)
    )));
    cells.push(cell("aic1 = sarimax.score()\n"));
    cells.push(cell(format!(
        "sarimax2 = lib_obj('sm.SARIMAX', {p}, 2)\nsarimax2.fit(2)\n",
        p = payload(scale, 131_072)
    )));
    cells.push(cell("aic2 = sarimax2.score()\n"));
    cells.push(cell("print(aic1)\nprint(aic2)\n"));
    cells.push(cell("forecast = sarimax.predict(365)\n"));
    cells.push(cell("residuals = forecast - seasonal\n"));
    // Cell 27: complex nested control flow — IPyFlow's failure case.
    cells.push(cell(
        "cv_acc = 0.0\nfor fold in range(400):\n    for step in range(80):\n        if (fold + step) % 3 == 0:\n            cv_acc += 0.001\n        elif step % 7 == 0:\n            cv_acc -= 0.0005\n",
    ));
    cells.push(cell("print(cv_acc)\n"));
    cells.push(cell(format!(
        "plot_fc = lib_obj('plotly.Figure', {p}, 6)\nplot_fc.update(cv_acc)\n",
        p = payload(scale, 49_152)
    )));
    cells.push(cell("metrics = {'aic1': aic1, 'aic2': aic2, 'cv': cv_acc}\n"));
    cells.push(cell("residual_std = residuals.std()\n"));
    cells.push(cell("print(residual_std)\n"));
    while cells.len() < 41 {
        let k = cells.len();
        cells.push(cell(format!("check{k} = residual_std + {k}.0\n")));
    }
    assert_eq!(cells.len(), 41);
    NotebookSpec {
        name: "StoreSales",
        topic: "TS analysis",
        library: "SM",
        is_final: true,
        hidden_states: 0,
        out_of_order: 0,
        cells,
    }
}

/// *Qiskit* — quantum-computing demo (85 cells, in-progress). Tiny state,
/// heavy shared referencing (circuits share gate lists), one unserializable
/// object (DumpSession's failure on this notebook), and many re-executed
/// plotting cells (91 hidden states, Fig 22).
pub fn qiskit(scale: f64) -> NotebookSpec {
    let _ = scale; // the Qiskit state is ~1 MB regardless of scale
    let mut cells = vec![
        cell("shots = 1024\n"),
        cell("backend = Object()\nbackend.name = 'aer_simulator'\n"),
        // An unserializable handle: DumpSession fails from here on (Fig 12).
        cell("noise_stream = make_generator()\n"),
    ];
    // Build circuits sharing gate lists (shared references -> merged
    // co-variables, Table 7's 51 vars vs 41 co-variables).
    for q in 0..10 {
        cells.push(cell(format!(
            "gates{q} = []\nqc{q} = Object()\nqc{q}.gates = gates{q}\nqc{q}.n = 2\n"
        )));
        cells.push(cell(format!("gates{q}.append('h0')\ngates{q}.append('cx01')\n")));
    }
    // Repeated draw cells (Fig 22: the same plotting cell re-executed with
    // minor adjustments). Each re-execution is a hidden state.
    let mut hidden = 0;
    for q in 0..8 {
        for attempt in 0..5 {
            cells.push(cell(format!(
                "draw{q} = lib_obj('plotly.Scatter', 2048, {seed})\ndraw{q}.update({attempt})\n",
                seed = q * 10 + attempt
            )));
            if attempt > 0 {
                hidden += 1;
            }
        }
    }
    cells.push(cell("counts = {'00': 498, '11': 526}\n"));
    cells.push(cell("total = counts['00'] + counts['11']\nprint(total)\n"));
    // Out-of-order adjustment of an earlier circuit.
    cells.push(cell("gates0.append('measure')\n"));
    cells.push(cell("bell_ok = counts['11'] > 400\nprint(bell_ok)\n"));
    while cells.len() < 85 {
        let k = cells.len();
        cells.push(cell(format!("calib{k} = shots % {m}\n", m = k + 1)));
    }
    assert_eq!(cells.len(), 85);
    NotebookSpec {
        name: "Qiskit",
        topic: "Quant. Computing",
        library: "Qiskit",
        is_final: false,
        hidden_states: hidden,
        out_of_order: 1,
        cells,
    }
}

/// *TorchGPU* — image classification with PyTorch (27 cells, final). The
/// big notebook: on-device tensors (off-process — the CRIU killers) plus a
/// heavyweight model checkpointed repeatedly.
pub fn torch_gpu(scale: f64) -> NotebookSpec {
    let tensor = payload(scale, 6_000_000);
    let model = payload(scale, 10_000_000);
    let mut cells = vec![
        cell("device = 'cuda:0'\n"),
        cell("batch_size = 64\nepochs = 4\nlr = 0.001\nmomentum = 0.9\nweight_decay = 0.0005\nnum_workers = 8\npin_memory = True\n"),
        cell(format!("train_images = lib_obj('torch.Tensor', {tensor}, 1)\n")),
        cell(format!("val_images = lib_obj('torch.Tensor', {t}, 2)\n", t = tensor / 4)),
        cell(format!("model = lib_obj('torchvision.ResNet34', {model}, 3)\n")),
        cell(format!("optimizer = lib_obj('torch.optim.Adam', {p}, 4)\n", p = payload(scale, 65_536))),
        cell("train_losses = []\nval_accs = []\nclasses = ['cat', 'dog', 'bird']\nmean_norm = 0.485\nstd_norm = 0.229\nlog_every = 50\n"),
        cell("print(device)\n"),
    ];
    for e in 0..4 {
        cells.push(cell(format!("model.fit({e})\noptimizer.update({e})\n")));
        cells.push(cell(format!("loss{e} = model.score()\ngrad_norm{e} = loss{e} * 0.1\ntrain_losses.append(loss{e})\n")));
        cells.push(cell(format!("acc{e} = model.score()\ntop5_{e} = acc{e} + 0.02\nval_accs.append(acc{e})\n")));
    }
    cells.push(cell("best_acc = max(val_accs)\nprint(best_acc)\n"));
    cells.push(cell("preds = model.predict(1000)\n"));
    cells.push(cell(format!(
        "curve = lib_obj('plotly.Figure', {p}, 9)\ncurve.update(best_acc)\n",
        p = payload(scale, 32_768)
    )));
    cells.push(cell("val_images.update(1)\n"));
    cells.push(cell("ckpt_path = 'weights/resnet34.pt'\nwall_time_s = 716.0\nreport = {'best': best_acc, 'epochs': 4}\n"));
    cells.push(cell("print(report)\n"));
    cells.push(cell("final = True\n"));
    assert_eq!(cells.len(), 27);
    NotebookSpec {
        name: "TorchGPU",
        topic: "Image classification",
        library: "PyTorch",
        is_final: true,
        hidden_states: 0,
        out_of_order: 0,
        cells,
    }
}

/// *Ray* — distributed-computing tutorial (20 cells, in-progress). Remote
/// datasets and actors live off-process (CRIU cannot dump them); Kishu
/// stores them via their reductions.
pub fn ray(scale: f64) -> NotebookSpec {
    let ds = payload(scale, 1_500_000);
    let mut cells = vec![
        cell("num_cpus = 8\nnum_gpus = 0\nobject_store_gb = 4\ndashboard_port = 8265\nnamespace_id = 'tutorial'\n"),
        cell(format!("ds = lib_obj('ray.data.Dataset', {ds}, 1)\n")),
        cell("print(num_cpus)\n"),
        cell("ds.transform(1)\n"),
        cell("ds.transform(2)\n"),
        cell(format!("ds2 = lib_obj('ray.data.Dataset', {d}, 2)\n", d = ds / 3)),
        cell(format!("actor = lib_obj('ray.Actor', {p}, 3)\n", p = payload(scale, 8_192))),
        cell("actor.update(1)\n"),
        cell("sample = ds.sample(256)\n"),
        cell("print(sample.mean())\n"),
        cell("block_size = 128\nparallelism = 16\nretries = 3\nstats = {'rows': 1000000, 'blocks': 8}\n"),
        cell("agg = sample.sum()\n"),
        cell("results = []\nresults.append(agg)\n"),
        // In-progress: re-execute the sampling cell (hidden state).
        cell("sample = ds.sample(256)\n"),
        cell("results.append(sample.sum())\n"),
        cell(format!("pipe = lib_obj('dask.Bag', {p}, 4)\npipe.update(2)\n", p = payload(scale, 16_384))),
        cell("ref = results\n"),
        cell("r_first = results[0]\nr_count = len(results)\nprint(r_count)\n"),
        cell("summary = {'agg': agg}\n"),
        cell("print(summary)\n"),
    ];
    assert_eq!(cells.len(), 20);
    let _ = &mut cells;
    NotebookSpec {
        name: "Ray",
        topic: "Distrib. Computing",
        library: "Ray",
        is_final: false,
        hidden_states: 1,
        out_of_order: 0,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_notebooks;
    use kishu_libsim::Registry;
    use kishu_minipy::Interp;
    use std::sync::Arc;

    fn run_notebook(nb: &NotebookSpec) -> Interp {
        let mut interp = Interp::new();
        kishu_libsim::install(&mut interp, Arc::new(Registry::standard()));
        for (i, c) in nb.cells.iter().enumerate() {
            let out = interp
                .run_cell(&c.src)
                .unwrap_or_else(|e| panic!("{} cell {i} does not parse: {e}\n{}", nb.name, c.src));
            if let Some(e) = out.error {
                panic!("{} cell {i} raised: {e}\n{}", nb.name, c.src);
            }
        }
        interp
    }

    #[test]
    fn every_notebook_runs_clean() {
        for nb in all_notebooks(0.2) {
            let interp = run_notebook(&nb);
            assert!(!interp.globals.is_empty(), "{} left no state", nb.name);
        }
    }

    #[test]
    fn cell_counts_match_table2() {
        let counts: Vec<(&str, usize)> = all_notebooks(0.1)
            .iter()
            .map(|n| (n.name, n.cell_count()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("Cluster", 24),
                ("TPS", 49),
                ("Sklearn", 44),
                ("HW-LM", 81),
                ("StoreSales", 41),
                ("Qiskit", 85),
                ("TorchGPU", 27),
                ("Ray", 20),
            ]
        );
    }

    #[test]
    fn final_vs_in_progress_matches_table8() {
        for nb in all_notebooks(0.1) {
            match nb.name {
                "Sklearn" | "Qiskit" | "Ray" => {
                    assert!(!nb.is_final, "{} is in-progress", nb.name);
                    assert!(nb.hidden_states > 0);
                }
                _ => assert!(nb.is_final, "{} is final", nb.name),
            }
        }
    }

    #[test]
    fn qiskit_has_many_hidden_states() {
        let nb = qiskit(1.0);
        assert!(nb.hidden_states >= 30, "Fig 22: repeated draw cells");
    }

    #[test]
    fn torchgpu_and_ray_hold_off_process_state() {
        let registry = Registry::standard();
        for name in ["TorchGPU", "Ray"] {
            let nb = all_notebooks(0.05)
                .into_iter()
                .find(|n| n.name == name)
                .expect("exists");
            let interp = run_notebook(&nb);
            let has_off_process = interp.heap.live_objects().any(|id| {
                if let kishu_kernel::ObjKind::External { class, .. } = interp.heap.kind(id) {
                    registry.get(*class).map(|s| s.behavior.off_process).unwrap_or(false)
                } else {
                    false
                }
            });
            assert!(has_off_process, "{name} must defeat CRIU");
        }
    }

    #[test]
    fn qiskit_holds_unserializable_state() {
        let nb = qiskit(0.1);
        let interp = run_notebook(&nb);
        let has_generator = interp
            .heap
            .live_objects()
            .any(|id| !interp.heap.kind(id).is_traversable());
        assert!(has_generator, "Qiskit must defeat DumpSession");
    }

    #[test]
    fn determinism_annotations_flag_entropy() {
        let nb = tps(0.1);
        assert!(nb.cells.iter().any(|c| !c.deterministic), "TPS has a random split");
        let nb = hw_lm(0.1);
        assert!(nb.cells.iter().all(|c| c.deterministic), "HW-LM is seeded throughout");
    }

    #[test]
    fn state_size_ordering_roughly_matches_table2() {
        use std::collections::HashMap;
        let mut sizes: HashMap<&str, u64> = HashMap::new();
        for nb in all_notebooks(0.2) {
            let interp = run_notebook(&nb);
            sizes.insert(nb.name, interp.heap.stats().live_bytes);
        }
        assert!(sizes["TorchGPU"] > sizes["Sklearn"]);
        assert!(sizes["Sklearn"] > sizes["HW-LM"]);
        assert!(sizes["StoreSales"] > sizes["Qiskit"]);
        assert!(sizes["TorchGPU"] > 10 * sizes["Qiskit"]);
    }

    #[test]
    fn most_cells_are_incremental() {
        // Fig 2 top: the large majority of cells access a small fraction of
        // the variables.
        let nb = sklearn(0.1);
        let mut interp = Interp::new();
        kishu_libsim::install(&mut interp, Arc::new(Registry::standard()));
        let mut small_access = 0;
        let mut total = 0;
        for c in &nb.cells {
            let out = interp.run_cell(&c.src).expect("parses");
            assert!(out.error.is_none());
            let vars = interp.globals.len().max(1);
            if out.access.accessed().len() * 10 <= vars * 4 {
                small_access += 1;
            }
            total += 1;
        }
        assert!(
            small_access * 2 > total,
            "only {small_access}/{total} cells were incremental"
        );
    }
}
