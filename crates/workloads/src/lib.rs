//! # kishu-workloads — the evaluation notebooks, synthesized
//!
//! The paper evaluates on 8 data-science notebooks from Kaggle and GitHub
//! (Table 2). Those exact notebooks (and their datasets) are not
//! reproducible here, so this crate generates minipy notebooks with the
//! published *characteristics*, which are what every experiment's shape
//! depends on (§2.2, §10):
//!
//! * matching cell counts and library flavour per notebook;
//! * state sizes scaled down ~10–50× to laptop scale, with the paper's
//!   relative ordering preserved (TorchGPU ≫ Sklearn > StoreSales > Cluster
//!   > TPS ≫ HW-LM ≈ Qiskit);
//! * incremental cells — most cells access a small fraction of the state
//!   (Fig 2 top);
//! * a balance of data creation and in-place modification (Fig 2 bottom);
//! * the failure-matrix content: TorchGPU and Ray hold off-process objects
//!   (CRIU fails), Qiskit holds an unserializable object (DumpSession
//!   fails);
//! * in-progress notebooks (Sklearn, Qiskit, Ray) contain re-executed and
//!   out-of-order cells (Table 8's hidden states);
//! * per-cell determinism annotations for the Kishu+Det-replay baseline.
//!
//! [`sweeps`] adds the §7.7 parameter sweeps (shared-referencing, 1000-cell
//! sessions) and the Fig 4 motivating example; [`stats`] computes the
//! workload-characterization measurements (Fig 2/25, Tables 2/7/8).

pub mod notebooks;
pub mod stats;
pub mod sweeps;

/// One notebook cell: source plus its (manual) determinism annotation.
#[derive(Debug, Clone)]
pub struct Cell {
    /// minipy source.
    pub src: String,
    /// Whether re-running the cell reproduces its effects exactly (no
    /// session entropy). Consumed by the Kishu+Det-replay baseline.
    pub deterministic: bool,
}

/// A generated evaluation notebook.
#[derive(Debug, Clone)]
pub struct NotebookSpec {
    /// Short name as in Table 2 (`Cluster`, `TPS`, ...).
    pub name: &'static str,
    /// Topic as in Table 2.
    pub topic: &'static str,
    /// Featured library as in Table 2.
    pub library: &'static str,
    /// Whether the notebook is *final* (cleaned, linear) or *in-progress*
    /// (hidden states, out-of-order cells) — Table 8.
    pub is_final: bool,
    /// Count of hidden states (re-executions), Table 8.
    pub hidden_states: u32,
    /// Count of out-of-order cell executions, Table 8.
    pub out_of_order: u32,
    /// The cells, in execution order.
    pub cells: Vec<Cell>,
}

impl NotebookSpec {
    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

/// Build a cell from source, deriving the determinism annotation from its
/// use of session entropy.
pub fn cell(src: impl Into<String>) -> Cell {
    let src = src.into();
    let deterministic = !src.contains("randn(") && !src.contains("fit_random");
    Cell { src, deterministic }
}

/// All 8 evaluation notebooks at the given scale (1.0 = default laptop
/// scale; the paper's sizes are roughly scale 20–50).
pub fn all_notebooks(scale: f64) -> Vec<NotebookSpec> {
    vec![
        notebooks::cluster(scale),
        notebooks::tps(scale),
        notebooks::sklearn(scale),
        notebooks::hw_lm(scale),
        notebooks::store_sales(scale),
        notebooks::qiskit(scale),
        notebooks::torch_gpu(scale),
        notebooks::ray(scale),
    ]
}
