//! Parameter-sweep workloads (§7.7) and the Fig 4 motivating example.

use kishu_minipy::builtins::seeded_values;
use kishu_testkit::rng::Rng;

use crate::{cell, Cell, NotebookSpec};

/// §7.7.1 shared-referencing workload: `total_arrays` equal arrays, of
/// which the first `in_list` live inside one list (forming one co-variable
/// covering `in_list / total_arrays` of the state); the rest are
/// independent variables. The test cell modifies exactly one array inside
/// the list.
///
/// Returns `(setup cells, modify cell)`.
pub fn shared_ref_workload(array_len: usize, total_arrays: usize, in_list: usize) -> (Vec<Cell>, Cell) {
    assert!(in_list >= 1 && in_list <= total_arrays);
    let mut setup = Vec::new();
    for k in 0..total_arrays {
        setup.push(cell(format!("arr{k} = randn_seeded({array_len}, {k})\n")));
    }
    let mut list_cell = String::from("bundle = []\n");
    for k in 0..in_list {
        list_cell.push_str(&format!("bundle.append(arr{k})\n"));
    }
    setup.push(cell(list_cell));
    // Modify one array that lives inside the list co-variable.
    let modify = cell("bundle[0][0] = bundle[0][0] + 1.0\n");
    (setup, modify)
}

/// §7.7.2 long-session workload: starting from a base notebook, randomly
/// re-execute its cells until `total_cells` executions have happened
/// (the paper re-executes HW-LM and Qiskit up to 1000 cells).
pub fn long_session(base: &NotebookSpec, total_cells: usize, seed: u64) -> Vec<Cell> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cells: Vec<Cell> = base.cells.clone();
    while cells.len() < total_cells {
        let pick = rng.random_range(0..base.cells.len());
        cells.push(base.cells[pick].clone());
    }
    cells.truncate(total_cells);
    cells
}

/// The Fig 4 motivating example, verbatim: load a corpus, create category
/// lists, sort texts into them interleaved, then map over `sad_ls` only.
pub fn fig4_text_mining(n_rows: usize) -> Vec<Cell> {
    vec![
        cell(format!("corpus = read_csv('corpus', {n_rows}, 2, 13)\n")),
        cell("sad_ls = []\nhappy_ls = []\n"),
        cell(format!(
            "for k in range({n}):\n    if k % 2 == 0:\n        sad_ls.append('sad text ' + str(k))\n    else:\n        happy_ls.append('happy text ' + str(k))\n",
            n = n_rows.min(4000)
        )),
        cell("for k in range(len(sad_ls)):\n    sad_ls[k] = sad_ls[k].replace('text', 'txt')\n"),
    ]
}

/// Deterministic pseudo-random values re-exported for experiment setup.
pub fn fixed_values(n: usize, seed: u64) -> Vec<f64> {
    seeded_values(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notebooks;
    use kishu_libsim::Registry;
    use kishu_minipy::Interp;
    use std::sync::Arc;

    fn fresh() -> Interp {
        let mut i = Interp::new();
        kishu_libsim::install(&mut i, Arc::new(Registry::standard()));
        i
    }

    #[test]
    fn shared_ref_workload_shapes_the_partition() {
        use kishu::session::{KishuConfig, KishuSession};
        for in_list in [1usize, 5, 10] {
            let (setup, modify) = shared_ref_workload(100, 10, in_list);
            let mut s = KishuSession::in_memory(KishuConfig::default());
            for c in &setup {
                let r = s.run_cell(&c.src).expect("parses");
                assert!(r.outcome.error.is_none());
            }
            // The bundle co-variable has in_list arrays + the list itself;
            // the other arrays are singletons; 10 - in_list + 1 components
            // + nothing else.
            assert_eq!(s.covariables().len(), 10 - in_list + 1);
            let r = s.run_cell(&modify.src).expect("parses");
            assert!(r.outcome.error.is_none());
            // The whole bundle co-variable is the delta.
            assert_eq!(r.updated.len(), 1);
            assert_eq!(r.updated[0].len(), in_list + 1);
        }
    }

    #[test]
    fn long_session_repeats_base_cells() {
        let base = notebooks::hw_lm(0.05);
        let cells = long_session(&base, 200, 9);
        assert_eq!(cells.len(), 200);
        // The prefix is the base notebook itself.
        assert_eq!(cells[0].src, base.cells[0].src);
        // And re-executions actually run.
        let mut i = fresh();
        for c in &cells[..120] {
            let out = i.run_cell(&c.src).expect("parses");
            assert!(out.error.is_none(), "{:?}", out.error);
        }
    }

    #[test]
    fn long_session_is_deterministic_per_seed() {
        let base = notebooks::qiskit(0.05);
        let a = long_session(&base, 150, 4);
        let b = long_session(&base, 150, 4);
        let c = long_session(&base, 150, 5);
        assert!(a.iter().zip(&b).all(|(x, y)| x.src == y.src));
        assert!(a.iter().zip(&c).any(|(x, y)| x.src != y.src));
    }

    #[test]
    fn fig4_example_runs_and_fragments() {
        let mut i = fresh();
        for c in fig4_text_mining(500) {
            let out = i.run_cell(&c.src).expect("parses");
            assert!(out.error.is_none(), "{:?}", out.error);
        }
        let sad = i.globals.peek("sad_ls").expect("bound");
        let happy = i.globals.peek("happy_ls").expect("bound");
        assert!(i.heap.children(sad).len() > 100);
        assert!(i.heap.children(happy).len() > 100);
    }
}
