//! Workload characterization (Fig 2 / Fig 25, Tables 2, 7, 8).
//!
//! Runs a notebook under a plain kernel plus Kishu's delta detector and
//! records, per cell, the fraction of state accessed and the split between
//! data creation and in-place modification — the two traits §2.2 claims
//! for data-science notebooks and Figs 2/25 plot.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use kishu::delta::DeltaDetector;
use kishu_kernel::ObjId;
use kishu_libsim::Registry;
use kishu_minipy::Interp;

use crate::NotebookSpec;

/// Per-cell characterization record.
#[derive(Debug, Clone)]
pub struct CellTrace {
    /// Bytes reachable from the variables the cell accessed, divided by
    /// total state bytes (Fig 2 top / Fig 25 top).
    pub accessed_fraction: f64,
    /// Bytes in co-variables newly created by the cell.
    pub created_bytes: u64,
    /// Bytes in pre-existing co-variables the cell modified.
    pub modified_bytes: u64,
    /// Total state bytes after the cell.
    pub state_bytes: u64,
    /// Cell wall time.
    pub wall: Duration,
}

/// Whole-notebook characterization.
#[derive(Debug, Clone)]
pub struct NotebookTrace {
    /// Notebook name.
    pub name: &'static str,
    /// Per-cell records, in execution order.
    pub cells: Vec<CellTrace>,
    /// Final state size in bytes (Table 2's "Data" column).
    pub final_state_bytes: u64,
    /// Final variable count (Table 7).
    pub var_count: usize,
    /// Final co-variable count (Table 7).
    pub covar_count: usize,
    /// Total notebook runtime (Table 2's "Time").
    pub total_wall: Duration,
}

impl NotebookTrace {
    /// Fraction of cells accessing at most `threshold` of the state
    /// (Fig 2's "40/44 cells access <10%").
    pub fn incremental_cell_fraction(&self, threshold: f64) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let n = self
            .cells
            .iter()
            .filter(|c| c.accessed_fraction < threshold)
            .count();
        n as f64 / self.cells.len() as f64
    }

    /// Creation share of all updated bytes (Fig 2 bottom's ~45%:55%).
    pub fn creation_share(&self) -> f64 {
        let created: u64 = self.cells.iter().map(|c| c.created_bytes).sum();
        let modified: u64 = self.cells.iter().map(|c| c.modified_bytes).sum();
        if created + modified == 0 {
            return 0.0;
        }
        created as f64 / (created + modified) as f64
    }
}

/// Run `nb` and characterize it.
pub fn characterize(nb: &NotebookSpec) -> NotebookTrace {
    let registry = Arc::new(Registry::standard());
    let mut interp = Interp::new();
    kishu_libsim::install(&mut interp, registry.clone());
    let mut detector = DeltaDetector::new(registry, true, false);
    let mut cells = Vec::with_capacity(nb.cells.len());
    let mut total_wall = Duration::ZERO;

    for c in &nb.cells {
        // Names bound before the cell (to classify created vs modified).
        let pre_names: BTreeSet<String> = interp.globals.names().into_iter().collect();
        let outcome = interp
            .run_cell(&c.src)
            .unwrap_or_else(|e| panic!("{}: {e}", nb.name));
        assert!(
            outcome.error.is_none(),
            "{} raised: {:?}",
            nb.name,
            outcome.error
        );
        total_wall += outcome.wall_time;
        let delta = detector.on_cell(&interp.heap, &interp.globals, &outcome.access);

        let deep = |interp: &Interp, names: &BTreeSet<String>| -> u64 {
            let roots: Vec<ObjId> = names
                .iter()
                .filter_map(|n| interp.globals.peek(n))
                .collect();
            interp.heap.deep_size(roots)
        };
        let state_bytes = deep(
            &interp,
            &interp.globals.names().into_iter().collect::<BTreeSet<_>>(),
        );
        let accessed_bytes = deep(&interp, &outcome.access.accessed());
        let mut created_bytes = 0u64;
        let mut modified_bytes = 0u64;
        for key in &delta.updated {
            let bytes = deep(&interp, key);
            // A co-variable is "created" if all its members are new names.
            if key.iter().all(|n| !pre_names.contains(n)) {
                created_bytes += bytes;
            } else {
                modified_bytes += bytes;
            }
        }
        cells.push(CellTrace {
            accessed_fraction: if state_bytes == 0 {
                0.0
            } else {
                accessed_bytes as f64 / state_bytes as f64
            },
            created_bytes,
            modified_bytes,
            state_bytes,
            wall: outcome.wall_time,
        });
        interp.gc();
    }

    NotebookTrace {
        name: nb.name,
        final_state_bytes: cells.last().map(|c| c.state_bytes).unwrap_or(0),
        var_count: interp.globals.len(),
        covar_count: detector.partition().len(),
        cells,
        total_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notebooks;

    #[test]
    fn sklearn_matches_fig2_shape() {
        let trace = characterize(&notebooks::sklearn(0.1));
        // Fig 2 top: the large majority of cells access <10% of the state.
        assert!(
            trace.incremental_cell_fraction(0.10) > 0.6,
            "incremental fraction = {}",
            trace.incremental_cell_fraction(0.10)
        );
        // Fig 2 bottom: creations and modifications are both substantial.
        let share = trace.creation_share();
        assert!(
            (0.15..=0.85).contains(&share),
            "creation share = {share}"
        );
    }

    #[test]
    fn qiskit_merges_covariables() {
        // Table 7: Qiskit has notably fewer co-variables than variables
        // (circuits share gate lists).
        let trace = characterize(&notebooks::qiskit(0.1));
        assert!(
            trace.var_count >= trace.covar_count + 8,
            "{} vars vs {} co-vars",
            trace.var_count,
            trace.covar_count
        );
    }

    #[test]
    fn hw_lm_has_many_small_variables() {
        let trace = characterize(&notebooks::hw_lm(0.1));
        assert!(trace.var_count > 100, "HW-LM has {} vars", trace.var_count);
        assert!(trace.final_state_bytes < 10 * 1024 * 1024);
    }

    #[test]
    fn covar_count_never_exceeds_var_count() {
        for nb in crate::all_notebooks(0.05) {
            let trace = characterize(&nb);
            assert!(
                trace.covar_count <= trace.var_count,
                "{}: {} covars > {} vars",
                nb.name,
                trace.covar_count,
                trace.var_count
            );
        }
    }
}
