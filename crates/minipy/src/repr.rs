//! Value rendering (`repr`-style), used for cell outputs and `print`.

use std::collections::HashSet;

use kishu_kernel::{Heap, ObjId, ObjKind};

const MAX_DEPTH: usize = 4;
const MAX_ITEMS: usize = 10;

/// Python-`repr`-like rendering: strings quoted, containers bracketed,
/// cycles elided, long collections truncated with `...`.
pub fn repr(heap: &Heap, id: ObjId) -> String {
    let mut seen = HashSet::new();
    render(heap, id, 0, true, &mut seen)
}

/// Python-`str`-like rendering: identical to [`repr`] except a top-level
/// string is unquoted (what `print` shows).
pub fn display(heap: &Heap, id: ObjId) -> String {
    if let ObjKind::Str(s) = heap.kind(id) {
        return s.clone();
    }
    repr(heap, id)
}

fn render(heap: &Heap, id: ObjId, depth: usize, quote_str: bool, seen: &mut HashSet<ObjId>) -> String {
    if depth > MAX_DEPTH {
        return "...".to_string();
    }
    match heap.kind(id) {
        ObjKind::None => "None".to_string(),
        ObjKind::Bool(true) => "True".to_string(),
        ObjKind::Bool(false) => "False".to_string(),
        ObjKind::Int(v) => v.to_string(),
        ObjKind::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        ObjKind::Str(s) => {
            if quote_str {
                format!("'{s}'")
            } else {
                s.clone()
            }
        }
        ObjKind::List(items) => container(heap, id, items, "[", "]", depth, seen),
        ObjKind::Tuple(items) => container(heap, id, items, "(", ")", depth, seen),
        ObjKind::Set(items) => {
            if items.is_empty() {
                "set()".to_string()
            } else {
                container(heap, id, items, "{", "}", depth, seen)
            }
        }
        ObjKind::Dict(pairs) => {
            if !seen.insert(id) {
                return "{...}".to_string();
            }
            let mut parts = Vec::new();
            for (k, v) in pairs.iter().take(MAX_ITEMS) {
                parts.push(format!(
                    "{}: {}",
                    render(heap, *k, depth + 1, true, seen),
                    render(heap, *v, depth + 1, true, seen)
                ));
            }
            if pairs.len() > MAX_ITEMS {
                parts.push("...".to_string());
            }
            seen.remove(&id);
            format!("{{{}}}", parts.join(", "))
        }
        ObjKind::NdArray(values) => {
            let shown: Vec<String> = values.iter().take(6).map(|v| format!("{v:.4}")).collect();
            if values.len() > 6 {
                format!("array([{}, ...], n={})", shown.join(", "), values.len())
            } else {
                format!("array([{}])", shown.join(", "))
            }
        }
        ObjKind::Series { name, values } => {
            if !seen.insert(id) {
                return format!("Series(name='{name}', ...)");
            }
            let inner = render(heap, *values, depth + 1, true, seen);
            seen.remove(&id);
            format!("Series(name='{name}', values={inner})")
        }
        ObjKind::DataFrame(cols) => {
            let names: Vec<&str> = cols.iter().map(|(n, _)| n.as_str()).collect();
            format!("DataFrame(columns=[{}])", names.join(", "))
        }
        ObjKind::Instance { class_name, attrs } => {
            if !seen.insert(id) {
                return format!("<{class_name} ...>");
            }
            let mut parts = Vec::new();
            for (k, v) in attrs.iter().take(MAX_ITEMS) {
                parts.push(format!("{k}={}", render(heap, *v, depth + 1, true, seen)));
            }
            seen.remove(&id);
            format!("<{class_name} {}>", parts.join(", "))
        }
        ObjKind::Function { name, params, .. } => {
            format!("<function {name}({})>", params.join(", "))
        }
        ObjKind::Generator { token } => format!("<generator at 0x{token:x}>"),
        ObjKind::External { class, payload, epoch, .. } => {
            format!("<external class={} bytes={} epoch={}>", class.0, payload.len(), epoch)
        }
    }
}

fn container(
    heap: &Heap,
    id: ObjId,
    items: &[ObjId],
    open: &str,
    close: &str,
    depth: usize,
    seen: &mut HashSet<ObjId>,
) -> String {
    if !seen.insert(id) {
        return format!("{open}...{close}");
    }
    let mut parts: Vec<String> = items
        .iter()
        .take(MAX_ITEMS)
        .map(|i| render(heap, *i, depth + 1, true, seen))
        .collect();
    if items.len() > MAX_ITEMS {
        parts.push("...".to_string());
    }
    seen.remove(&id);
    format!("{open}{}{close}", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_kernel::Heap;

    #[test]
    fn primitives_render_like_python() {
        let mut heap = Heap::new();
        let none = heap.alloc(ObjKind::None);
        let t = heap.alloc(ObjKind::Bool(true));
        let i = heap.alloc(ObjKind::Int(-3));
        let f = heap.alloc(ObjKind::Float(2.0));
        let s = heap.alloc(ObjKind::Str("hi".into()));
        assert_eq!(repr(&heap, none), "None");
        assert_eq!(repr(&heap, t), "True");
        assert_eq!(repr(&heap, i), "-3");
        assert_eq!(repr(&heap, f), "2.0");
        assert_eq!(repr(&heap, s), "'hi'");
        assert_eq!(display(&heap, s), "hi");
    }

    #[test]
    fn containers_nest() {
        let mut heap = Heap::new();
        let a = heap.alloc(ObjKind::Int(1));
        let b = heap.alloc(ObjKind::Str("x".into()));
        let inner = heap.alloc(ObjKind::List(vec![a, b]));
        let outer = heap.alloc(ObjKind::Tuple(vec![inner]));
        assert_eq!(repr(&heap, outer), "([1, 'x'])");
    }

    #[test]
    fn cycles_are_elided() {
        let mut heap = Heap::new();
        let ls = heap.alloc(ObjKind::List(vec![]));
        heap.modify(ls, |k| {
            if let ObjKind::List(items) = k {
                items.push(ls);
            }
        });
        assert_eq!(repr(&heap, ls), "[[...]]");
    }

    #[test]
    fn long_collections_truncate() {
        let mut heap = Heap::new();
        let items: Vec<ObjId> = (0..20).map(|i| heap.alloc(ObjKind::Int(i))).collect();
        let ls = heap.alloc(ObjKind::List(items));
        let r = repr(&heap, ls);
        assert!(r.ends_with(", ...]"));
    }

    #[test]
    fn arrays_show_length() {
        let mut heap = Heap::new();
        let arr = heap.alloc(ObjKind::NdArray(vec![0.5; 100]));
        let r = repr(&heap, arr);
        assert!(r.contains("n=100"));
    }
}
