//! The minipy tree-walking interpreter.
//!
//! Executes cells against a `kishu-kernel` [`Heap`] and patched
//! [`Namespace`], with Python reference semantics:
//!
//! * assignment binds names to objects (no copies);
//! * mutation (`ls.append`, `arr[i] = v`, `obj.attr = v`) is in-place and
//!   goes through [`Heap::modify`](kishu_kernel::Heap::modify), dirtying pages and the mutation clock;
//! * global name accesses are routed through the patched namespace so the
//!   per-cell [`AccessRecord`] is produced exactly as Kishu's Fig 8 hook
//!   observes it; function-local variables never touch the namespace,
//!   but reads/writes of globals from inside function bodies do.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::{Duration, Instant};

use kishu_kernel::{AccessRecord, Heap, Namespace, ObjId, ObjKind};

use crate::ast::{BinOp, BoolOpKind, CmpOp, Expr, Stmt, Target, UnaryOp};
use crate::builtins;
use crate::error::{RunError, RunErrorKind};
use crate::methods;
use crate::observer::ExecutionObserver;
use crate::parser::Parser;
use crate::repr;

/// Maximum loop iterations per cell — a backstop against runaway cells in
/// generated workloads.
const ITERATION_BUDGET: u64 = 50_000_000;
/// Maximum user-function call depth.
const MAX_DEPTH: usize = 64;

/// Signature of a registered builtin function.
pub type Builtin =
    Rc<dyn Fn(&mut Interp, Vec<ObjId>, Vec<(String, ObjId)>) -> Result<ObjId, RunError>>;

/// Method dispatch for simulated library classes ([`ObjKind::External`]).
/// `kishu-libsim` registers one implementation; returning `None` means "not
/// a method of this class", and the interpreter raises `AttributeError`.
pub trait ExternalDispatch {
    /// Try to handle `recv.method(args, kwargs)`.
    fn call_method(
        &self,
        interp: &mut Interp,
        recv: ObjId,
        method: &str,
        args: &[ObjId],
        kwargs: &[(String, ObjId)],
    ) -> Option<Result<ObjId, RunError>>;
}

/// Everything observable about one cell execution.
#[derive(Debug)]
pub struct CellOutcome {
    /// Which global names the cell got/set/deleted (the patched-namespace
    /// record Kishu's delta detector consumes).
    pub access: AccessRecord,
    /// Lines printed by the cell.
    pub output: Vec<String>,
    /// `repr` of the final bare expression, if the cell ended with one
    /// (Jupyter's `Out[n]`).
    pub value_repr: Option<String>,
    /// Runtime error, if the cell raised. Mutations made before the raise
    /// are still in effect (as in a real kernel), and `access` is complete
    /// up to the raise.
    pub error: Option<RunError>,
    /// Number of statement executions (including loop iterations).
    pub stmts_executed: u64,
    /// Wall-clock execution time.
    pub wall_time: Duration,
}

impl CellOutcome {
    /// Whether the cell completed without raising.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(ObjId),
}

/// A variable scope: the global namespace, or a function-local frame.
enum Scope {
    Global,
    Local {
        vars: HashMap<String, ObjId>,
        global_decls: HashSet<String>,
    },
}

/// The interpreter: heap + namespace + builtins + observers.
pub struct Interp {
    /// The simulated kernel heap holding all session state.
    pub heap: Heap,
    /// The patched global namespace.
    pub globals: Namespace,
    builtins: HashMap<String, Builtin>,
    external_dispatch: Option<Rc<dyn ExternalDispatch>>,
    func_cache: HashMap<u64, Rc<Vec<Stmt>>>,
    observers: Vec<Rc<RefCell<dyn ExecutionObserver>>>,
    rng_state: u64,
    output: Vec<String>,
    stmt_counter: u64,
    iter_budget: u64,
    iter_remaining: u64,
    depth: usize,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// A fresh kernel session with the core builtins registered.
    pub fn new() -> Self {
        let mut interp = Interp {
            heap: Heap::new(),
            globals: Namespace::new(),
            builtins: HashMap::new(),
            external_dispatch: None,
            func_cache: HashMap::new(),
            observers: Vec::new(),
            rng_state: 0x2545F4914F6CDD1D,
            output: Vec::new(),
            stmt_counter: 0,
            iter_budget: ITERATION_BUDGET,
            iter_remaining: ITERATION_BUDGET,
            depth: 0,
        };
        builtins::register_core(&mut interp);
        interp
    }

    /// Register (or replace) a builtin function callable from cells.
    pub fn register_builtin(&mut self, name: &str, f: Builtin) {
        self.builtins.insert(name.to_string(), f);
    }

    /// Whether a builtin with this name exists.
    pub fn has_builtin(&self, name: &str) -> bool {
        self.builtins.contains_key(name)
    }

    /// Install the library-class method dispatcher (`kishu-libsim`).
    pub fn set_external_dispatch(&mut self, d: Rc<dyn ExternalDispatch>) {
        self.external_dispatch = Some(d);
    }

    /// Attach an execution observer (IPyFlow-style instrumentation).
    pub fn add_observer(&mut self, obs: Rc<RefCell<dyn ExecutionObserver>>) {
        self.observers.push(obs);
    }

    /// Detach all observers.
    pub fn clear_observers(&mut self) {
        self.observers.clear();
    }

    /// Override the per-cell iteration budget (tests use small budgets to
    /// exercise the limit without burning time).
    pub fn set_iteration_budget(&mut self, budget: u64) {
        self.iter_budget = budget;
    }

    /// Reseed the session RNG (the source of *nondeterministic* values such
    /// as `randn`; rerunning a cell after reseeding reproduces it, which is
    /// how tests pin down the §5.3 nondeterminism limitation).
    pub fn set_rng_seed(&mut self, seed: u64) {
        self.rng_state = seed | 1;
    }

    /// Next nondeterministic f64 in [0, 1) (xorshift64*).
    pub fn next_random(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let bits = x.wrapping_mul(0x2545F4914F6CDD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Garbage-collect everything unreachable from the global namespace.
    /// Only safe between cell executions. Returns collected object count.
    pub fn gc(&mut self) -> usize {
        let roots = self.globals.roots();
        self.heap.collect_garbage(roots)
    }

    /// Append a line to the cell's captured output (used by `print` and by
    /// library code).
    pub fn emit_output(&mut self, line: String) {
        self.output.push(line);
    }

    // ------------------------------------------------------------------
    // cell execution

    /// Execute one cell. Syntax errors return `Err` (nothing ran); runtime
    /// errors are reported inside the outcome, with all side effects up to
    /// the raise intact — exactly like a real kernel.
    pub fn run_cell(&mut self, src: &str) -> Result<CellOutcome, RunError> {
        let program = Parser::new(src)?.parse_program()?;
        self.output.clear();
        self.stmt_counter = 0;
        self.iter_remaining = self.iter_budget;
        self.globals.begin_tracking();
        let start = Instant::now();

        let mut scope = Scope::Global;
        let mut error = None;
        let mut value_repr = None;
        let last_is_expr = matches!(program.last(), Some(Stmt::Expr(_)));
        let body = if last_is_expr {
            &program[..program.len() - 1]
        } else {
            &program[..]
        };
        for stmt in body {
            match self.exec_stmt(stmt, &mut scope) {
                Ok(Flow::Normal) => {}
                Ok(Flow::Return(_)) | Ok(Flow::Break) | Ok(Flow::Continue) => {
                    error = Some(RunError::new(
                        RunErrorKind::SyntaxError,
                        "control-flow statement outside loop/function",
                    ));
                    break;
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        if error.is_none() && last_is_expr {
            if let Some(Stmt::Expr(e)) = program.last() {
                self.observe_stmt(program.last().expect("just matched"));
                self.stmt_counter += 1;
                match self.eval(e, &mut scope) {
                    Ok(v) => {
                        if !matches!(self.heap.kind(v), ObjKind::None) {
                            value_repr = Some(repr::repr(&self.heap, v));
                        }
                    }
                    Err(e) => error = Some(e),
                }
            }
        }
        let access = self.globals.end_tracking();
        Ok(CellOutcome {
            access,
            output: std::mem::take(&mut self.output),
            value_repr,
            error,
            stmts_executed: self.stmt_counter,
            wall_time: start.elapsed(),
        })
    }

    /// Run a cell in a *temporary* namespace seeded with the given bindings,
    /// without touching the session namespace. Used by Kishu's fallback
    /// recomputation (§5.3): the cell's code is re-run against its recorded
    /// dependencies, and the resulting bindings are returned.
    pub fn run_cell_in_temp_namespace(
        &mut self,
        src: &str,
        bindings: Vec<(String, ObjId)>,
    ) -> Result<Vec<(String, ObjId)>, RunError> {
        let saved = std::mem::take(&mut self.globals);
        let mut temp = Namespace::new();
        for (name, obj) in bindings {
            temp.set_untracked(&name, obj);
        }
        self.globals = temp;
        let result = self.run_cell(src);
        let temp = std::mem::replace(&mut self.globals, saved);
        let _outcome = result?;
        // A runtime error mid-cell is NOT a replay failure: the original
        // execution checkpointed its partial mutations (an errored cell
        // still commits — its effects are real and undoable), so a faithful
        // replay raises the same error at the same point and hands back
        // whatever it did bind.
        Ok(temp
            .bindings()
            .map(|(n, o)| (n.to_string(), o))
            .collect())
    }

    fn observe_stmt(&mut self, stmt: &Stmt) {
        if self.observers.is_empty() {
            return;
        }
        let obs = self.observers.clone();
        for o in &obs {
            o.borrow_mut().on_stmt(&self.heap, stmt);
        }
    }

    fn observe_load(&mut self, name: &str, obj: Option<ObjId>) {
        if self.observers.is_empty() {
            return;
        }
        let obs = self.observers.clone();
        for o in &obs {
            o.borrow_mut().on_name_load(&self.heap, name, obj);
        }
    }

    fn observe_store(&mut self, name: &str, obj: ObjId) {
        if self.observers.is_empty() {
            return;
        }
        let obs = self.observers.clone();
        for o in &obs {
            o.borrow_mut().on_name_store(&self.heap, name, obj);
        }
    }

    fn observe_delete(&mut self, name: &str) {
        if self.observers.is_empty() {
            return;
        }
        let obs = self.observers.clone();
        for o in &obs {
            o.borrow_mut().on_name_delete(&self.heap, name);
        }
    }

    // ------------------------------------------------------------------
    // statements

    fn exec_block(&mut self, stmts: &[Stmt], scope: &mut Scope) -> Result<Flow, RunError> {
        for stmt in stmts {
            match self.exec_stmt(stmt, scope)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, scope: &mut Scope) -> Result<Flow, RunError> {
        self.stmt_counter += 1;
        self.observe_stmt(stmt);
        match stmt {
            Stmt::Pass => Ok(Flow::Normal),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Expr(e) => {
                self.eval(e, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value, scope)?;
                self.assign(target, v, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::AugAssign { target, op, value } => {
                self.aug_assign(target, *op, value, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::Del(targets) => {
                for t in targets {
                    self.delete(t, scope)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::If { arms, orelse } => {
                for (cond, body) in arms {
                    let c = self.eval(cond, scope)?;
                    if self.truthy(c)? {
                        return self.exec_block(body, scope);
                    }
                }
                self.exec_block(orelse, scope)
            }
            Stmt::While { cond, body } => {
                loop {
                    self.charge_iteration()?;
                    let c = self.eval(cond, scope)?;
                    if !self.truthy(c)? {
                        break;
                    }
                    match self.exec_block(body, scope)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { var, iter, body } => {
                let iterable = self.eval(iter, scope)?;
                let items = self.iterate(iterable)?;
                for item in items {
                    self.charge_iteration()?;
                    self.store_name(var, item, scope);
                    match self.exec_block(body, scope)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::FuncDef {
                name,
                params,
                source,
                ..
            } => {
                let f = self.heap.alloc(ObjKind::Function {
                    name: name.clone(),
                    params: params.clone(),
                    source: source.clone(),
                });
                self.store_name(name, f, scope);
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e, scope)?,
                    None => self.heap.alloc(ObjKind::None),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Global(names) => {
                if let Scope::Local { global_decls, .. } = scope {
                    for n in names {
                        global_decls.insert(n.clone());
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn charge_iteration(&mut self) -> Result<(), RunError> {
        if self.iter_remaining == 0 {
            return Err(RunError::new(
                RunErrorKind::LimitError,
                "cell exceeded the iteration budget",
            ));
        }
        self.iter_remaining -= 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // names

    fn load_name(&mut self, name: &str, scope: &mut Scope) -> Result<ObjId, RunError> {
        if let Scope::Local { vars, .. } = scope {
            if let Some(v) = vars.get(name) {
                return Ok(*v);
            }
        }
        if self.globals.contains(name) {
            let v = self.globals.get(name).expect("checked contains");
            self.observe_load(name, Some(v));
            return Ok(v);
        }
        // Record the failed lookup attempt (conservative, like a patched
        // `user_ns.__getitem__` that raises KeyError after being called).
        let miss = self.globals.get(name);
        debug_assert!(miss.is_none());
        self.observe_load(name, None);
        Err(RunError::new(
            RunErrorKind::NameError,
            format!("name `{name}` is not defined"),
        ))
    }

    fn store_name(&mut self, name: &str, obj: ObjId, scope: &mut Scope) {
        match scope {
            Scope::Local {
                vars,
                global_decls,
            } => {
                if global_decls.contains(name) {
                    self.globals.set(name, obj);
                    self.observe_store(name, obj);
                } else {
                    vars.insert(name.to_string(), obj);
                }
            }
            Scope::Global => {
                self.globals.set(name, obj);
                self.observe_store(name, obj);
            }
        }
    }

    // ------------------------------------------------------------------
    // assignment / deletion

    fn assign(&mut self, target: &Target, value: ObjId, scope: &mut Scope) -> Result<(), RunError> {
        match target {
            Target::Name(name) => {
                self.store_name(name, value, scope);
                Ok(())
            }
            Target::Attr(obj, attr) => {
                let recv = self.eval(obj, scope)?;
                self.set_attr(recv, attr, value)
            }
            Target::Index(obj, idx) => {
                let recv = self.eval(obj, scope)?;
                let index = self.eval(idx, scope)?;
                self.set_index(recv, index, value)
            }
        }
    }

    /// Set `recv.attr = value` in place.
    pub fn set_attr(&mut self, recv: ObjId, attr: &str, value: ObjId) -> Result<(), RunError> {
        let kind_tag = self.heap.kind(recv).type_tag();
        match self.heap.kind(recv) {
            ObjKind::Instance { .. } => {
                self.heap.modify(recv, |k| {
                    if let ObjKind::Instance { attrs, .. } = k {
                        if let Some(slot) = attrs.iter_mut().find(|(n, _)| n == attr) {
                            slot.1 = value;
                        } else {
                            attrs.push((attr.to_string(), value));
                        }
                    }
                });
                Ok(())
            }
            ObjKind::External { .. } => {
                self.heap.modify(recv, |k| {
                    if let ObjKind::External { attrs, .. } = k {
                        if let Some(slot) = attrs.iter_mut().find(|(n, _)| n == attr) {
                            slot.1 = value;
                        } else {
                            attrs.push((attr.to_string(), value));
                        }
                    }
                });
                Ok(())
            }
            ObjKind::Series { .. } if attr == "name" => {
                let s = self.expect_str(value)?.to_string();
                self.heap.modify(recv, |k| {
                    if let ObjKind::Series { name, .. } = k {
                        *name = s;
                    }
                });
                Ok(())
            }
            _ => Err(RunError::new(
                RunErrorKind::AttributeError,
                format!("cannot set attribute `{attr}` on {kind_tag}"),
            )),
        }
    }

    /// Set `recv[index] = value` in place.
    pub fn set_index(&mut self, recv: ObjId, index: ObjId, value: ObjId) -> Result<(), RunError> {
        match self.heap.kind(recv).clone() {
            ObjKind::List(items) => {
                let i = self.resolve_index(index, items.len())?;
                self.heap.modify(recv, |k| {
                    if let ObjKind::List(items) = k {
                        items[i] = value;
                    }
                });
                Ok(())
            }
            ObjKind::Dict(pairs) => {
                let existing = self.find_dict_slot(&pairs, index)?;
                self.heap.modify(recv, |k| {
                    if let ObjKind::Dict(pairs) = k {
                        match existing {
                            Some(i) => pairs[i].1 = value,
                            None => pairs.push((index, value)),
                        }
                    }
                });
                Ok(())
            }
            ObjKind::NdArray(values) => {
                let i = self.resolve_index(index, values.len())?;
                let v = self.expect_float(value)?;
                self.heap.modify(recv, |k| {
                    if let ObjKind::NdArray(values) = k {
                        values[i] = v;
                    }
                });
                Ok(())
            }
            ObjKind::DataFrame(_) => {
                let name = self.expect_str(index)?.to_string();
                self.heap.modify(recv, |k| {
                    if let ObjKind::DataFrame(cols) = k {
                        if let Some(slot) = cols.iter_mut().find(|(n, _)| *n == name) {
                            slot.1 = value;
                        } else {
                            cols.push((name, value));
                        }
                    }
                });
                Ok(())
            }
            ObjKind::Series { values, .. } => self.set_index(values, index, value),
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("{} does not support item assignment", other.type_tag()),
            )),
        }
    }

    fn aug_assign(
        &mut self,
        target: &Target,
        op: BinOp,
        value: &Expr,
        scope: &mut Scope,
    ) -> Result<(), RunError> {
        let rhs = self.eval(value, scope)?;
        match target {
            Target::Name(name) => {
                let current = self.load_name(name, scope)?;
                // Python `__iadd__` semantics: lists extend in place,
                // ndarrays update their buffer in place; everything else
                // rebinds to a fresh object.
                match (self.heap.kind(current).clone(), op) {
                    (ObjKind::List(_), BinOp::Add) => {
                        let extra = match self.heap.kind(rhs) {
                            ObjKind::List(items) | ObjKind::Tuple(items) => items.clone(),
                            other => {
                                return Err(RunError::new(
                                    RunErrorKind::TypeError,
                                    format!("can only concatenate list, not {}", other.type_tag()),
                                ))
                            }
                        };
                        self.heap.modify(current, |k| {
                            if let ObjKind::List(items) = k {
                                items.extend(extra);
                            }
                        });
                        Ok(())
                    }
                    (ObjKind::NdArray(_), _) => {
                        self.ndarray_inplace(current, op, rhs)?;
                        Ok(())
                    }
                    _ => {
                        let result = self.binop(op, current, rhs)?;
                        self.store_name(name, result, scope);
                        Ok(())
                    }
                }
            }
            Target::Attr(obj, attr) => {
                let recv = self.eval(obj, scope)?;
                let current = self.get_attr(recv, attr)?;
                if let ObjKind::NdArray(_) = self.heap.kind(current) {
                    self.ndarray_inplace(current, op, rhs)?;
                    return Ok(());
                }
                let result = self.binop(op, current, rhs)?;
                self.set_attr(recv, attr, result)
            }
            Target::Index(obj, idx) => {
                let recv = self.eval(obj, scope)?;
                let index = self.eval(idx, scope)?;
                let current = self.get_index(recv, index)?;
                if let ObjKind::NdArray(_) = self.heap.kind(current) {
                    self.ndarray_inplace(current, op, rhs)?;
                    return Ok(());
                }
                let result = self.binop(op, current, rhs)?;
                self.set_index(recv, index, result)
            }
        }
    }

    fn ndarray_inplace(&mut self, arr: ObjId, op: BinOp, rhs: ObjId) -> Result<(), RunError> {
        enum Rhs {
            Scalar(f64),
            Array(Vec<f64>),
        }
        let rhs_val = match self.heap.kind(rhs) {
            ObjKind::Int(v) => Rhs::Scalar(*v as f64),
            ObjKind::Float(v) => Rhs::Scalar(*v),
            ObjKind::NdArray(vs) => Rhs::Array(vs.clone()),
            other => {
                return Err(RunError::new(
                    RunErrorKind::TypeError,
                    format!("unsupported operand for ndarray: {}", other.type_tag()),
                ))
            }
        };
        let apply = |a: f64, b: f64| -> f64 {
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::FloorDiv => (a / b).floor(),
                BinOp::Mod => a.rem_euclid(b),
                BinOp::Pow => a.powf(b),
            }
        };
        let mut err = None;
        self.heap.modify(arr, |k| {
            if let ObjKind::NdArray(values) = k {
                match &rhs_val {
                    Rhs::Scalar(b) => {
                        for v in values.iter_mut() {
                            *v = apply(*v, *b);
                        }
                    }
                    Rhs::Array(bs) => {
                        if bs.len() != values.len() {
                            err = Some(RunError::new(
                                RunErrorKind::ValueError,
                                "operands could not be broadcast together",
                            ));
                        } else {
                            for (v, b) in values.iter_mut().zip(bs) {
                                *v = apply(*v, *b);
                            }
                        }
                    }
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn delete(&mut self, target: &Target, scope: &mut Scope) -> Result<(), RunError> {
        match target {
            Target::Name(name) => {
                if let Scope::Local { vars, global_decls } = scope {
                    if !global_decls.contains(name) && vars.remove(name).is_some() {
                        return Ok(());
                    }
                }
                self.observe_delete(name);
                match self.globals.delete(name) {
                    Some(_) => Ok(()),
                    None => Err(RunError::new(
                        RunErrorKind::NameError,
                        format!("name `{name}` is not defined"),
                    )),
                }
            }
            Target::Index(obj, idx) => {
                let recv = self.eval(obj, scope)?;
                let index = self.eval(idx, scope)?;
                match self.heap.kind(recv).clone() {
                    ObjKind::List(items) => {
                        let i = self.resolve_index(index, items.len())?;
                        self.heap.modify(recv, |k| {
                            if let ObjKind::List(items) = k {
                                items.remove(i);
                            }
                        });
                        Ok(())
                    }
                    ObjKind::Dict(pairs) => {
                        match self.find_dict_slot(&pairs, index)? {
                            Some(i) => {
                                self.heap.modify(recv, |k| {
                                    if let ObjKind::Dict(pairs) = k {
                                        pairs.remove(i);
                                    }
                                });
                                Ok(())
                            }
                            None => Err(RunError::new(RunErrorKind::KeyError, "key not found")),
                        }
                    }
                    other => Err(RunError::new(
                        RunErrorKind::TypeError,
                        format!("cannot delete items of {}", other.type_tag()),
                    )),
                }
            }
            Target::Attr(obj, attr) => {
                let recv = self.eval(obj, scope)?;
                let mut found = false;
                self.heap.modify(recv, |k| {
                    if let ObjKind::Instance { attrs, .. } | ObjKind::External { attrs, .. } = k {
                        let before = attrs.len();
                        attrs.retain(|(n, _)| n != attr);
                        found = attrs.len() < before;
                    }
                });
                if found {
                    Ok(())
                } else {
                    Err(RunError::new(
                        RunErrorKind::AttributeError,
                        format!("no attribute `{attr}`"),
                    ))
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // expressions

    fn eval(&mut self, expr: &Expr, scope: &mut Scope) -> Result<ObjId, RunError> {
        match expr {
            Expr::None => Ok(self.heap.alloc(ObjKind::None)),
            Expr::Bool(b) => Ok(self.heap.alloc(ObjKind::Bool(*b))),
            Expr::Int(v) => Ok(self.heap.alloc(ObjKind::Int(*v))),
            Expr::Float(v) => Ok(self.heap.alloc(ObjKind::Float(*v))),
            Expr::Str(s) => Ok(self.heap.alloc(ObjKind::Str(s.clone()))),
            Expr::Name(n) => self.load_name(n, scope),
            Expr::List(items) => {
                let vals = self.eval_all(items, scope)?;
                Ok(self.heap.alloc(ObjKind::List(vals)))
            }
            Expr::Tuple(items) => {
                let vals = self.eval_all(items, scope)?;
                Ok(self.heap.alloc(ObjKind::Tuple(vals)))
            }
            Expr::Set(items) => {
                let vals = self.eval_all(items, scope)?;
                let mut uniq: Vec<ObjId> = Vec::new();
                for v in vals {
                    if !uniq.iter().any(|u| self.value_eq(*u, v)) {
                        uniq.push(v);
                    }
                }
                Ok(self.heap.alloc(ObjKind::Set(uniq)))
            }
            Expr::Dict(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let kv = self.eval(k, scope)?;
                    let vv = self.eval(v, scope)?;
                    out.push((kv, vv));
                }
                Ok(self.heap.alloc(ObjKind::Dict(out)))
            }
            Expr::BinOp { op, left, right } => {
                let l = self.eval(left, scope)?;
                let r = self.eval(right, scope)?;
                self.binop(*op, l, r)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, scope)?;
                match op {
                    UnaryOp::Not => {
                        let b = !self.truthy(v)?;
                        Ok(self.heap.alloc(ObjKind::Bool(b)))
                    }
                    UnaryOp::Neg => match self.heap.kind(v) {
                        ObjKind::Int(x) => Ok(self.heap.alloc(ObjKind::Int(-x))),
                        ObjKind::Float(x) => Ok(self.heap.alloc(ObjKind::Float(-x))),
                        ObjKind::NdArray(xs) => {
                            let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
                            Ok(self.heap.alloc(ObjKind::NdArray(neg)))
                        }
                        other => Err(RunError::new(
                            RunErrorKind::TypeError,
                            format!("bad operand for unary -: {}", other.type_tag()),
                        )),
                    },
                }
            }
            Expr::BoolOp { op, operands } => {
                let mut last = None;
                for e in operands {
                    let v = self.eval(e, scope)?;
                    let t = self.truthy(v)?;
                    match op {
                        BoolOpKind::And if !t => return Ok(v),
                        BoolOpKind::Or if t => return Ok(v),
                        _ => last = Some(v),
                    }
                }
                Ok(last.expect("parser guarantees ≥2 operands"))
            }
            Expr::Compare { left, rest } => {
                let mut prev = self.eval(left, scope)?;
                for (op, e) in rest {
                    let next = self.eval(e, scope)?;
                    if !self.compare(*op, prev, next)? {
                        return Ok(self.heap.alloc(ObjKind::Bool(false)));
                    }
                    prev = next;
                }
                Ok(self.heap.alloc(ObjKind::Bool(true)))
            }
            Expr::Attr(obj, attr) => {
                let recv = self.eval(obj, scope)?;
                self.get_attr(recv, attr)
            }
            Expr::Index(obj, idx) => {
                let recv = self.eval(obj, scope)?;
                if let Expr::Slice(lo, hi) = idx.as_ref() {
                    let lo = match lo {
                        Some(e) => Some(self.eval_usize_like(e, scope)?),
                        None => None,
                    };
                    let hi = match hi {
                        Some(e) => Some(self.eval_usize_like(e, scope)?),
                        None => None,
                    };
                    return self.get_slice(recv, lo, hi);
                }
                let index = self.eval(idx, scope)?;
                self.get_index(recv, index)
            }
            Expr::Slice(..) => Err(RunError::new(
                RunErrorKind::SyntaxError,
                "slice outside subscript",
            )),
            Expr::Call { func, args, kwargs } => self.eval_call(func, args, kwargs, scope),
        }
    }

    fn eval_all(&mut self, exprs: &[Expr], scope: &mut Scope) -> Result<Vec<ObjId>, RunError> {
        exprs.iter().map(|e| self.eval(e, scope)).collect()
    }

    fn eval_usize_like(&mut self, e: &Expr, scope: &mut Scope) -> Result<i64, RunError> {
        let v = self.eval(e, scope)?;
        self.expect_int(v)
    }

    fn eval_call(
        &mut self,
        func: &Expr,
        args: &[Expr],
        kwargs: &[(String, Expr)],
        scope: &mut Scope,
    ) -> Result<ObjId, RunError> {
        // Method call: obj.method(...)
        if let Expr::Attr(obj, method) = func {
            let recv = self.eval(obj, scope)?;
            let argv = self.eval_all(args, scope)?;
            let kwargv = self.eval_kwargs(kwargs, scope)?;
            return self.call_method(recv, method, &argv, &kwargv);
        }
        // Plain-name call: user function shadows builtin.
        if let Expr::Name(name) = func {
            let in_locals = matches!(scope, Scope::Local { vars, .. } if vars.contains_key(name));
            if !in_locals && !self.globals.contains(name) {
                if let Some(b) = self.builtins.get(name).cloned() {
                    let argv = self.eval_all(args, scope)?;
                    let kwargv = self.eval_kwargs(kwargs, scope)?;
                    return b(self, argv, kwargv);
                }
            }
        }
        let callee = self.eval(func, scope)?;
        let argv = self.eval_all(args, scope)?;
        if !kwargs.is_empty() {
            return Err(RunError::new(
                RunErrorKind::TypeError,
                "user functions take positional arguments only",
            ));
        }
        self.call_function_obj(callee, &argv)
    }

    fn eval_kwargs(
        &mut self,
        kwargs: &[(String, Expr)],
        scope: &mut Scope,
    ) -> Result<Vec<(String, ObjId)>, RunError> {
        kwargs
            .iter()
            .map(|(n, e)| Ok((n.clone(), self.eval(e, scope)?)))
            .collect()
    }

    /// Call a function object with positional arguments.
    pub fn call_function_obj(&mut self, callee: ObjId, argv: &[ObjId]) -> Result<ObjId, RunError> {
        let (params, source) = match self.heap.kind(callee) {
            ObjKind::Function { params, source, .. } => (params.clone(), source.clone()),
            other => {
                return Err(RunError::new(
                    RunErrorKind::TypeError,
                    format!("{} object is not callable", other.type_tag()),
                ))
            }
        };
        if argv.len() != params.len() {
            return Err(RunError::new(
                RunErrorKind::TypeError,
                format!("expected {} arguments, got {}", params.len(), argv.len()),
            ));
        }
        if self.depth >= MAX_DEPTH {
            return Err(RunError::new(
                RunErrorKind::LimitError,
                "maximum recursion depth exceeded",
            ));
        }
        let body = self.function_body(&source)?;
        let mut vars = HashMap::with_capacity(params.len());
        for (p, v) in params.iter().zip(argv) {
            vars.insert(p.clone(), *v);
        }
        let mut scope = Scope::Local {
            vars,
            global_decls: HashSet::new(),
        };
        self.depth += 1;
        let flow = self.exec_block(&body, &mut scope);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(self.heap.alloc(ObjKind::None)),
        }
    }

    fn function_body(&mut self, source: &str) -> Result<Rc<Vec<Stmt>>, RunError> {
        let key = fnv1a(source.as_bytes());
        if let Some(b) = self.func_cache.get(&key) {
            return Ok(b.clone());
        }
        let program = Parser::new(source)?.parse_program()?;
        let body = match program.into_iter().next() {
            Some(Stmt::FuncDef { body, .. }) => body,
            _ => {
                return Err(RunError::new(
                    RunErrorKind::TypeError,
                    "function source did not parse to a def",
                ))
            }
        };
        let rc = Rc::new(body);
        self.func_cache.insert(key, rc.clone());
        Ok(rc)
    }

    /// Dispatch `recv.method(args, kwargs)`: external classes go to the
    /// registered dispatcher first, then the built-in kind methods.
    pub fn call_method(
        &mut self,
        recv: ObjId,
        method: &str,
        args: &[ObjId],
        kwargs: &[(String, ObjId)],
    ) -> Result<ObjId, RunError> {
        if matches!(self.heap.kind(recv), ObjKind::External { .. }) {
            if let Some(d) = self.external_dispatch.clone() {
                if let Some(result) = d.call_method(self, recv, method, args, kwargs) {
                    return result;
                }
            }
        }
        methods::dispatch(self, recv, method, args, kwargs)
    }

    // ------------------------------------------------------------------
    // attribute / subscript reads

    /// Read `recv.attr` (data attributes only; methods are call-only).
    pub fn get_attr(&mut self, recv: ObjId, attr: &str) -> Result<ObjId, RunError> {
        match self.heap.kind(recv).clone() {
            ObjKind::Instance { attrs, class_name } => {
                attrs.iter().find(|(n, _)| n == attr).map(|(_, v)| *v).ok_or_else(|| {
                    RunError::new(
                        RunErrorKind::AttributeError,
                        format!("'{class_name}' object has no attribute `{attr}`"),
                    )
                })
            }
            ObjKind::External { attrs, .. } => {
                attrs.iter().find(|(n, _)| n == attr).map(|(_, v)| *v).ok_or_else(|| {
                    RunError::new(
                        RunErrorKind::AttributeError,
                        format!("external object has no attribute `{attr}`"),
                    )
                })
            }
            ObjKind::Series { name, values } => match attr {
                "name" => Ok(self.heap.alloc(ObjKind::Str(name))),
                "values" => Ok(values),
                _ => Err(RunError::new(
                    RunErrorKind::AttributeError,
                    format!("Series has no attribute `{attr}`"),
                )),
            },
            ObjKind::DataFrame(cols) => match attr {
                "columns" => {
                    let names: Vec<ObjId> = cols
                        .iter()
                        .map(|(n, _)| self.heap.alloc(ObjKind::Str(n.clone())))
                        .collect();
                    Ok(self.heap.alloc(ObjKind::List(names)))
                }
                "shape" => {
                    let nrows = cols
                        .first()
                        .map(|(_, c)| self.sequence_len(*c).unwrap_or(0))
                        .unwrap_or(0);
                    let r = self.heap.alloc(ObjKind::Int(nrows as i64));
                    let c = self.heap.alloc(ObjKind::Int(cols.len() as i64));
                    Ok(self.heap.alloc(ObjKind::Tuple(vec![r, c])))
                }
                _ => Err(RunError::new(
                    RunErrorKind::AttributeError,
                    format!("DataFrame has no attribute `{attr}`"),
                )),
            },
            ObjKind::NdArray(values) => match attr {
                "size" => Ok(self.heap.alloc(ObjKind::Int(values.len() as i64))),
                _ => Err(RunError::new(
                    RunErrorKind::AttributeError,
                    format!("ndarray has no attribute `{attr}`"),
                )),
            },
            other => Err(RunError::new(
                RunErrorKind::AttributeError,
                format!("{} has no attribute `{attr}`", other.type_tag()),
            )),
        }
    }

    /// Read `recv[index]`.
    pub fn get_index(&mut self, recv: ObjId, index: ObjId) -> Result<ObjId, RunError> {
        match self.heap.kind(recv).clone() {
            ObjKind::List(items) | ObjKind::Tuple(items) => {
                let i = self.resolve_index(index, items.len())?;
                Ok(items[i])
            }
            ObjKind::Dict(pairs) => match self.find_dict_slot(&pairs, index)? {
                Some(i) => Ok(pairs[i].1),
                None => Err(RunError::new(
                    RunErrorKind::KeyError,
                    format!("key {}", repr::repr(&self.heap, index)),
                )),
            },
            ObjKind::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let i = self.resolve_index(index, chars.len())?;
                Ok(self.heap.alloc(ObjKind::Str(chars[i].to_string())))
            }
            ObjKind::NdArray(values) => {
                let i = self.resolve_index(index, values.len())?;
                Ok(self.heap.alloc(ObjKind::Float(values[i])))
            }
            ObjKind::Series { values, .. } => self.get_index(values, index),
            ObjKind::DataFrame(cols) => {
                let name = self.expect_str(index)?;
                cols.iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, c)| *c)
                    .ok_or_else(|| {
                        RunError::new(RunErrorKind::KeyError, format!("column `{name}`"))
                    })
            }
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("{} is not subscriptable", other.type_tag()),
            )),
        }
    }

    fn get_slice(&mut self, recv: ObjId, lo: Option<i64>, hi: Option<i64>) -> Result<ObjId, RunError> {
        let clamp = |len: usize, v: Option<i64>, default: usize| -> usize {
            match v {
                None => default,
                Some(x) if x < 0 => len.saturating_sub((-x) as usize),
                Some(x) => (x as usize).min(len),
            }
        };
        match self.heap.kind(recv).clone() {
            ObjKind::List(items) => {
                let (a, b) = (clamp(items.len(), lo, 0), clamp(items.len(), hi, items.len()));
                let slice = if a < b { items[a..b].to_vec() } else { Vec::new() };
                Ok(self.heap.alloc(ObjKind::List(slice)))
            }
            ObjKind::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let (a, b) = (clamp(chars.len(), lo, 0), clamp(chars.len(), hi, chars.len()));
                let out: String = if a < b { chars[a..b].iter().collect() } else { String::new() };
                Ok(self.heap.alloc(ObjKind::Str(out)))
            }
            ObjKind::NdArray(values) => {
                let (a, b) = (clamp(values.len(), lo, 0), clamp(values.len(), hi, values.len()));
                let out = if a < b { values[a..b].to_vec() } else { Vec::new() };
                Ok(self.heap.alloc(ObjKind::NdArray(out)))
            }
            ObjKind::Series { values, .. } => self.get_slice(values, lo, hi),
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("{} does not support slicing", other.type_tag()),
            )),
        }
    }

    // ------------------------------------------------------------------
    // operators and coercions

    /// Apply a binary arithmetic operator, producing a new object.
    pub fn binop(&mut self, op: BinOp, l: ObjId, r: ObjId) -> Result<ObjId, RunError> {
        use ObjKind::*;
        let lk = self.heap.kind(l).clone();
        let rk = self.heap.kind(r).clone();
        let kind = match (op, &lk, &rk) {
            // int ∘ int stays int except for true division
            (BinOp::Add, Int(a), Int(b)) => Int(a.wrapping_add(*b)),
            (BinOp::Sub, Int(a), Int(b)) => Int(a.wrapping_sub(*b)),
            (BinOp::Mul, Int(a), Int(b)) => Int(a.wrapping_mul(*b)),
            (BinOp::Div, Int(a), Int(b)) => {
                if *b == 0 {
                    return Err(RunError::new(RunErrorKind::ValueError, "division by zero"));
                }
                Float(*a as f64 / *b as f64)
            }
            (BinOp::FloorDiv, Int(a), Int(b)) => {
                if *b == 0 {
                    return Err(RunError::new(RunErrorKind::ValueError, "division by zero"));
                }
                Int(a.div_euclid(*b))
            }
            (BinOp::Mod, Int(a), Int(b)) => {
                if *b == 0 {
                    return Err(RunError::new(RunErrorKind::ValueError, "modulo by zero"));
                }
                Int(a.rem_euclid(*b))
            }
            (BinOp::Pow, Int(a), Int(b)) if *b >= 0 => {
                Int(a.checked_pow((*b).min(63) as u32).unwrap_or(i64::MAX))
            }
            // mixed / float arithmetic
            _ if lk.is_numeric() && rk.is_numeric_or_array() || lk.is_array() => {
                return self.numeric_binop(op, l, r)
            }
            (BinOp::Add, Str(a), Str(b)) => Str(format!("{a}{b}")),
            (BinOp::Mul, Str(a), Int(n)) => Str(a.repeat((*n).max(0) as usize)),
            (BinOp::Add, List(a), List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().copied());
                List(out)
            }
            (BinOp::Mul, List(a), Int(n)) => {
                let mut out = Vec::new();
                for _ in 0..(*n).max(0) {
                    out.extend(a.iter().copied());
                }
                List(out)
            }
            (BinOp::Add, Tuple(a), Tuple(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().copied());
                Tuple(out)
            }
            _ => {
                return Err(RunError::new(
                    RunErrorKind::TypeError,
                    format!(
                        "unsupported operand types for {op:?}: {} and {}",
                        lk.type_tag(),
                        rk.type_tag()
                    ),
                ))
            }
        };
        Ok(self.heap.alloc(kind))
    }

    fn numeric_binop(&mut self, op: BinOp, l: ObjId, r: ObjId) -> Result<ObjId, RunError> {
        let apply = |a: f64, b: f64| -> f64 {
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::FloorDiv => (a / b).floor(),
                BinOp::Mod => a.rem_euclid(b),
                BinOp::Pow => a.powf(b),
            }
        };
        let lk = self.heap.kind(l).clone();
        let rk = self.heap.kind(r).clone();
        let kind = match (&lk, &rk) {
            (ObjKind::NdArray(a), ObjKind::NdArray(b)) => {
                if a.len() != b.len() {
                    return Err(RunError::new(
                        RunErrorKind::ValueError,
                        "operands could not be broadcast together",
                    ));
                }
                ObjKind::NdArray(a.iter().zip(b).map(|(x, y)| apply(*x, *y)).collect())
            }
            (ObjKind::NdArray(a), _) => {
                let b = self.expect_float(r)?;
                ObjKind::NdArray(a.iter().map(|x| apply(*x, b)).collect())
            }
            (_, ObjKind::NdArray(b)) => {
                let a = self.expect_float(l)?;
                ObjKind::NdArray(b.iter().map(|y| apply(a, *y)).collect())
            }
            _ => {
                let a = self.expect_float(l)?;
                let b = self.expect_float(r)?;
                if matches!(op, BinOp::Div | BinOp::FloorDiv | BinOp::Mod) && b == 0.0 {
                    return Err(RunError::new(RunErrorKind::ValueError, "division by zero"));
                }
                ObjKind::Float(apply(a, b))
            }
        };
        Ok(self.heap.alloc(kind))
    }

    fn compare(&mut self, op: CmpOp, l: ObjId, r: ObjId) -> Result<bool, RunError> {
        match op {
            CmpOp::Eq => Ok(self.value_eq(l, r)),
            CmpOp::Ne => Ok(!self.value_eq(l, r)),
            CmpOp::In => self.contains(r, l),
            CmpOp::NotIn => Ok(!self.contains(r, l)?),
            _ => {
                let ord = self.value_cmp(l, r)?;
                Ok(match op {
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!("handled above"),
                })
            }
        }
    }

    /// Python `==`: deep value equality with cycle protection.
    pub fn value_eq(&self, a: ObjId, b: ObjId) -> bool {
        let mut visiting = HashSet::new();
        self.value_eq_inner(a, b, &mut visiting)
    }

    fn value_eq_inner(&self, a: ObjId, b: ObjId, visiting: &mut HashSet<(ObjId, ObjId)>) -> bool {
        if a == b {
            return true;
        }
        if !visiting.insert((a, b)) {
            return true; // cycle: assume equal along this path
        }
        use ObjKind::*;
        let result = match (self.heap.kind(a), self.heap.kind(b)) {
            (None, None) => true,
            (Bool(x), Bool(y)) => x == y,
            (Int(x), Int(y)) => x == y,
            (Float(x), Float(y)) => x == y,
            (Int(x), Float(y)) | (Float(y), Int(x)) => *x as f64 == *y,
            (Str(x), Str(y)) => x == y,
            (List(xs), List(ys)) | (Tuple(xs), Tuple(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .all(|(x, y)| self.value_eq_inner(*x, *y, visiting))
            }
            (Set(xs), Set(ys)) => {
                xs.len() == ys.len()
                    && xs.iter().all(|x| {
                        ys.iter().any(|y| self.value_eq_inner(*x, *y, visiting))
                    })
            }
            (Dict(xs), Dict(ys)) => {
                xs.len() == ys.len()
                    && xs.iter().all(|(kx, vx)| {
                        ys.iter().any(|(ky, vy)| {
                            self.value_eq_inner(*kx, *ky, visiting)
                                && self.value_eq_inner(*vx, *vy, visiting)
                        })
                    })
            }
            (NdArray(xs), NdArray(ys)) => xs == ys,
            _ => false,
        };
        visiting.remove(&(a, b));
        result
    }

    fn value_cmp(&mut self, a: ObjId, b: ObjId) -> Result<std::cmp::Ordering, RunError> {
        use ObjKind::*;
        match (self.heap.kind(a).clone(), self.heap.kind(b).clone()) {
            (Int(x), Int(y)) => Ok(x.cmp(&y)),
            (Str(x), Str(y)) => Ok(x.cmp(&y)),
            (List(xs), List(ys)) => {
                for (x, y) in xs.iter().zip(&ys) {
                    let ord = self.value_cmp(*x, *y)?;
                    if ord != std::cmp::Ordering::Equal {
                        return Ok(ord);
                    }
                }
                Ok(xs.len().cmp(&ys.len()))
            }
            (lk, rk) if lk.is_numeric() && rk.is_numeric() => {
                let x = self.expect_float(a)?;
                let y = self.expect_float(b)?;
                Ok(x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal))
            }
            (lk, rk) => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("cannot order {} and {}", lk.type_tag(), rk.type_tag()),
            )),
        }
    }

    fn contains(&mut self, container: ObjId, item: ObjId) -> Result<bool, RunError> {
        match self.heap.kind(container).clone() {
            ObjKind::List(items) | ObjKind::Tuple(items) | ObjKind::Set(items) => {
                Ok(items.iter().any(|i| self.value_eq(*i, item)))
            }
            ObjKind::Dict(pairs) => Ok(pairs.iter().any(|(k, _)| self.value_eq(*k, item))),
            ObjKind::Str(s) => {
                let sub = self.expect_str(item)?;
                Ok(s.contains(sub))
            }
            ObjKind::NdArray(values) => {
                let v = self.expect_float(item)?;
                Ok(values.contains(&v))
            }
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("argument of type {} is not iterable", other.type_tag()),
            )),
        }
    }

    /// Python truthiness. Arrays and frames raise (as NumPy/pandas do).
    pub fn truthy(&self, v: ObjId) -> Result<bool, RunError> {
        Ok(match self.heap.kind(v) {
            ObjKind::None => false,
            ObjKind::Bool(b) => *b,
            ObjKind::Int(x) => *x != 0,
            ObjKind::Float(x) => *x != 0.0,
            ObjKind::Str(s) => !s.is_empty(),
            ObjKind::List(xs) | ObjKind::Tuple(xs) | ObjKind::Set(xs) => !xs.is_empty(),
            ObjKind::Dict(ps) => !ps.is_empty(),
            ObjKind::NdArray(_) | ObjKind::DataFrame(_) => {
                return Err(RunError::new(
                    RunErrorKind::ValueError,
                    "truth value of an array is ambiguous",
                ))
            }
            _ => true,
        })
    }

    /// Materialize an iterable into a vector of items (what `for` walks).
    pub fn iterate(&mut self, v: ObjId) -> Result<Vec<ObjId>, RunError> {
        match self.heap.kind(v).clone() {
            ObjKind::List(items) | ObjKind::Tuple(items) | ObjKind::Set(items) => Ok(items),
            ObjKind::Dict(pairs) => Ok(pairs.iter().map(|(k, _)| *k).collect()),
            ObjKind::Str(s) => Ok(s
                .chars()
                .map(|c| self.heap.alloc(ObjKind::Str(c.to_string())))
                .collect()),
            ObjKind::NdArray(values) => Ok(values
                .iter()
                .map(|x| self.heap.alloc(ObjKind::Float(*x)))
                .collect()),
            ObjKind::Series { values, .. } => self.iterate(values),
            ObjKind::DataFrame(cols) => Ok(cols
                .iter()
                .map(|(n, _)| self.heap.alloc(ObjKind::Str(n.clone())))
                .collect()),
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("{} object is not iterable", other.type_tag()),
            )),
        }
    }

    /// Length of a sequence-like object, if it has one.
    pub fn sequence_len(&self, v: ObjId) -> Option<usize> {
        match self.heap.kind(v) {
            ObjKind::List(xs) | ObjKind::Tuple(xs) | ObjKind::Set(xs) => Some(xs.len()),
            ObjKind::Dict(ps) => Some(ps.len()),
            ObjKind::Str(s) => Some(s.chars().count()),
            ObjKind::NdArray(vs) => Some(vs.len()),
            ObjKind::Series { values, .. } => self.sequence_len(*values),
            ObjKind::DataFrame(cols) => cols.first().and_then(|(_, c)| self.sequence_len(*c)),
            _ => None,
        }
    }

    fn resolve_index(&mut self, index: ObjId, len: usize) -> Result<usize, RunError> {
        let i = self.expect_int(index)?;
        let idx = if i < 0 { len as i64 + i } else { i };
        if idx < 0 || idx as usize >= len {
            return Err(RunError::new(
                RunErrorKind::IndexError,
                format!("index {i} out of range for length {len}"),
            ));
        }
        Ok(idx as usize)
    }

    fn find_dict_slot(&mut self, pairs: &[(ObjId, ObjId)], key: ObjId) -> Result<Option<usize>, RunError> {
        Ok(pairs.iter().position(|(k, _)| self.value_eq(*k, key)))
    }

    /// Coerce to i64 (ints and bools).
    pub fn expect_int(&self, v: ObjId) -> Result<i64, RunError> {
        match self.heap.kind(v) {
            ObjKind::Int(x) => Ok(*x),
            ObjKind::Bool(b) => Ok(*b as i64),
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("expected int, got {}", other.type_tag()),
            )),
        }
    }

    /// Coerce to f64 (ints, floats, bools).
    pub fn expect_float(&self, v: ObjId) -> Result<f64, RunError> {
        match self.heap.kind(v) {
            ObjKind::Int(x) => Ok(*x as f64),
            ObjKind::Float(x) => Ok(*x),
            ObjKind::Bool(b) => Ok(*b as i64 as f64),
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("expected number, got {}", other.type_tag()),
            )),
        }
    }

    /// Borrow a string value.
    pub fn expect_str(&self, v: ObjId) -> Result<&str, RunError> {
        match self.heap.kind(v) {
            ObjKind::Str(s) => Ok(s),
            other => Err(RunError::new(
                RunErrorKind::TypeError,
                format!("expected str, got {}", other.type_tag()),
            )),
        }
    }
}

trait NumericTag {
    fn is_numeric(&self) -> bool;
    fn is_array(&self) -> bool;
    fn is_numeric_or_array(&self) -> bool;
}

impl NumericTag for ObjKind {
    fn is_numeric(&self) -> bool {
        matches!(self, ObjKind::Int(_) | ObjKind::Float(_) | ObjKind::Bool(_))
    }
    fn is_array(&self) -> bool {
        matches!(self, ObjKind::NdArray(_))
    }
    fn is_numeric_or_array(&self) -> bool {
        self.is_numeric() || self.is_array()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> String {
        let mut i = Interp::new();
        let out = i.run_cell(src).expect("parses");
        if let Some(e) = out.error {
            panic!("cell failed: {e}");
        }
        out.value_repr.unwrap_or_default()
    }

    fn run_err(src: &str) -> RunError {
        let mut i = Interp::new();
        let out = i.run_cell(src).expect("parses");
        out.error.expect("cell should raise")
    }

    #[test]
    fn while_break_continue() {
        assert_eq!(
            eval("s = 0\nk = 0\nwhile True:\n    k += 1\n    if k > 10:\n        break\n    if k % 2 == 0:\n        continue\n    s += k\ns\n"),
            "25" // 1+3+5+7+9
        );
    }

    #[test]
    fn nested_loops_and_else_chains() {
        assert_eq!(
            eval("grid = 0\nfor a in range(4):\n    for b in range(4):\n        if a == b:\n            grid += 10\n        elif a < b:\n            grid += 1\n        else:\n            grid += 0\ngrid\n"),
            "46" // 4*10 + 6*1
        );
    }

    #[test]
    fn functions_locals_do_not_leak() {
        let mut i = Interp::new();
        let out = i
            .run_cell("def f(x):\n    local_only = x * 2\n    return local_only\ny = f(21)\n")
            .expect("parses");
        assert!(out.error.is_none());
        assert!(i.globals.contains("y"));
        assert!(!i.globals.contains("local_only"), "locals must not leak");
        assert!(!i.globals.contains("x"));
    }

    #[test]
    fn global_statement_writes_globals() {
        assert_eq!(
            eval("counter = 0\ndef bump():\n    global counter\n    counter += 1\nbump()\nbump()\ncounter\n"),
            "2"
        );
    }

    #[test]
    fn functions_read_globals_without_declaration() {
        assert_eq!(
            eval("base = 100\ndef shifted(x):\n    return base + x\nshifted(5)\n"),
            "105"
        );
    }

    #[test]
    fn recursion_works_and_is_bounded() {
        assert_eq!(
            eval("def fact(n):\n    if n <= 1:\n        return 1\n    return n * fact(n - 1)\nfact(10)\n"),
            "3628800"
        );
        let e = run_err("def boom(n):\n    return boom(n + 1)\nboom(0)\n");
        assert_eq!(e.kind, RunErrorKind::LimitError);
    }

    #[test]
    fn error_kinds_are_pythonic() {
        assert_eq!(run_err("missing\n").kind, RunErrorKind::NameError);
        assert_eq!(run_err("1 + 'a'\n").kind, RunErrorKind::TypeError);
        assert_eq!(run_err("[1][5]\n").kind, RunErrorKind::IndexError);
        assert_eq!(run_err("{'a': 1}['b']\n").kind, RunErrorKind::KeyError);
        assert_eq!(run_err("1 / 0\n").kind, RunErrorKind::ValueError);
        assert_eq!(run_err("x = Object()\nx.nope\n").kind, RunErrorKind::AttributeError);
    }

    #[test]
    fn mutations_before_a_raise_persist() {
        let mut i = Interp::new();
        let out = i.run_cell("ls = []\nls.append(1)\nboom()\nls.append(2)\n").expect("parses");
        assert!(out.error.is_some());
        let ls = i.globals.peek("ls").expect("bound before the raise");
        assert_eq!(i.heap.children(ls).len(), 1, "first append persisted, second never ran");
    }

    #[test]
    fn short_circuit_evaluation() {
        // The right operand must not be evaluated when short-circuited.
        assert_eq!(eval("x = 0\nr = False and missing_name\nr\n"), "False");
        assert_eq!(eval("r = True or missing_name\nr\n"), "True");
        // Python returns the deciding operand, not a bool.
        assert_eq!(eval("[] or 'fallback'\n"), "'fallback'");
        assert_eq!(eval("'first' and 'second'\n"), "'second'");
    }

    #[test]
    fn chained_comparison_evaluates_middles_once() {
        assert_eq!(eval("1 < 2 < 3\n"), "True");
        assert_eq!(eval("1 < 2 > 3\n"), "False");
        assert_eq!(eval("'a' in 'cat' in ['cat']\n"), "True"); // both links hold
    }

    #[test]
    fn temp_namespace_runs_are_isolated() {
        let mut i = Interp::new();
        i.run_cell("keep = 'session'\n").expect("runs");
        let obj = i.globals.peek("keep").expect("bound");
        let result = i
            .run_cell_in_temp_namespace("derived = seed * 2\n", vec![("seed".into(), obj)])
            .err();
        // `seed * 2` on a string: 'sessionsession' — no error expected...
        assert!(result.is_none() || result.is_some());
        // The session namespace is untouched either way.
        assert_eq!(i.globals.len(), 1);
        assert!(i.globals.contains("keep"));
        // And tracking in the session scope still works afterwards.
        let out = i.run_cell("keep2 = keep\n").expect("runs");
        assert!(out.access.gets.contains("keep"));
    }

    #[test]
    fn iteration_budget_stops_runaway_cells() {
        let mut i = Interp::new();
        i.set_iteration_budget(10_000);
        let out = i.run_cell("k = 0\nwhile True:\n    k += 1\n").expect("parses");
        let e = out.error.expect("must be stopped");
        assert_eq!(e.kind, RunErrorKind::LimitError);
    }

    #[test]
    fn augmented_assign_on_list_is_in_place() {
        assert_eq!(
            eval("a = [1]\nb = a\na += [2, 3]\nid(a) == id(b)\n"),
            "True"
        );
        assert_eq!(eval("a = [1]\nb = a\na += [2]\nlen(b)\n"), "2");
        // But += on an int rebinds.
        assert_eq!(eval("x = 1\ny = x\nx += 1\ny\n"), "1");
    }

    #[test]
    fn value_equality_is_deep() {
        assert_eq!(eval("[1, [2, 3]] == [1, [2, 3]]\n"), "True");
        assert_eq!(eval("{'a': [1]} == {'a': [1]}\n"), "True");
        assert_eq!(eval("{1, 2} == {2, 1}\n"), "True");
        assert_eq!(eval("(1, 2) == (1, 3)\n"), "False");
        assert_eq!(eval("1 == 1.0\n"), "True");
    }

    #[test]
    fn rng_reseeding_reproduces() {
        let mut i = Interp::new();
        i.set_rng_seed(1234);
        i.run_cell("a = randn(8)\n").expect("runs");
        i.set_rng_seed(1234);
        i.run_cell("b = randn(8)\n").expect("runs");
        let a = i.globals.peek("a").expect("a");
        let b = i.globals.peek("b").expect("b");
        assert!(i.value_eq(a, b), "same seed, same draw");
    }
}
