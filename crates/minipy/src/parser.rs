//! Recursive-descent parser for minipy.

use crate::ast::{BinOp, BoolOpKind, CmpOp, Expr, Stmt, Target, UnaryOp};
use crate::error::{RunError, RunErrorKind};
use crate::lexer::tokenize;
use crate::token::{Kw, Op, TokKind, Token};

/// Parser over a token stream. Construct with [`Parser::new`] and consume
/// with [`Parser::parse_program`].
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    lines: Vec<String>,
    max_line: u32,
}

impl Parser {
    /// Lex `src` and prepare to parse it.
    pub fn new(src: &str) -> Result<Self, RunError> {
        Ok(Parser {
            toks: tokenize(src)?,
            pos: 0,
            lines: src.lines().map(|l| l.to_string()).collect(),
            max_line: 0,
        })
    }

    /// Parse the whole input as a statement sequence.
    pub fn parse_program(mut self) -> Result<Vec<Stmt>, RunError> {
        let mut stmts = Vec::new();
        while !self.check(&TokKind::Eof) {
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    // ------------------------------------------------------------------
    // token plumbing

    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn advance(&mut self) -> TokKind {
        let tok = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        self.max_line = self.max_line.max(tok.line);
        tok.kind
    }

    fn check(&self, kind: &TokKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokKind, what: &str) -> Result<(), RunError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {}", self.peek())))
        }
    }

    fn eat_op(&mut self, op: Op) -> bool {
        self.eat(&TokKind::Op(op))
    }

    fn expect_op(&mut self, op: Op, what: &str) -> Result<(), RunError> {
        self.expect(&TokKind::Op(op), what)
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&TokKind::Keyword(kw))
    }

    fn err(&self, msg: impl Into<String>) -> RunError {
        RunError::new(RunErrorKind::SyntaxError, msg).at_line(self.line())
    }

    fn ident(&mut self) -> Result<String, RunError> {
        match self.peek().clone() {
            TokKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // statements

    fn statement(&mut self) -> Result<Stmt, RunError> {
        match self.peek().clone() {
            TokKind::Keyword(Kw::If) => self.if_stmt(),
            TokKind::Keyword(Kw::While) => self.while_stmt(),
            TokKind::Keyword(Kw::For) => self.for_stmt(),
            TokKind::Keyword(Kw::Def) => self.def_stmt(),
            _ => {
                let stmt = self.simple_stmt()?;
                self.expect(&TokKind::Newline, "end of statement")?;
                Ok(stmt)
            }
        }
    }

    fn simple_stmt(&mut self) -> Result<Stmt, RunError> {
        if self.eat_kw(Kw::Pass) {
            return Ok(Stmt::Pass);
        }
        if self.eat_kw(Kw::Break) {
            return Ok(Stmt::Break);
        }
        if self.eat_kw(Kw::Continue) {
            return Ok(Stmt::Continue);
        }
        if self.eat_kw(Kw::Return) {
            if self.check(&TokKind::Newline) {
                return Ok(Stmt::Return(None));
            }
            return Ok(Stmt::Return(Some(self.expression()?)));
        }
        if self.eat_kw(Kw::Global) {
            let mut names = vec![self.ident()?];
            while self.eat_op(Op::Comma) {
                names.push(self.ident()?);
            }
            return Ok(Stmt::Global(names));
        }
        if self.eat_kw(Kw::Del) {
            let mut targets = vec![self.target()?];
            while self.eat_op(Op::Comma) {
                targets.push(self.target()?);
            }
            return Ok(Stmt::Del(targets));
        }
        // expression, assignment, or augmented assignment
        let expr = self.expression()?;
        let aug = match self.peek() {
            TokKind::Op(Op::PlusEq) => Some(BinOp::Add),
            TokKind::Op(Op::MinusEq) => Some(BinOp::Sub),
            TokKind::Op(Op::StarEq) => Some(BinOp::Mul),
            TokKind::Op(Op::SlashEq) => Some(BinOp::Div),
            _ => None,
        };
        if let Some(op) = aug {
            self.advance();
            let value = self.expression()?;
            let target = self.expr_to_target(expr)?;
            return Ok(Stmt::AugAssign { target, op, value });
        }
        if self.eat_op(Op::Eq) {
            let value = self.expression()?;
            let target = self.expr_to_target(expr)?;
            return Ok(Stmt::Assign { target, value });
        }
        Ok(Stmt::Expr(expr))
    }

    fn target(&mut self) -> Result<Target, RunError> {
        let expr = self.postfix_expr()?;
        self.expr_to_target(expr)
    }

    fn expr_to_target(&self, expr: Expr) -> Result<Target, RunError> {
        match expr {
            Expr::Name(n) => Ok(Target::Name(n)),
            Expr::Attr(obj, attr) => Ok(Target::Attr(obj, attr)),
            Expr::Index(obj, idx) => Ok(Target::Index(obj, idx)),
            other => Err(self.err(format!("cannot assign to {other:?}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, RunError> {
        self.expect(&TokKind::Newline, "newline before block")?;
        self.expect(&TokKind::Indent, "indented block")?;
        let mut body = Vec::new();
        while !self.check(&TokKind::Dedent) && !self.check(&TokKind::Eof) {
            body.push(self.statement()?);
        }
        self.expect(&TokKind::Dedent, "dedent")?;
        Ok(body)
    }

    fn if_stmt(&mut self) -> Result<Stmt, RunError> {
        self.advance(); // `if`
        let mut arms = Vec::new();
        let cond = self.expression()?;
        self.expect_op(Op::Colon, "`:` after if condition")?;
        arms.push((cond, self.block()?));
        let mut orelse = Vec::new();
        loop {
            if self.eat_kw(Kw::Elif) {
                let cond = self.expression()?;
                self.expect_op(Op::Colon, "`:` after elif condition")?;
                arms.push((cond, self.block()?));
            } else if self.eat_kw(Kw::Else) {
                self.expect_op(Op::Colon, "`:` after else")?;
                orelse = self.block()?;
                break;
            } else {
                break;
            }
        }
        Ok(Stmt::If { arms, orelse })
    }

    fn while_stmt(&mut self) -> Result<Stmt, RunError> {
        self.advance(); // `while`
        let cond = self.expression()?;
        self.expect_op(Op::Colon, "`:` after while condition")?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt, RunError> {
        self.advance(); // `for`
        let var = self.ident()?;
        self.expect(&TokKind::Keyword(Kw::In), "`in`")?;
        let iter = self.expression()?;
        self.expect_op(Op::Colon, "`:` after for header")?;
        let body = self.block()?;
        Ok(Stmt::For { var, iter, body })
    }

    fn def_stmt(&mut self) -> Result<Stmt, RunError> {
        let start_line = self.line();
        self.advance(); // `def`
        let name = self.ident()?;
        self.expect_op(Op::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.check(&TokKind::Op(Op::RParen)) {
            params.push(self.ident()?);
            while self.eat_op(Op::Comma) {
                params.push(self.ident()?);
            }
        }
        self.expect_op(Op::RParen, "`)`")?;
        self.expect_op(Op::Colon, "`:` after def header")?;
        self.max_line = start_line;
        let body = self.block()?;
        let end_line = self.max_line;
        let source = self.extract_source(start_line, end_line);
        Ok(Stmt::FuncDef {
            name,
            params,
            body,
            source,
        })
    }

    /// Slice the original source lines of a definition, stripping the common
    /// leading indentation so the text re-parses standalone (needed when a
    /// nested `def`'s source is pickled).
    fn extract_source(&self, start_line: u32, end_line: u32) -> String {
        let lo = (start_line as usize).saturating_sub(1);
        let hi = (end_line as usize).min(self.lines.len());
        let slice = &self.lines[lo..hi];
        let indent = slice
            .iter()
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.len() - l.trim_start().len())
            .min()
            .unwrap_or(0);
        let mut out = String::new();
        for l in slice {
            if l.len() >= indent {
                out.push_str(&l[indent..]);
            } else {
                out.push_str(l.trim_start());
            }
            out.push('\n');
        }
        out
    }

    // ------------------------------------------------------------------
    // expressions (precedence climbing, loosest first)

    fn expression(&mut self) -> Result<Expr, RunError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, RunError> {
        let first = self.and_expr()?;
        if !self.check(&TokKind::Keyword(Kw::Or)) {
            return Ok(first);
        }
        let mut operands = vec![first];
        while self.eat_kw(Kw::Or) {
            operands.push(self.and_expr()?);
        }
        Ok(Expr::BoolOp {
            op: BoolOpKind::Or,
            operands,
        })
    }

    fn and_expr(&mut self) -> Result<Expr, RunError> {
        let first = self.not_expr()?;
        if !self.check(&TokKind::Keyword(Kw::And)) {
            return Ok(first);
        }
        let mut operands = vec![first];
        while self.eat_kw(Kw::And) {
            operands.push(self.not_expr()?);
        }
        Ok(Expr::BoolOp {
            op: BoolOpKind::And,
            operands,
        })
    }

    fn not_expr(&mut self) -> Result<Expr, RunError> {
        if self.eat_kw(Kw::Not) {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, RunError> {
        let left = self.add_expr()?;
        let mut rest = Vec::new();
        loop {
            let op = match self.peek() {
                TokKind::Op(Op::EqEq) => CmpOp::Eq,
                TokKind::Op(Op::NotEq) => CmpOp::Ne,
                TokKind::Op(Op::Lt) => CmpOp::Lt,
                TokKind::Op(Op::LtEq) => CmpOp::Le,
                TokKind::Op(Op::Gt) => CmpOp::Gt,
                TokKind::Op(Op::GtEq) => CmpOp::Ge,
                TokKind::Keyword(Kw::In) => CmpOp::In,
                TokKind::Keyword(Kw::Not) => {
                    // `not in`
                    if self.toks.get(self.pos + 1).map(|t| &t.kind)
                        == Some(&TokKind::Keyword(Kw::In))
                    {
                        self.advance();
                        CmpOp::NotIn
                    } else {
                        break;
                    }
                }
                _ => break,
            };
            self.advance();
            rest.push((op, self.add_expr()?));
        }
        if rest.is_empty() {
            Ok(left)
        } else {
            Ok(Expr::Compare {
                left: Box::new(left),
                rest,
            })
        }
    }

    fn add_expr(&mut self) -> Result<Expr, RunError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokKind::Op(Op::Plus) => BinOp::Add,
                TokKind::Op(Op::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.mul_expr()?;
            left = Expr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, RunError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokKind::Op(Op::Star) => BinOp::Mul,
                TokKind::Op(Op::Slash) => BinOp::Div,
                TokKind::Op(Op::DoubleSlash) => BinOp::FloorDiv,
                TokKind::Op(Op::Percent) => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary_expr()?;
            left = Expr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, RunError> {
        if self.eat_op(Op::Minus) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.power_expr()
    }

    fn power_expr(&mut self) -> Result<Expr, RunError> {
        let base = self.postfix_expr()?;
        if self.eat_op(Op::DoubleStar) {
            let exp = self.unary_expr()?; // right-associative
            return Ok(Expr::BinOp {
                op: BinOp::Pow,
                left: Box::new(base),
                right: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn postfix_expr(&mut self) -> Result<Expr, RunError> {
        let mut expr = self.atom()?;
        loop {
            if self.eat_op(Op::Dot) {
                let attr = self.ident()?;
                expr = Expr::Attr(Box::new(expr), attr);
            } else if self.eat_op(Op::LParen) {
                let (args, kwargs) = self.call_args()?;
                expr = Expr::Call {
                    func: Box::new(expr),
                    args,
                    kwargs,
                };
            } else if self.eat_op(Op::LBracket) {
                let idx = self.subscript()?;
                self.expect_op(Op::RBracket, "`]`")?;
                expr = Expr::Index(Box::new(expr), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn subscript(&mut self) -> Result<Expr, RunError> {
        // `a[:hi]`, `a[lo:]`, `a[lo:hi]`, `a[:]`, or a plain index.
        if self.eat_op(Op::Colon) {
            let hi = if self.check(&TokKind::Op(Op::RBracket)) {
                None
            } else {
                Some(Box::new(self.expression()?))
            };
            return Ok(Expr::Slice(None, hi));
        }
        let lo = self.expression()?;
        if self.eat_op(Op::Colon) {
            let hi = if self.check(&TokKind::Op(Op::RBracket)) {
                None
            } else {
                Some(Box::new(self.expression()?))
            };
            return Ok(Expr::Slice(Some(Box::new(lo)), hi));
        }
        Ok(lo)
    }

    fn call_args(&mut self) -> Result<(Vec<Expr>, Vec<(String, Expr)>), RunError> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        if !self.check(&TokKind::Op(Op::RParen)) {
            loop {
                // kwarg if `ident =` (and not `==`)
                if let TokKind::Ident(name) = self.peek().clone() {
                    if self.toks.get(self.pos + 1).map(|t| &t.kind) == Some(&TokKind::Op(Op::Eq)) {
                        self.advance();
                        self.advance();
                        kwargs.push((name, self.expression()?));
                        if self.eat_op(Op::Comma) {
                            continue;
                        }
                        break;
                    }
                }
                if !kwargs.is_empty() {
                    return Err(self.err("positional argument after keyword argument"));
                }
                args.push(self.expression()?);
                if self.eat_op(Op::Comma) {
                    continue;
                }
                break;
            }
        }
        self.expect_op(Op::RParen, "`)`")?;
        Ok((args, kwargs))
    }

    fn atom(&mut self) -> Result<Expr, RunError> {
        match self.peek().clone() {
            TokKind::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            TokKind::Float(v) => {
                self.advance();
                Ok(Expr::Float(v))
            }
            TokKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokKind::Keyword(Kw::True) => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokKind::Keyword(Kw::False) => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokKind::Keyword(Kw::None) => {
                self.advance();
                Ok(Expr::None)
            }
            TokKind::Ident(name) => {
                self.advance();
                Ok(Expr::Name(name))
            }
            TokKind::Op(Op::LParen) => {
                self.advance();
                if self.eat_op(Op::RParen) {
                    return Ok(Expr::Tuple(Vec::new()));
                }
                let first = self.expression()?;
                if self.eat_op(Op::Comma) {
                    let mut items = vec![first];
                    while !self.check(&TokKind::Op(Op::RParen)) {
                        items.push(self.expression()?);
                        if !self.eat_op(Op::Comma) {
                            break;
                        }
                    }
                    self.expect_op(Op::RParen, "`)`")?;
                    return Ok(Expr::Tuple(items));
                }
                self.expect_op(Op::RParen, "`)`")?;
                Ok(first)
            }
            TokKind::Op(Op::LBracket) => {
                self.advance();
                let mut items = Vec::new();
                while !self.check(&TokKind::Op(Op::RBracket)) {
                    items.push(self.expression()?);
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RBracket, "`]`")?;
                Ok(Expr::List(items))
            }
            TokKind::Op(Op::LBrace) => {
                self.advance();
                if self.eat_op(Op::RBrace) {
                    return Ok(Expr::Dict(Vec::new()));
                }
                let first = self.expression()?;
                if self.eat_op(Op::Colon) {
                    // dict
                    let v = self.expression()?;
                    let mut pairs = vec![(first, v)];
                    while self.eat_op(Op::Comma) {
                        if self.check(&TokKind::Op(Op::RBrace)) {
                            break;
                        }
                        let k = self.expression()?;
                        self.expect_op(Op::Colon, "`:` in dict literal")?;
                        let v = self.expression()?;
                        pairs.push((k, v));
                    }
                    self.expect_op(Op::RBrace, "`}`")?;
                    Ok(Expr::Dict(pairs))
                } else {
                    // set
                    let mut items = vec![first];
                    while self.eat_op(Op::Comma) {
                        if self.check(&TokKind::Op(Op::RBrace)) {
                            break;
                        }
                        items.push(self.expression()?);
                    }
                    self.expect_op(Op::RBrace, "`}`")?;
                    Ok(Expr::Set(items))
                }
            }
            other => Err(self.err(format!("unexpected {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<Stmt> {
        Parser::new(src).expect("lexes").parse_program().expect("parses")
    }

    #[test]
    fn assignment_and_expression() {
        let p = parse("x = 1 + 2 * 3\nx\n");
        assert_eq!(p.len(), 2);
        match &p[0] {
            Stmt::Assign { target: Target::Name(n), value } => {
                assert_eq!(n, "x");
                // 1 + (2*3) by precedence
                match value {
                    Expr::BinOp { op: BinOp::Add, right, .. } => {
                        assert!(matches!(**right, Expr::BinOp { op: BinOp::Mul, .. }));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_and_subscript_targets() {
        let p = parse("a.b = 1\nc[0] = 2\n");
        assert!(matches!(&p[0], Stmt::Assign { target: Target::Attr(..), .. }));
        assert!(matches!(&p[1], Stmt::Assign { target: Target::Index(..), .. }));
    }

    #[test]
    fn augmented_assignment() {
        let p = parse("x += 1\na[i] -= 2\n");
        assert!(matches!(&p[0], Stmt::AugAssign { op: BinOp::Add, .. }));
        assert!(matches!(&p[1], Stmt::AugAssign { op: BinOp::Sub, target: Target::Index(..), .. }));
    }

    #[test]
    fn if_elif_else() {
        let p = parse("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        match &p[0] {
            Stmt::If { arms, orelse } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(orelse.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loops() {
        let p = parse("for i in range(10):\n    s += i\nwhile s > 0:\n    s -= 1\n");
        assert!(matches!(&p[0], Stmt::For { .. }));
        assert!(matches!(&p[1], Stmt::While { .. }));
    }

    #[test]
    fn function_definition_with_source() {
        let src = "def f(a, b):\n    return a + b\n";
        let p = parse(src);
        match &p[0] {
            Stmt::FuncDef { name, params, body, source } => {
                assert_eq!(name, "f");
                assert_eq!(params, &["a".to_string(), "b".to_string()]);
                assert_eq!(body.len(), 1);
                assert_eq!(source, src);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_def_source_is_dedented() {
        let src = "if x:\n    def g():\n        return 1\n";
        let p = parse(src);
        if let Stmt::If { arms, .. } = &p[0] {
            if let Stmt::FuncDef { source, .. } = &arms[0].1[0] {
                assert!(source.starts_with("def g():"));
                // It must re-parse standalone.
                assert!(Parser::new(source).expect("lexes").parse_program().is_ok());
                return;
            }
        }
        panic!("expected nested def");
    }

    #[test]
    fn calls_with_kwargs() {
        let p = parse("m = fit(df, k=3, seed=42)\n");
        if let Stmt::Assign { value: Expr::Call { args, kwargs, .. }, .. } = &p[0] {
            assert_eq!(args.len(), 1);
            assert_eq!(kwargs.len(), 2);
            assert_eq!(kwargs[0].0, "k");
        } else {
            panic!("expected call");
        }
    }

    #[test]
    fn method_chain_and_subscript() {
        let p = parse("y = df.col('a')[0]\n");
        if let Stmt::Assign { value, .. } = &p[0] {
            assert!(matches!(value, Expr::Index(..)));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn slices() {
        let p = parse("a[:10]\na[2:]\na[1:5]\na[:]\n");
        for stmt in &p {
            if let Stmt::Expr(Expr::Index(_, idx)) = stmt {
                assert!(matches!(**idx, Expr::Slice(..)));
            } else {
                panic!("expected subscript expr");
            }
        }
    }

    #[test]
    fn comparisons_chain() {
        let p = parse("ok = 0 <= x < 10\n");
        if let Stmt::Assign { value: Expr::Compare { rest, .. }, .. } = &p[0] {
            assert_eq!(rest.len(), 2);
        } else {
            panic!("expected chained compare");
        }
    }

    #[test]
    fn in_and_not_in() {
        let p = parse("a = x in ls\nb = x not in ls\n");
        if let Stmt::Assign { value: Expr::Compare { rest, .. }, .. } = &p[0] {
            assert_eq!(rest[0].0, CmpOp::In);
        } else {
            panic!();
        }
        if let Stmt::Assign { value: Expr::Compare { rest, .. }, .. } = &p[1] {
            assert_eq!(rest[0].0, CmpOp::NotIn);
        } else {
            panic!();
        }
    }

    #[test]
    fn collection_literals() {
        let p = parse("a = [1, 2]\nb = (1, 2)\nc = {'k': 1}\nd = {1, 2}\ne = {}\n");
        assert!(matches!(&p[0], Stmt::Assign { value: Expr::List(v), .. } if v.len() == 2));
        assert!(matches!(&p[1], Stmt::Assign { value: Expr::Tuple(v), .. } if v.len() == 2));
        assert!(matches!(&p[2], Stmt::Assign { value: Expr::Dict(v), .. } if v.len() == 1));
        assert!(matches!(&p[3], Stmt::Assign { value: Expr::Set(v), .. } if v.len() == 2));
        assert!(matches!(&p[4], Stmt::Assign { value: Expr::Dict(v), .. } if v.is_empty()));
    }

    #[test]
    fn del_and_global() {
        let p = parse("del x, y[0]\nglobal a, b\n");
        assert!(matches!(&p[0], Stmt::Del(ts) if ts.len() == 2));
        assert!(matches!(&p[1], Stmt::Global(ns) if ns.len() == 2));
    }

    #[test]
    fn boolean_operators_short_circuit_shape() {
        let p = parse("r = a and b or not c\n");
        if let Stmt::Assign { value: Expr::BoolOp { op: BoolOpKind::Or, operands }, .. } = &p[0] {
            assert_eq!(operands.len(), 2);
        } else {
            panic!("expected or at top");
        }
    }

    #[test]
    fn power_is_right_associative() {
        let p = parse("x = 2 ** 3 ** 2\n");
        if let Stmt::Assign { value: Expr::BinOp { op: BinOp::Pow, right, .. }, .. } = &p[0] {
            assert!(matches!(**right, Expr::BinOp { op: BinOp::Pow, .. }));
        } else {
            panic!("expected pow chain");
        }
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(Parser::new("x = \n").expect("lexes").parse_program().is_err());
        assert!(Parser::new("1 = x\n").expect("lexes").parse_program().is_err());
        assert!(Parser::new("f(a=1, b)\n").expect("lexes").parse_program().is_err());
    }

    #[test]
    fn multiline_bracket_expression() {
        let p = parse("x = f(1,\n      2,\n      3)\n");
        assert_eq!(p.len(), 1);
    }
}
