//! # kishu-minipy — the cell language of the simulated notebook
//!
//! Kishu's algorithms are exercised by *cell executions*: arbitrary
//! Python code with loops, conditionals, user-defined functions that reach
//! into the global namespace, in-place mutation, and library calls. A
//! reproduction whose "cells" were hard-coded Rust closures could not
//! compare against provenance-based trackers (IPyFlow in Table 6 / Fig 17),
//! because those instrument the *program* — per statement, per symbol
//! resolution. So this crate implements a small Python-like language:
//!
//! * an indentation-aware [`lexer`] and recursive-descent [`parser`]
//!   producing a conventional [`ast`];
//! * a tree-walking [`interp`reter][interp] over the `kishu-kernel` heap,
//!   with Python reference semantics (assignment binds, mutation is
//!   in-place, arguments are references);
//! * global-name resolution routed through the kernel's **patched
//!   namespace**, so every cell's variable accesses are observed exactly as
//!   the paper's Fig 8 describes;
//! * an [`observer`] hook API (per-statement / per-name callbacks) that the
//!   IPyFlow-style baseline uses for live symbol resolution, paying the
//!   instrumentation cost the paper measures;
//! * extension points for the simulated library classes (`kishu-libsim`)
//!   to register constructors and methods.
//!
//! The language is deliberately small (no classes, imports, or
//! comprehensions) but covers every construct the paper's workload
//! characterization (§2.2) leans on.

pub mod ast;
pub mod builtins;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod methods;
pub mod observer;
pub mod parser;
pub mod repr;
pub mod token;
pub mod unparse;

pub use error::{RunError, RunErrorKind};
pub use interp::{CellOutcome, Interp};
pub use observer::ExecutionObserver;

/// Parse a whole program (sequence of statements), without running it.
pub fn parse_program(src: &str) -> Result<Vec<ast::Stmt>, RunError> {
    parser::Parser::new(src)?.parse_program()
}
