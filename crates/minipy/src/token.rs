//! Token vocabulary of the minipy lexer.

use std::fmt;

/// A lexical token, tagged with the 1-based source line it started on (used
/// for error messages and per-statement instrumentation labels).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is (and its payload, for literals/names).
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// Kinds of tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or non-keyword name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// A keyword (`def`, `if`, `for`, ...).
    Keyword(Kw),
    /// An operator or delimiter.
    Op(Op),
    /// Logical end of line (only emitted outside brackets).
    Newline,
    /// Increase of indentation depth (block start).
    Indent,
    /// Decrease of indentation depth (block end).
    Dedent,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Def,
    Return,
    If,
    Elif,
    Else,
    For,
    While,
    In,
    Not,
    And,
    Or,
    Del,
    True,
    False,
    None,
    Pass,
    Break,
    Continue,
    Global,
}

impl Kw {
    /// Keyword for an identifier string, if it is one.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "def" => Kw::Def,
            "return" => Kw::Return,
            "if" => Kw::If,
            "elif" => Kw::Elif,
            "else" => Kw::Else,
            "for" => Kw::For,
            "while" => Kw::While,
            "in" => Kw::In,
            "not" => Kw::Not,
            "and" => Kw::And,
            "or" => Kw::Or,
            "del" => Kw::Del,
            "True" => Kw::True,
            "False" => Kw::False,
            "None" => Kw::None,
            "pass" => Kw::Pass,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "global" => Kw::Global,
            _ => return None,
        })
    }
}

/// Operators and delimiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    DoubleSlash,
    Percent,
    Eq,       // =
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokKind::Int(v) => write!(f, "int `{v}`"),
            TokKind::Float(v) => write!(f, "float `{v}`"),
            TokKind::Str(_) => write!(f, "string literal"),
            TokKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokKind::Op(o) => write!(f, "`{o:?}`"),
            TokKind::Newline => write!(f, "newline"),
            TokKind::Indent => write!(f, "indent"),
            TokKind::Dedent => write!(f, "dedent"),
            TokKind::Eof => write!(f, "end of input"),
        }
    }
}
