//! Abstract syntax tree of minipy.

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Bare expression (its value becomes the cell output when last).
    Expr(Expr),
    /// `target = value` (also `a.b = v`, `a[i] = v`).
    Assign {
        /// Where the value is stored.
        target: Target,
        /// Right-hand side.
        value: Expr,
    },
    /// `target op= value`.
    AugAssign {
        /// Where the value is read and stored.
        target: Target,
        /// The arithmetic operator.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `del x`, `del a[i]`, `del a.b` (possibly several, comma-separated).
    Del(Vec<Target>),
    /// `if` / `elif` / `else` chain. Each arm is `(condition, body)`; the
    /// final `else` body, if present, is `orelse`.
    If {
        /// `(condition, body)` pairs for `if` and each `elif`.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body.
        orelse: Vec<Stmt>,
    },
    /// `while cond: body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for var in iter: body`.
    For {
        /// Loop variable name.
        var: String,
        /// Iterable expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `def name(params): body`. `source` is the exact `def` text, kept so
    /// function objects can be pickled by source (the cloudpickle strategy).
    FuncDef {
        /// Function name (bound in the enclosing scope).
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Vec<Stmt>,
        /// Reconstructed source text of the whole definition.
        source: String,
    },
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `global a, b` — subsequent stores to these names in the current
    /// function go to the global namespace.
    Global(Vec<String>),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Bare name.
    Name(String),
    /// `obj.attr`.
    Attr(Box<Expr>, String),
    /// `obj[index]`.
    Index(Box<Expr>, Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `None`.
    None,
    /// `True` / `False`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Name lookup.
    Name(String),
    /// `[a, b, c]`.
    List(Vec<Expr>),
    /// `(a, b)` — requires at least one comma in source.
    Tuple(Vec<Expr>),
    /// `{k: v, ...}`.
    Dict(Vec<(Expr, Expr)>),
    /// `{a, b}`.
    Set(Vec<Expr>),
    /// Binary arithmetic.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary `-x` or `not x`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Short-circuiting `and` / `or` over two or more operands.
    BoolOp {
        /// Which connective.
        op: BoolOpKind,
        /// Operands, left to right.
        operands: Vec<Expr>,
    },
    /// Chained comparison `a < b <= c`, `x in y`, `x not in y`.
    Compare {
        /// Leftmost operand.
        left: Box<Expr>,
        /// `(operator, operand)` pairs applied left to right.
        rest: Vec<(CmpOp, Expr)>,
    },
    /// `obj.attr`.
    Attr(Box<Expr>, String),
    /// `obj[index]` (index may be a [`Expr::Slice`]).
    Index(Box<Expr>, Box<Expr>),
    /// `lo:hi` inside a subscript. Either bound may be omitted.
    Slice(Option<Box<Expr>>, Option<Box<Expr>>),
    /// Function or method call. `func` is commonly `Name` (builtin or
    /// user function) or `Attr` (method call).
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division, always float)
    Div,
    /// `//` (floor division)
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `not x`
    Not,
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOpKind {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
}

impl Expr {
    /// All bare names *read* by this expression, in first-occurrence order.
    /// Used by the IPyFlow-style static analysis baseline.
    pub fn referenced_names(&self, out: &mut Vec<String>) {
        match self {
            Expr::Name(n)
                if !out.contains(n) => {
                    out.push(n.clone());
                }
            Expr::List(items) | Expr::Tuple(items) | Expr::Set(items) => {
                for e in items {
                    e.referenced_names(out);
                }
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    k.referenced_names(out);
                    v.referenced_names(out);
                }
            }
            Expr::BinOp { left, right, .. } => {
                left.referenced_names(out);
                right.referenced_names(out);
            }
            Expr::Unary { operand, .. } => operand.referenced_names(out),
            Expr::BoolOp { operands, .. } => {
                for e in operands {
                    e.referenced_names(out);
                }
            }
            Expr::Compare { left, rest } => {
                left.referenced_names(out);
                for (_, e) in rest {
                    e.referenced_names(out);
                }
            }
            Expr::Attr(obj, _) => obj.referenced_names(out),
            Expr::Index(obj, idx) => {
                obj.referenced_names(out);
                idx.referenced_names(out);
            }
            Expr::Slice(lo, hi) => {
                if let Some(e) = lo {
                    e.referenced_names(out);
                }
                if let Some(e) = hi {
                    e.referenced_names(out);
                }
            }
            Expr::Call { func, args, kwargs } => {
                func.referenced_names(out);
                for e in args {
                    e.referenced_names(out);
                }
                for (_, e) in kwargs {
                    e.referenced_names(out);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_names_dedup_in_order() {
        let e = Expr::BinOp {
            op: BinOp::Add,
            left: Box::new(Expr::Name("a".into())),
            right: Box::new(Expr::BinOp {
                op: BinOp::Mul,
                left: Box::new(Expr::Name("b".into())),
                right: Box::new(Expr::Name("a".into())),
            }),
        };
        let mut names = Vec::new();
        e.referenced_names(&mut names);
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }
}
