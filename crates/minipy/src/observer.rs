//! Execution observation hooks.
//!
//! Provenance-based lineage trackers (IPyFlow and kin, §2.4) work by
//! instrumenting the *program*: they see every executed statement and
//! resolve the symbols it touches at runtime. That is precisely the cost
//! model the paper's Table 6 / Fig 17 compare Kishu against, so the
//! interpreter exposes the same capability: any number of
//! [`ExecutionObserver`]s can be attached, and each is invoked synchronously
//! on every statement execution and every global name access. Kishu itself
//! attaches **no** observer — it only looks at the patched namespace after
//! the cell finishes — which is exactly why its overhead does not scale with
//! loop iteration counts.

use kishu_kernel::{Heap, ObjId};

use crate::ast::Stmt;

/// Callbacks invoked during cell execution. All methods have empty default
/// bodies so an observer implements only what it needs.
pub trait ExecutionObserver {
    /// Called immediately before each statement executes (including every
    /// loop iteration and every statement inside function bodies).
    fn on_stmt(&mut self, _heap: &Heap, _stmt: &Stmt) {}

    /// Called on every *global* name load. `obj` is the resolved binding
    /// (`None` if the name was unbound and the load will raise).
    fn on_name_load(&mut self, _heap: &Heap, _name: &str, _obj: Option<ObjId>) {}

    /// Called on every *global* name store.
    fn on_name_store(&mut self, _heap: &Heap, _name: &str, _obj: ObjId) {}

    /// Called on every *global* name deletion.
    fn on_name_delete(&mut self, _heap: &Heap, _name: &str) {}
}

/// A trivial observer that counts events; used by tests and as a cheap
/// instrumentation-cost probe.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingObserver {
    /// Statements executed.
    pub stmts: u64,
    /// Global name loads.
    pub loads: u64,
    /// Global name stores.
    pub stores: u64,
    /// Global name deletions.
    pub deletes: u64,
}

impl ExecutionObserver for CountingObserver {
    fn on_stmt(&mut self, _heap: &Heap, _stmt: &Stmt) {
        self.stmts += 1;
    }

    fn on_name_load(&mut self, _heap: &Heap, _name: &str, _obj: Option<ObjId>) {
        self.loads += 1;
    }

    fn on_name_store(&mut self, _heap: &Heap, _name: &str, _obj: ObjId) {
        self.stores += 1;
    }

    fn on_name_delete(&mut self, _heap: &Heap, _name: &str) {
        self.deletes += 1;
    }
}
