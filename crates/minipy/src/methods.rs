//! Built-in method dispatch for the kernel's object kinds.
//!
//! Mirrors the Python/pandas/NumPy methods the paper's workloads lean on.
//! In-place methods (`list.append`, `ser.replace`, `arr.fill`, ...) mutate
//! through [`Heap::modify`](kishu_kernel::Heap::modify), so they dirty pages and are visible to both
//! page-level and VarGraph-level delta detection — the contrast Fig 6
//! illustrates.

use kishu_kernel::{ObjId, ObjKind};

use crate::error::{RunError, RunErrorKind};
use crate::interp::Interp;
#[cfg(test)]
use crate::repr;

/// Dispatch `recv.method(args, kwargs)` over the built-in kinds.
pub fn dispatch(
    interp: &mut Interp,
    recv: ObjId,
    method: &str,
    args: &[ObjId],
    kwargs: &[(String, ObjId)],
) -> Result<ObjId, RunError> {
    let _ = kwargs;
    match interp.heap.kind(recv).clone() {
        ObjKind::List(items) => list_method(interp, recv, &items, method, args),
        ObjKind::Dict(pairs) => dict_method(interp, recv, &pairs, method, args),
        ObjKind::Set(items) => set_method(interp, recv, &items, method, args),
        ObjKind::Str(s) => str_method(interp, &s, method, args),
        ObjKind::NdArray(values) => ndarray_method(interp, recv, &values, method, args),
        ObjKind::Series { name, values } => series_method(interp, recv, &name, values, method, args),
        ObjKind::DataFrame(cols) => dataframe_method(interp, recv, &cols, method, args),
        ObjKind::Generator { token } => generator_method(interp, token, method),
        other => Err(no_method(other.type_tag(), method)),
    }
}

fn no_method(type_tag: &str, method: &str) -> RunError {
    RunError::new(
        RunErrorKind::AttributeError,
        format!("{type_tag} object has no method `{method}`"),
    )
}

fn arity(args: &[ObjId], n: usize, method: &str) -> Result<(), RunError> {
    if args.len() != n {
        return Err(RunError::new(
            RunErrorKind::TypeError,
            format!("{method}() takes {n} argument(s), got {}", args.len()),
        ));
    }
    Ok(())
}

fn none(interp: &mut Interp) -> ObjId {
    interp.heap.alloc(ObjKind::None)
}

// ----------------------------------------------------------------------
// list

fn list_method(
    interp: &mut Interp,
    recv: ObjId,
    items: &[ObjId],
    method: &str,
    args: &[ObjId],
) -> Result<ObjId, RunError> {
    match method {
        "append" => {
            arity(args, 1, method)?;
            let v = args[0];
            interp.heap.modify(recv, |k| {
                if let ObjKind::List(items) = k {
                    items.push(v);
                }
            });
            Ok(none(interp))
        }
        "extend" => {
            arity(args, 1, method)?;
            let extra = interp.iterate(args[0])?;
            interp.heap.modify(recv, |k| {
                if let ObjKind::List(items) = k {
                    items.extend(extra);
                }
            });
            Ok(none(interp))
        }
        "insert" => {
            arity(args, 2, method)?;
            let i = interp.expect_int(args[0])?.clamp(0, items.len() as i64) as usize;
            let v = args[1];
            interp.heap.modify(recv, |k| {
                if let ObjKind::List(items) = k {
                    items.insert(i, v);
                }
            });
            Ok(none(interp))
        }
        "pop" => {
            let i = if args.is_empty() {
                items.len().checked_sub(1).ok_or_else(|| {
                    RunError::new(RunErrorKind::IndexError, "pop from empty list")
                })?
            } else {
                let raw = interp.expect_int(args[0])?;
                let idx = if raw < 0 { items.len() as i64 + raw } else { raw };
                if idx < 0 || idx as usize >= items.len() {
                    return Err(RunError::new(RunErrorKind::IndexError, "pop index out of range"));
                }
                idx as usize
            };
            let mut popped = None;
            interp.heap.modify(recv, |k| {
                if let ObjKind::List(items) = k {
                    popped = Some(items.remove(i));
                }
            });
            Ok(popped.expect("index validated"))
        }
        "remove" => {
            arity(args, 1, method)?;
            let pos = items.iter().position(|i| interp.value_eq(*i, args[0]));
            match pos {
                Some(i) => {
                    interp.heap.modify(recv, |k| {
                        if let ObjKind::List(items) = k {
                            items.remove(i);
                        }
                    });
                    Ok(none(interp))
                }
                None => Err(RunError::new(RunErrorKind::ValueError, "value not in list")),
            }
        }
        "clear" => {
            interp.heap.modify(recv, |k| {
                if let ObjKind::List(items) = k {
                    items.clear();
                }
            });
            Ok(none(interp))
        }
        "sort" => {
            let sorted = sorted_ids(interp, items)?;
            interp.heap.modify(recv, |k| {
                if let ObjKind::List(items) = k {
                    *items = sorted;
                }
            });
            Ok(none(interp))
        }
        "reverse" => {
            interp.heap.modify(recv, |k| {
                if let ObjKind::List(items) = k {
                    items.reverse();
                }
            });
            Ok(none(interp))
        }
        "index" => {
            arity(args, 1, method)?;
            match items.iter().position(|i| interp.value_eq(*i, args[0])) {
                Some(i) => Ok(interp.heap.alloc(ObjKind::Int(i as i64))),
                None => Err(RunError::new(RunErrorKind::ValueError, "value not in list")),
            }
        }
        "count" => {
            arity(args, 1, method)?;
            let n = items.iter().filter(|i| interp.value_eq(**i, args[0])).count();
            Ok(interp.heap.alloc(ObjKind::Int(n as i64)))
        }
        "copy" => Ok(interp.heap.alloc(ObjKind::List(items.to_vec()))),
        _ => Err(no_method("list", method)),
    }
}

/// Sort object ids by value (numbers/strings/lists), stable.
fn sorted_ids(interp: &mut Interp, items: &[ObjId]) -> Result<Vec<ObjId>, RunError> {
    // Decorate with sortable keys to avoid interior mutability headaches.
    #[derive(PartialEq, PartialOrd)]
    enum Key {
        Num(f64),
        Str(String),
    }
    let mut decorated: Vec<(Key, ObjId)> = Vec::with_capacity(items.len());
    for id in items {
        let key = match interp.heap.kind(*id) {
            ObjKind::Int(v) => Key::Num(*v as f64),
            ObjKind::Float(v) => Key::Num(*v),
            ObjKind::Bool(b) => Key::Num(*b as i64 as f64),
            ObjKind::Str(s) => Key::Str(s.clone()),
            other => {
                return Err(RunError::new(
                    RunErrorKind::TypeError,
                    format!("cannot sort {}", other.type_tag()),
                ))
            }
        };
        decorated.push((key, *id));
    }
    if decorated.iter().any(|(k, _)| matches!(k, Key::Num(_)))
        && decorated.iter().any(|(k, _)| matches!(k, Key::Str(_)))
    {
        return Err(RunError::new(
            RunErrorKind::TypeError,
            "cannot sort mixed numbers and strings",
        ));
    }
    decorated.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    Ok(decorated.into_iter().map(|(_, id)| id).collect())
}

// ----------------------------------------------------------------------
// dict

fn dict_method(
    interp: &mut Interp,
    recv: ObjId,
    pairs: &[(ObjId, ObjId)],
    method: &str,
    args: &[ObjId],
) -> Result<ObjId, RunError> {
    match method {
        "get" => {
            if args.is_empty() || args.len() > 2 {
                return Err(RunError::new(RunErrorKind::TypeError, "get() takes 1-2 arguments"));
            }
            for (k, v) in pairs {
                if interp.value_eq(*k, args[0]) {
                    return Ok(*v);
                }
            }
            Ok(args.get(1).copied().unwrap_or_else(|| none(interp)))
        }
        "keys" => {
            let ks: Vec<ObjId> = pairs.iter().map(|(k, _)| *k).collect();
            Ok(interp.heap.alloc(ObjKind::List(ks)))
        }
        "values" => {
            let vs: Vec<ObjId> = pairs.iter().map(|(_, v)| *v).collect();
            Ok(interp.heap.alloc(ObjKind::List(vs)))
        }
        "items" => {
            let ts: Vec<ObjId> = pairs
                .iter()
                .map(|(k, v)| interp.heap.alloc(ObjKind::Tuple(vec![*k, *v])))
                .collect();
            Ok(interp.heap.alloc(ObjKind::List(ts)))
        }
        "pop" => {
            arity(args, 1, method)?;
            let pos = pairs.iter().position(|(k, _)| interp.value_eq(*k, args[0]));
            match pos {
                Some(i) => {
                    let mut v = None;
                    interp.heap.modify(recv, |k| {
                        if let ObjKind::Dict(pairs) = k {
                            v = Some(pairs.remove(i).1);
                        }
                    });
                    Ok(v.expect("position validated"))
                }
                None => Err(RunError::new(RunErrorKind::KeyError, "key not found")),
            }
        }
        "update" => {
            arity(args, 1, method)?;
            let other = match interp.heap.kind(args[0]) {
                ObjKind::Dict(ps) => ps.clone(),
                k => {
                    return Err(RunError::new(
                        RunErrorKind::TypeError,
                        format!("update() expects dict, got {}", k.type_tag()),
                    ))
                }
            };
            for (nk, nv) in other {
                let pos = {
                    let current = match interp.heap.kind(recv) {
                        ObjKind::Dict(ps) => ps.clone(),
                        _ => unreachable!("recv is a dict"),
                    };
                    current.iter().position(|(k, _)| interp.value_eq(*k, nk))
                };
                interp.heap.modify(recv, |k| {
                    if let ObjKind::Dict(pairs) = k {
                        match pos {
                            Some(i) => pairs[i].1 = nv,
                            None => pairs.push((nk, nv)),
                        }
                    }
                });
            }
            Ok(none(interp))
        }
        "clear" => {
            interp.heap.modify(recv, |k| {
                if let ObjKind::Dict(pairs) = k {
                    pairs.clear();
                }
            });
            Ok(none(interp))
        }
        "copy" => Ok(interp.heap.alloc(ObjKind::Dict(pairs.to_vec()))),
        _ => Err(no_method("dict", method)),
    }
}

// ----------------------------------------------------------------------
// set

fn set_method(
    interp: &mut Interp,
    recv: ObjId,
    items: &[ObjId],
    method: &str,
    args: &[ObjId],
) -> Result<ObjId, RunError> {
    match method {
        "add" => {
            arity(args, 1, method)?;
            if !items.iter().any(|i| interp.value_eq(*i, args[0])) {
                let v = args[0];
                interp.heap.modify(recv, |k| {
                    if let ObjKind::Set(items) = k {
                        items.push(v);
                    }
                });
            }
            Ok(none(interp))
        }
        "remove" | "discard" => {
            arity(args, 1, method)?;
            let pos = items.iter().position(|i| interp.value_eq(*i, args[0]));
            match pos {
                Some(i) => {
                    interp.heap.modify(recv, |k| {
                        if let ObjKind::Set(items) = k {
                            items.remove(i);
                        }
                    });
                    Ok(none(interp))
                }
                None if method == "discard" => Ok(none(interp)),
                None => Err(RunError::new(RunErrorKind::KeyError, "element not in set")),
            }
        }
        "clear" => {
            interp.heap.modify(recv, |k| {
                if let ObjKind::Set(items) = k {
                    items.clear();
                }
            });
            Ok(none(interp))
        }
        "copy" => Ok(interp.heap.alloc(ObjKind::Set(items.to_vec()))),
        _ => Err(no_method("set", method)),
    }
}

// ----------------------------------------------------------------------
// str

fn str_method(
    interp: &mut Interp,
    s: &str,
    method: &str,
    args: &[ObjId],
) -> Result<ObjId, RunError> {
    let alloc_str = |interp: &mut Interp, v: String| interp.heap.alloc(ObjKind::Str(v));
    match method {
        "upper" => Ok(alloc_str(interp, s.to_uppercase())),
        "lower" => Ok(alloc_str(interp, s.to_lowercase())),
        "strip" => Ok(alloc_str(interp, s.trim().to_string())),
        "replace" => {
            arity(args, 2, method)?;
            let from = interp.expect_str(args[0])?.to_string();
            let to = interp.expect_str(args[1])?.to_string();
            Ok(alloc_str(interp, s.replace(&from, &to)))
        }
        "split" => {
            let parts: Vec<String> = if args.is_empty() {
                s.split_whitespace().map(|p| p.to_string()).collect()
            } else {
                let sep = interp.expect_str(args[0])?.to_string();
                s.split(&sep).map(|p| p.to_string()).collect()
            };
            let ids: Vec<ObjId> = parts
                .into_iter()
                .map(|p| interp.heap.alloc(ObjKind::Str(p)))
                .collect();
            Ok(interp.heap.alloc(ObjKind::List(ids)))
        }
        "startswith" => {
            arity(args, 1, method)?;
            let p = interp.expect_str(args[0])?;
            let b = s.starts_with(p);
            Ok(interp.heap.alloc(ObjKind::Bool(b)))
        }
        "endswith" => {
            arity(args, 1, method)?;
            let p = interp.expect_str(args[0])?;
            let b = s.ends_with(p);
            Ok(interp.heap.alloc(ObjKind::Bool(b)))
        }
        "join" => {
            arity(args, 1, method)?;
            let parts = interp.iterate(args[0])?;
            let mut strs = Vec::with_capacity(parts.len());
            for p in parts {
                strs.push(interp.expect_str(p)?.to_string());
            }
            Ok(alloc_str(interp, strs.join(s)))
        }
        _ => Err(no_method("str", method)),
    }
}

// ----------------------------------------------------------------------
// ndarray

fn ndarray_method(
    interp: &mut Interp,
    recv: ObjId,
    values: &[f64],
    method: &str,
    args: &[ObjId],
) -> Result<ObjId, RunError> {
    match method {
        "sum" => Ok(interp.heap.alloc(ObjKind::Float(values.iter().sum()))),
        "mean" => {
            let m = if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            Ok(interp.heap.alloc(ObjKind::Float(m)))
        }
        "std" => {
            let n = values.len().max(1) as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            Ok(interp.heap.alloc(ObjKind::Float(var.sqrt())))
        }
        "max" => Ok(interp.heap.alloc(ObjKind::Float(
            values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ))),
        "min" => Ok(interp.heap.alloc(ObjKind::Float(
            values.iter().copied().fold(f64::INFINITY, f64::min),
        ))),
        "copy" => Ok(interp.heap.alloc(ObjKind::NdArray(values.to_vec()))),
        "tolist" => {
            let ids: Vec<ObjId> = values
                .iter()
                .map(|v| interp.heap.alloc(ObjKind::Float(*v)))
                .collect();
            Ok(interp.heap.alloc(ObjKind::List(ids)))
        }
        "fill" => {
            arity(args, 1, method)?;
            let v = interp.expect_float(args[0])?;
            interp.heap.modify(recv, |k| {
                if let ObjKind::NdArray(values) = k {
                    for x in values.iter_mut() {
                        *x = v;
                    }
                }
            });
            Ok(none(interp))
        }
        "sort" => {
            interp.heap.modify(recv, |k| {
                if let ObjKind::NdArray(values) = k {
                    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                }
            });
            Ok(none(interp))
        }
        _ => Err(no_method("ndarray", method)),
    }
}

// ----------------------------------------------------------------------
// Series

fn series_method(
    interp: &mut Interp,
    recv: ObjId,
    name: &str,
    values: ObjId,
    method: &str,
    args: &[ObjId],
) -> Result<ObjId, RunError> {
    match method {
        "sum" | "mean" | "std" | "max" | "min" | "tolist" | "sort" | "fill" => {
            // Delegate numeric reductions to the backing object.
            interp.call_method(values, method, args, &[])
        }
        "replace" => {
            // pandas-style in-place element replacement over the backing
            // list — the paper's Fig 6 "`ser.replace`" node-wise update.
            arity(args, 2, method)?;
            let from = args[0];
            let to = args[1];
            match interp.heap.kind(values).clone() {
                ObjKind::List(items) => {
                    let replaced: Vec<usize> = items
                        .iter()
                        .enumerate()
                        .filter(|(_, i)| interp.value_eq(**i, from))
                        .map(|(n, _)| n)
                        .collect();
                    interp.heap.modify(values, |k| {
                        if let ObjKind::List(items) = k {
                            for i in &replaced {
                                items[*i] = to;
                            }
                        }
                    });
                    Ok(none(interp))
                }
                ObjKind::NdArray(_) => {
                    let f = interp.expect_float(from)?;
                    let t = interp.expect_float(to)?;
                    interp.heap.modify(values, |k| {
                        if let ObjKind::NdArray(vs) = k {
                            for v in vs.iter_mut() {
                                if *v == f {
                                    *v = t;
                                }
                            }
                        }
                    });
                    Ok(none(interp))
                }
                other => Err(RunError::new(
                    RunErrorKind::TypeError,
                    format!("cannot replace in Series backed by {}", other.type_tag()),
                )),
            }
        }
        "rename" => {
            arity(args, 1, method)?;
            let n = interp.expect_str(args[0])?.to_string();
            interp.heap.modify(recv, |k| {
                if let ObjKind::Series { name, .. } = k {
                    *name = n;
                }
            });
            Ok(none(interp))
        }
        "copy" => {
            // Deep copy: new backing object too (like pandas).
            let new_values = match interp.heap.kind(values).clone() {
                ObjKind::NdArray(vs) => interp.heap.alloc(ObjKind::NdArray(vs)),
                ObjKind::List(items) => interp.heap.alloc(ObjKind::List(items)),
                other => interp.heap.alloc(other),
            };
            Ok(interp.heap.alloc(ObjKind::Series {
                name: name.to_string(),
                values: new_values,
            }))
        }
        _ => Err(no_method("Series", method)),
    }
}

// ----------------------------------------------------------------------
// DataFrame

fn dataframe_method(
    interp: &mut Interp,
    recv: ObjId,
    cols: &[(String, ObjId)],
    method: &str,
    args: &[ObjId],
) -> Result<ObjId, RunError> {
    match method {
        "drop" => {
            // pandas default: returns a NEW frame sharing the surviving
            // column objects (the irreversible-looking `df = df.drop('a')`
            // from §2.1 — exactly what Kishu lets users undo).
            arity(args, 1, method)?;
            let name = interp.expect_str(args[0])?.to_string();
            if !cols.iter().any(|(n, _)| *n == name) {
                return Err(RunError::new(RunErrorKind::KeyError, format!("column `{name}`")));
            }
            let remaining: Vec<(String, ObjId)> =
                cols.iter().filter(|(n, _)| *n != name).cloned().collect();
            Ok(interp.heap.alloc(ObjKind::DataFrame(remaining)))
        }
        "drop_inplace" => {
            arity(args, 1, method)?;
            let name = interp.expect_str(args[0])?.to_string();
            if !cols.iter().any(|(n, _)| *n == name) {
                return Err(RunError::new(RunErrorKind::KeyError, format!("column `{name}`")));
            }
            interp.heap.modify(recv, |k| {
                if let ObjKind::DataFrame(cols) = k {
                    cols.retain(|(n, _)| *n != name);
                }
            });
            Ok(none(interp))
        }
        "col" | "get" => {
            arity(args, 1, method)?;
            let name = interp.expect_str(args[0])?.to_string();
            cols.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, c)| *c)
                .ok_or_else(|| RunError::new(RunErrorKind::KeyError, format!("column `{name}`")))
        }
        "head" => {
            let n = if args.is_empty() { 5 } else { interp.expect_int(args[0])?.max(0) as usize };
            let mut new_cols = Vec::with_capacity(cols.len());
            for (name, c) in cols {
                let sliced = match interp.heap.kind(*c).clone() {
                    ObjKind::NdArray(vs) => {
                        interp.heap.alloc(ObjKind::NdArray(vs.into_iter().take(n).collect()))
                    }
                    ObjKind::List(items) => {
                        interp.heap.alloc(ObjKind::List(items.into_iter().take(n).collect()))
                    }
                    other => interp.heap.alloc(other),
                };
                new_cols.push((name.clone(), sliced));
            }
            Ok(interp.heap.alloc(ObjKind::DataFrame(new_cols)))
        }
        "copy" => {
            // Deep copy (pandas `df.copy()`): new column objects.
            let mut new_cols = Vec::with_capacity(cols.len());
            for (name, c) in cols {
                let copied = match interp.heap.kind(*c).clone() {
                    ObjKind::NdArray(vs) => interp.heap.alloc(ObjKind::NdArray(vs)),
                    ObjKind::List(items) => interp.heap.alloc(ObjKind::List(items)),
                    other => interp.heap.alloc(other),
                };
                new_cols.push((name.clone(), copied));
            }
            Ok(interp.heap.alloc(ObjKind::DataFrame(new_cols)))
        }
        "mean" => {
            let mut pairs = Vec::new();
            for (name, c) in cols {
                if let ObjKind::NdArray(vs) = interp.heap.kind(*c).clone() {
                    let m = if vs.is_empty() { f64::NAN } else { vs.iter().sum::<f64>() / vs.len() as f64 };
                    let k = interp.heap.alloc(ObjKind::Str(name.clone()));
                    let v = interp.heap.alloc(ObjKind::Float(m));
                    pairs.push((k, v));
                }
            }
            Ok(interp.heap.alloc(ObjKind::Dict(pairs)))
        }
        "describe" => {
            let desc = format!("DataFrame: {} columns", cols.len());
            Ok(interp.heap.alloc(ObjKind::Str(desc)))
        }
        _ => Err(no_method("DataFrame", method)),
    }
}

// ----------------------------------------------------------------------
// generator

fn generator_method(interp: &mut Interp, token: u64, method: &str) -> Result<ObjId, RunError> {
    match method {
        "next" => {
            // Opaque iteration: yields a token-derived value. The object's
            // internal cursor is invisible to traversal (that is the point —
            // Kishu must assume it updated on access).
            Ok(interp.heap.alloc(ObjKind::Int((token % 1000) as i64)))
        }
        _ => Err(no_method("generator", method)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    fn run(interp: &mut Interp, src: &str) {
        let out = interp.run_cell(src).expect("parses");
        if let Some(e) = out.error {
            panic!("cell failed: {e}");
        }
    }

    fn repr_of(interp: &mut Interp, name: &str) -> String {
        let id = interp.globals.peek(name).expect("bound");
        repr::repr(&interp.heap, id)
    }

    #[test]
    fn list_mutators() {
        let mut i = Interp::new();
        run(&mut i, "ls = [3, 1, 2]\nls.append(5)\nls.sort()\nls.reverse()\n");
        assert_eq!(repr_of(&mut i, "ls"), "[5, 3, 2, 1]");
        run(&mut i, "x = ls.pop()\nls.remove(5)\n");
        assert_eq!(repr_of(&mut i, "ls"), "[3, 2]");
        assert_eq!(repr_of(&mut i, "x"), "1");
    }

    #[test]
    fn dict_methods() {
        let mut i = Interp::new();
        run(&mut i, "d = {'a': 1}\nd.update({'b': 2})\nv = d.get('b')\nm = d.get('zz', 9)\n");
        assert_eq!(repr_of(&mut i, "v"), "2");
        assert_eq!(repr_of(&mut i, "m"), "9");
        run(&mut i, "ks = d.keys()\n");
        assert_eq!(repr_of(&mut i, "ks"), "['a', 'b']");
    }

    #[test]
    fn str_methods() {
        let mut i = Interp::new();
        run(&mut i, "s = ' Hello World '.strip()\nparts = s.split()\nu = s.upper()\nj = '-'.join(parts)\n");
        assert_eq!(repr_of(&mut i, "parts"), "['Hello', 'World']");
        assert_eq!(repr_of(&mut i, "u"), "'HELLO WORLD'");
        assert_eq!(repr_of(&mut i, "j"), "'Hello-World'");
    }

    #[test]
    fn ndarray_reductions_and_inplace() {
        let mut i = Interp::new();
        run(&mut i, "a = zeros(4)\na.fill(2.0)\ns = a.sum()\na[0] = 10.0\n");
        assert_eq!(repr_of(&mut i, "s"), "8.0");
        run(&mut i, "m = a.max()\n");
        assert_eq!(repr_of(&mut i, "m"), "10.0");
    }

    #[test]
    fn series_replace_in_place_keeps_identity() {
        let mut i = Interp::new();
        run(&mut i, "ser = series('mood', ['a', 'b', 'c'])\nbefore = id(ser)\nser.replace('b', 'z')\nafter = id(ser)\n");
        assert_eq!(repr_of(&mut i, "before"), repr_of(&mut i, "after"));
        let ser = i.globals.peek("ser").expect("bound");
        if let ObjKind::Series { values, .. } = i.heap.kind(ser).clone() {
            let r = repr::repr(&i.heap, values);
            assert_eq!(r, "['a', 'z', 'c']");
        } else {
            panic!("not a series");
        }
    }

    #[test]
    fn dataframe_drop_shares_columns() {
        let mut i = Interp::new();
        run(
            &mut i,
            "df = read_csv('t', 10, 3, 1)\nc0 = df['c0']\ndf2 = df.drop('c1')\nc0b = df2['c0']\nsame = id(c0) == id(c0b)\n",
        );
        assert_eq!(repr_of(&mut i, "same"), "True");
    }

    #[test]
    fn dataframe_head_copies() {
        let mut i = Interp::new();
        run(&mut i, "df = read_csv('t', 100, 2, 7)\nh = df.head(3)\nn = h.shape\n");
        assert_eq!(repr_of(&mut i, "n"), "(3, 2)");
    }
}
