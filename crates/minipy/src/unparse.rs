//! AST → source text (the inverse of the parser).
//!
//! Produces canonical minipy: four-space indentation, fully parenthesized
//! sub-expressions (so no precedence decisions are needed), escaped string
//! literals. The round-trip law `parse(unparse(ast)) == ast` (modulo
//! regenerated `def` source text) is enforced by property tests, which
//! fuzzes the lexer and parser far beyond the hand-written cases.

use std::fmt::Write as _;

use crate::ast::{BinOp, BoolOpKind, CmpOp, Expr, Stmt, Target, UnaryOp};

/// Render a statement sequence as source text.
pub fn unparse(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    for s in stmts {
        write_stmt(&mut out, s, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_block(out: &mut String, body: &[Stmt], level: usize) {
    if body.is_empty() {
        indent(out, level);
        out.push_str("pass\n");
        return;
    }
    for s in body {
        write_stmt(out, s, level);
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{}", expr(e));
        }
        Stmt::Assign { target, value } => {
            let _ = writeln!(out, "{} = {}", target_str(target), expr(value));
        }
        Stmt::AugAssign { target, op, value } => {
            let op = match op {
                BinOp::Add => "+=",
                BinOp::Sub => "-=",
                BinOp::Mul => "*=",
                BinOp::Div => "/=",
                other => unreachable!("no augmented form for {other:?}"),
            };
            let _ = writeln!(out, "{} {op} {}", target_str(target), expr(value));
        }
        Stmt::Del(targets) => {
            let parts: Vec<String> = targets.iter().map(target_str).collect();
            let _ = writeln!(out, "del {}", parts.join(", "));
        }
        Stmt::If { arms, orelse } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                if i > 0 {
                    indent(out, level);
                }
                let kw = if i == 0 { "if" } else { "elif" };
                let _ = writeln!(out, "{kw} {}:", expr(cond));
                write_block(out, body, level + 1);
            }
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                write_block(out, orelse, level + 1);
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while {}:", expr(cond));
            write_block(out, body, level + 1);
        }
        Stmt::For { var, iter, body } => {
            let _ = writeln!(out, "for {var} in {}:", expr(iter));
            write_block(out, body, level + 1);
        }
        Stmt::FuncDef {
            name, params, body, ..
        } => {
            let _ = writeln!(out, "def {name}({}):", params.join(", "));
            write_block(out, body, level + 1);
        }
        Stmt::Return(None) => out.push_str("return\n"),
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {}", expr(e));
        }
        Stmt::Global(names) => {
            let _ = writeln!(out, "global {}", names.join(", "));
        }
        Stmt::Pass => out.push_str("pass\n"),
        Stmt::Break => out.push_str("break\n"),
        Stmt::Continue => out.push_str("continue\n"),
    }
}

fn target_str(t: &Target) -> String {
    match t {
        Target::Name(n) => n.clone(),
        Target::Attr(obj, attr) => format!("{}.{attr}", expr(obj)),
        Target::Index(obj, idx) => format!("{}[{}]", expr(obj), expr(idx)),
    }
}

/// Render an expression. Composite operands are parenthesized, so operator
/// precedence never matters.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::None => "None".into(),
        Expr::Bool(true) => "True".into(),
        Expr::Bool(false) => "False".into(),
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            let s = format!("{v:?}");
            // `{:?}` may omit the decimal point for exponent forms, which
            // still lexes as a float thanks to the exponent.
            s
        }
        Expr::Str(s) => quote(s),
        Expr::Name(n) => n.clone(),
        Expr::List(items) => format!("[{}]", comma(items)),
        Expr::Tuple(items) => match items.len() {
            0 => "()".into(),
            1 => format!("({},)", atom(&items[0])),
            _ => format!("({})", comma(items)),
        },
        Expr::Set(items) => format!("{{{}}}", comma(items)),
        Expr::Dict(pairs) => {
            let parts: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{}: {}", atom(k), atom(v)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
        Expr::BinOp { op, left, right } => {
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::FloorDiv => "//",
                BinOp::Mod => "%",
                BinOp::Pow => "**",
            };
            format!("{} {op} {}", atom(left), atom(right))
        }
        Expr::Unary { op, operand } => match op {
            UnaryOp::Neg => format!("-{}", atom(operand)),
            UnaryOp::Not => format!("not {}", atom(operand)),
        },
        Expr::BoolOp { op, operands } => {
            let kw = match op {
                BoolOpKind::And => " and ",
                BoolOpKind::Or => " or ",
            };
            operands.iter().map(atom).collect::<Vec<_>>().join(kw)
        }
        Expr::Compare { left, rest } => {
            let mut s = atom(left);
            for (op, e) in rest {
                let op = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::In => "in",
                    CmpOp::NotIn => "not in",
                };
                let _ = write!(s, " {op} {}", atom(e));
            }
            s
        }
        Expr::Attr(obj, attr) => format!("{}.{attr}", atom(obj)),
        Expr::Index(obj, idx) => format!("{}[{}]", atom(obj), expr(idx)),
        Expr::Slice(lo, hi) => format!(
            "{}:{}",
            lo.as_deref().map(expr).unwrap_or_default(),
            hi.as_deref().map(expr).unwrap_or_default()
        ),
        Expr::Call { func, args, kwargs } => {
            let mut parts: Vec<String> = args.iter().map(expr).collect();
            for (k, v) in kwargs {
                parts.push(format!("{k}={}", expr(v)));
            }
            format!("{}({})", atom(func), parts.join(", "))
        }
    }
}

/// Render as an operand: composites get parentheses.
fn atom(e: &Expr) -> String {
    match e {
        Expr::None
        | Expr::Bool(_)
        | Expr::Int(_)
        | Expr::Float(_)
        | Expr::Str(_)
        | Expr::Name(_)
        | Expr::List(_)
        | Expr::Tuple(_)
        | Expr::Set(_)
        | Expr::Dict(_)
        | Expr::Attr(..)
        | Expr::Index(..)
        | Expr::Call { .. } => expr(e),
        _ => format!("({})", expr(e)),
    }
}

fn comma(items: &[Expr]) -> String {
    items.iter().map(atom).collect::<Vec<_>>().join(", ")
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\'' => out.push_str("\\'"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('\'');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn roundtrip(src: &str) {
        let ast1 = parse_program(src).expect("original parses");
        let printed = unparse(&ast1);
        let ast2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("unparse output does not parse: {e}\n{printed}"));
        assert_eq!(normalize(&ast1), normalize(&ast2), "mismatch via\n{printed}");
    }

    /// Blank `def` source fields (unparse regenerates them).
    fn normalize(stmts: &[Stmt]) -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::FuncDef {
                    name,
                    params,
                    body,
                    ..
                } => Stmt::FuncDef {
                    name: name.clone(),
                    params: params.clone(),
                    body: normalize(body),
                    source: String::new(),
                },
                Stmt::If { arms, orelse } => Stmt::If {
                    arms: arms
                        .iter()
                        .map(|(c, b)| (c.clone(), normalize(b)))
                        .collect(),
                    orelse: normalize(orelse),
                },
                Stmt::While { cond, body } => Stmt::While {
                    cond: cond.clone(),
                    body: normalize(body),
                },
                Stmt::For { var, iter, body } => Stmt::For {
                    var: var.clone(),
                    iter: iter.clone(),
                    body: normalize(body),
                },
                other => other.clone(),
            })
            .collect()
    }

    #[test]
    fn hand_written_roundtrips() {
        roundtrip("x = 1 + 2 * 3\n");
        roundtrip("if a < b <= c:\n    y = [1, (2,), {'k': 3}]\nelse:\n    del y\n");
        roundtrip("for k in range(10):\n    s += k\n    if k % 2 == 0:\n        continue\n");
        roundtrip("def f(a, b):\n    global g\n    return a ** b\n");
        roundtrip("r = f(1, x=2) and not (y or z)\n");
        roundtrip("s = 'quotes \\' and\\nnewlines'\n");
        roundtrip("a[1:3] = b[:2]\nc = d[3:]\n");
        roundtrip("obj.attr.deep[0] += -4.5\n");
        roundtrip("t = ()\nu = (1,)\nv = (1, 2, 3)\n");
    }

    #[test]
    fn workload_notebooks_roundtrip() {
        // Every cell of every synthesized notebook must survive the
        // round trip (the unparser covers the full language the workloads
        // use). Inline a few representative cells here; the proptest below
        // covers the space.
        for src in [
            "moods = []\nfor k in range(10):\n    if k % 3 == 0:\n        moods.append('sad')\n    elif k % 3 == 1:\n        moods.append('happy')\n    else:\n        moods.append('neutral')\n",
            "cv_acc = 0.0\nfor fold in range(4):\n    for step in range(8):\n        if (fold + step) % 3 == 0:\n            cv_acc += 0.001\n",
        ] {
            roundtrip(src);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ast::*;
    use crate::parse_program;
    use kishu_testkit::prelude::*;

    fn name_strategy() -> impl Strategy<Value = String> {
        "[a-z_][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
            crate::token::Kw::from_str(s).is_none()
        })
    }

    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            Just(Expr::None),
            any::<bool>().prop_map(Expr::Bool),
            (0i64..1_000_000).prop_map(Expr::Int),
            (0.001f64..1e6).prop_map(Expr::Float),
            "[ -~]{0,12}".prop_map(Expr::Str),
            name_strategy().prop_map(Expr::Name),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::List),
                prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::Tuple),
                prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::Set),
                prop::collection::vec((inner.clone(), inner.clone()), 0..3).prop_map(Expr::Dict),
                (
                    prop_oneof![
                        Just(BinOp::Add),
                        Just(BinOp::Sub),
                        Just(BinOp::Mul),
                        Just(BinOp::Div),
                        Just(BinOp::FloorDiv),
                        Just(BinOp::Mod),
                        Just(BinOp::Pow)
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, l, r)| Expr::BinOp {
                        op,
                        left: Box::new(l),
                        right: Box::new(r)
                    }),
                (prop_oneof![Just(UnaryOp::Neg), Just(UnaryOp::Not)], inner.clone()).prop_map(
                    |(op, e)| Expr::Unary {
                        op,
                        operand: Box::new(e)
                    }
                ),
                (
                    prop_oneof![Just(BoolOpKind::And), Just(BoolOpKind::Or)],
                    prop::collection::vec(inner.clone(), 2..4)
                )
                    .prop_map(|(op, operands)| Expr::BoolOp { op, operands }),
                (
                    inner.clone(),
                    prop::collection::vec(
                        (
                            prop_oneof![
                                Just(CmpOp::Eq),
                                Just(CmpOp::Ne),
                                Just(CmpOp::Lt),
                                Just(CmpOp::Le),
                                Just(CmpOp::Gt),
                                Just(CmpOp::Ge),
                                Just(CmpOp::In),
                                Just(CmpOp::NotIn)
                            ],
                            inner.clone()
                        ),
                        1..3
                    )
                )
                    .prop_map(|(l, rest)| Expr::Compare {
                        left: Box::new(l),
                        rest
                    }),
                (inner.clone(), name_strategy())
                    .prop_map(|(o, a)| Expr::Attr(Box::new(o), a)),
                (inner.clone(), inner.clone())
                    .prop_map(|(o, i)| Expr::Index(Box::new(o), Box::new(i))),
                (
                    name_strategy().prop_map(Expr::Name),
                    prop::collection::vec(inner.clone(), 0..3),
                    prop::collection::vec((name_strategy(), inner), 0..2)
                )
                    .prop_map(|(f, args, kwargs)| Expr::Call {
                        func: Box::new(f),
                        args,
                        kwargs
                    }),
            ]
        })
    }

    fn stmt_strategy() -> impl Strategy<Value = Stmt> {
        let simple = prop_oneof![
            expr_strategy().prop_map(Stmt::Expr),
            (name_strategy(), expr_strategy())
                .prop_map(|(n, v)| Stmt::Assign {
                    target: Target::Name(n),
                    value: v
                }),
            (name_strategy(), expr_strategy(), expr_strategy()).prop_map(|(n, i, v)| {
                Stmt::Assign {
                    target: Target::Index(Box::new(Expr::Name(n)), Box::new(i)),
                    value: v,
                }
            }),
            (
                name_strategy(),
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div)],
                expr_strategy()
            )
                .prop_map(|(n, op, v)| Stmt::AugAssign {
                    target: Target::Name(n),
                    op,
                    value: v
                }),
            name_strategy().prop_map(|n| Stmt::Del(vec![Target::Name(n)])),
            Just(Stmt::Pass),
        ];
        simple.prop_recursive(2, 12, 3, |inner| {
            prop_oneof![
                (
                    expr_strategy(),
                    prop::collection::vec(inner.clone(), 1..3),
                    prop::collection::vec(inner.clone(), 0..2)
                )
                    .prop_map(|(c, b, orelse)| Stmt::If {
                        arms: vec![(c, b)],
                        orelse
                    }),
                (
                    name_strategy(),
                    expr_strategy(),
                    prop::collection::vec(inner.clone(), 1..3)
                )
                    .prop_map(|(v, it, b)| Stmt::For {
                        var: v,
                        iter: it,
                        body: b
                    }),
                (expr_strategy(), prop::collection::vec(inner, 1..3))
                    .prop_map(|(c, b)| Stmt::While { cond: c, body: b }),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn parse_unparse_roundtrip(stmts in prop::collection::vec(stmt_strategy(), 1..6)) {
            let printed = unparse(&stmts);
            let reparsed = parse_program(&printed)
                .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{printed}")))?;
            prop_assert_eq!(&stmts, &reparsed, "via:\n{}", printed);
            // And the round trip is a fixpoint.
            prop_assert_eq!(unparse(&reparsed), printed);
        }
    }
}
