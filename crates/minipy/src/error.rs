//! Runtime and syntax errors of minipy cells.

use std::fmt;

/// Category of a cell error, mirroring the Python exception taxonomy the
/// paper's workloads can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// Malformed source.
    SyntaxError,
    /// Unbound name.
    NameError,
    /// Operation applied to the wrong type.
    TypeError,
    /// Missing attribute.
    AttributeError,
    /// Out-of-range subscript.
    IndexError,
    /// Missing dictionary key.
    KeyError,
    /// Numeric domain error (division by zero, ...).
    ValueError,
    /// Interpreter limit (recursion depth, iteration cap).
    LimitError,
    /// Error surfaced by a library class (libsim).
    LibraryError,
}

/// An error produced while parsing or running a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    /// Category.
    pub kind: RunErrorKind,
    /// Human-readable message.
    pub message: String,
    /// 1-based source line, when known.
    pub line: Option<u32>,
}

impl RunError {
    /// New error with no line attribution.
    pub fn new(kind: RunErrorKind, message: impl Into<String>) -> Self {
        RunError {
            kind,
            message: message.into(),
            line: None,
        }
    }

    /// Attach a source line (keeps an existing one if already set, so the
    /// innermost frame wins).
    pub fn at_line(mut self, line: u32) -> Self {
        self.line.get_or_insert(line);
        self
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{:?} (line {line}): {}", self.kind, self.message),
            None => write!(f, "{:?}: {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_known() {
        let e = RunError::new(RunErrorKind::NameError, "name `x` is not defined").at_line(3);
        assert!(e.to_string().contains("line 3"));
        let e2 = RunError::new(RunErrorKind::TypeError, "boom");
        assert!(!e2.to_string().contains("line"));
    }

    #[test]
    fn first_line_attribution_wins() {
        let e = RunError::new(RunErrorKind::TypeError, "x").at_line(2).at_line(9);
        assert_eq!(e.line, Some(2));
    }
}
