//! Indentation-aware lexer.
//!
//! Python-style layout: leading whitespace at the start of a logical line
//! produces `Indent`/`Dedent` tokens against a stack of indentation widths;
//! newlines inside `()`/`[]`/`{}` are insignificant; `#` starts a comment.

use crate::error::{RunError, RunErrorKind};
use crate::token::{Kw, Op, TokKind, Token};

/// Tokenize a full source text.
pub fn tokenize(src: &str) -> Result<Vec<Token>, RunError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    indents: Vec<usize>,
    bracket_depth: usize,
    out: Vec<Token>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            indents: vec![0],
            bracket_depth: 0,
            out: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind) {
        self.out.push(Token {
            kind,
            line: self.line,
        });
    }

    fn err(&self, msg: impl Into<String>) -> RunError {
        RunError::new(RunErrorKind::SyntaxError, msg).at_line(self.line)
    }

    fn run(mut self) -> Result<Vec<Token>, RunError> {
        // Start of input counts as start of a logical line.
        self.handle_line_start()?;
        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '\n' => {
                    self.bump();
                    self.line += 1;
                    if self.bracket_depth == 0 {
                        // Collapse blank/comment-only lines: only emit a
                        // Newline if the last emitted token wasn't already a
                        // line boundary.
                        if matches!(
                            self.out.last().map(|t| &t.kind),
                            Some(TokKind::Newline) | Some(TokKind::Indent) | None
                        ) {
                            // suppress empty logical line
                        } else {
                            self.push(TokKind::Newline);
                        }
                        self.handle_line_start()?;
                    }
                }
                '"' | '\'' => self.lex_string(c)?,
                c if c.is_ascii_digit() => self.lex_number()?,
                c if c.is_alphabetic() || c == '_' => self.lex_ident(),
                _ => self.lex_op()?,
            }
        }
        // Close any open blocks.
        if !matches!(
            self.out.last().map(|t| &t.kind),
            Some(TokKind::Newline) | None
        ) {
            self.push(TokKind::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(TokKind::Dedent);
        }
        self.push(TokKind::Eof);
        Ok(self.out)
    }

    /// At the start of a logical line: measure indentation, skipping blank
    /// and comment-only lines entirely, then emit Indent/Dedent as needed.
    fn handle_line_start(&mut self) -> Result<(), RunError> {
        loop {
            let mut width = 0usize;
            let start = self.pos;
            while let Some(c) = self.peek() {
                match c {
                    ' ' => {
                        width += 1;
                        self.bump();
                    }
                    '\t' => {
                        width += 8 - (width % 8);
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                None => return Ok(()), // EOF; trailing dedents handled by run()
                Some('\n') => {
                    self.bump();
                    self.line += 1;
                    continue; // blank line: remeasure
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                Some(_) => {
                    let current = *self.indents.last().expect("indent stack never empty");
                    if width > current {
                        self.indents.push(width);
                        self.push(TokKind::Indent);
                    } else if width < current {
                        while width < *self.indents.last().expect("indent stack never empty") {
                            self.indents.pop();
                            self.push(TokKind::Dedent);
                        }
                        if width != *self.indents.last().expect("indent stack never empty") {
                            return Err(self.err("inconsistent dedent"));
                        }
                    }
                    let _ = start;
                    return Ok(());
                }
            }
        }
    }

    fn lex_string(&mut self, quote: char) -> Result<(), RunError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(c) if c == quote => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some(c) if c == quote => s.push(c),
                    Some(c) => {
                        s.push('\\');
                        s.push(c);
                    }
                    None => return Err(self.err("unterminated escape")),
                },
                Some('\n') => return Err(self.err("newline in string literal")),
                Some(c) => s.push(c),
            }
        }
        self.push(TokKind::Str(s));
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), RunError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        let mut is_float = false;
        if self.peek() == Some('.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            is_float = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            let save = self.pos;
            let mut exp = String::new();
            exp.push(self.bump().expect("peeked"));
            if matches!(self.peek(), Some('+') | Some('-')) {
                exp.push(self.bump().expect("peeked"));
            }
            if self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        exp.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                text.push_str(&exp);
                is_float = true;
            } else {
                self.pos = save; // `e` was the start of an identifier
            }
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad float literal `{text}`")))?;
            self.push(TokKind::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("bad int literal `{text}`")))?;
            self.push(TokKind::Int(v));
        }
        Ok(())
    }

    fn lex_ident(&mut self) {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Kw::from_str(&s) {
            Some(kw) => self.push(TokKind::Keyword(kw)),
            None => self.push(TokKind::Ident(s)),
        }
    }

    fn lex_op(&mut self) -> Result<(), RunError> {
        let c = self.bump().expect("caller peeked");
        let two = |lexer: &mut Self, second: char, yes: Op, no: Op| {
            if lexer.peek() == Some(second) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let op = match c {
            '+' => two(self, '=', Op::PlusEq, Op::Plus),
            '-' => two(self, '=', Op::MinusEq, Op::Minus),
            '*' => {
                if self.peek() == Some('*') {
                    self.bump();
                    Op::DoubleStar
                } else {
                    two(self, '=', Op::StarEq, Op::Star)
                }
            }
            '/' => {
                if self.peek() == Some('/') {
                    self.bump();
                    Op::DoubleSlash
                } else {
                    two(self, '=', Op::SlashEq, Op::Slash)
                }
            }
            '%' => Op::Percent,
            '=' => two(self, '=', Op::EqEq, Op::Eq),
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Op::NotEq
                } else {
                    return Err(self.err("unexpected `!`"));
                }
            }
            '<' => two(self, '=', Op::LtEq, Op::Lt),
            '>' => two(self, '=', Op::GtEq, Op::Gt),
            '(' => {
                self.bracket_depth += 1;
                Op::LParen
            }
            ')' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Op::RParen
            }
            '[' => {
                self.bracket_depth += 1;
                Op::LBracket
            }
            ']' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Op::RBracket
            }
            '{' => {
                self.bracket_depth += 1;
                Op::LBrace
            }
            '}' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Op::RBrace
            }
            ',' => Op::Comma,
            ':' => Op::Colon,
            '.' => Op::Dot,
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        };
        self.push(TokKind::Op(op));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).expect("lexes").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        let k = kinds("x = 1\n");
        assert_eq!(
            k,
            vec![
                TokKind::Ident("x".into()),
                TokKind::Op(Op::Eq),
                TokKind::Int(1),
                TokKind::Newline,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn indentation_produces_blocks() {
        let k = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(k.contains(&TokKind::Indent));
        assert!(k.contains(&TokKind::Dedent));
        let i = k.iter().position(|t| *t == TokKind::Indent).expect("indent");
        let d = k.iter().position(|t| *t == TokKind::Dedent).expect("dedent");
        assert!(i < d);
    }

    #[test]
    fn brackets_suppress_newlines() {
        let k = kinds("x = [1,\n     2,\n     3]\n");
        let newlines = k.iter().filter(|t| **t == TokKind::Newline).count();
        assert_eq!(newlines, 1);
        assert!(!k.contains(&TokKind::Indent));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let k = kinds("# header\n\nx = 1  # trailing\n\n# done\n");
        assert_eq!(k.iter().filter(|t| **t == TokKind::Newline).count(), 1);
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(kinds("3\n")[0], TokKind::Int(3));
        assert_eq!(kinds("3.5\n")[0], TokKind::Float(3.5));
        assert_eq!(kinds("1e3\n")[0], TokKind::Float(1000.0));
        assert_eq!(kinds("1_000\n")[0], TokKind::Int(1000));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'a\\nb'\n")[0], TokKind::Str("a\nb".into()));
        assert_eq!(kinds("\"q\"\n")[0], TokKind::Str("q".into()));
    }

    #[test]
    fn keywords_recognized() {
        let k = kinds("for x in y:\n    pass\n");
        assert_eq!(k[0], TokKind::Keyword(Kw::For));
        assert_eq!(k[2], TokKind::Keyword(Kw::In));
    }

    #[test]
    fn operators_two_char() {
        let k = kinds("a //= 1\n");
        // `//=` is not supported; `//` then `=` is how it lexes.
        assert_eq!(k[1], TokKind::Op(Op::DoubleSlash));
        let k = kinds("a **  b != c <= d\n");
        assert!(k.contains(&TokKind::Op(Op::DoubleStar)));
        assert!(k.contains(&TokKind::Op(Op::NotEq)));
        assert!(k.contains(&TokKind::Op(Op::LtEq)));
    }

    #[test]
    fn nested_dedents() {
        let k = kinds("if a:\n    if b:\n        x = 1\ny = 2\n");
        let dedents = k.iter().filter(|t| **t == TokKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        assert!(tokenize("if a:\n    x = 1\n  y = 2\n").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("x = 'abc\n").is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let toks = tokenize("x = 1\ny = 2\n").expect("lexes");
        let y = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("y".into()))
            .expect("y token");
        assert_eq!(y.line, 2);
    }
}
