//! Core builtin functions available to every cell.
//!
//! Beyond the Python staples (`len`, `range`, `print`, ...) this registers
//! the data constructors the workloads use in place of real library imports:
//! `read_csv` (synthetic dataframe load), `zeros`/`ones`/`arange`/`randn`
//! (NumPy-style arrays), `series`, `Object()` (an attribute bag, the paper's
//! Fig 3 `obj`), and `make_generator()` (the canonical opaque/unserializable
//! object). `kishu-libsim` registers the remaining 146 library classes on
//! top of these.

use std::rc::Rc;

use kishu_kernel::{ObjId, ObjKind};

use crate::error::{RunError, RunErrorKind};
use crate::interp::Interp;
use crate::repr;

macro_rules! builtin {
    ($interp:expr, $name:literal, |$i:ident, $args:ident, $kwargs:ident| $body:expr) => {
        $interp.register_builtin(
            $name,
            Rc::new(
                |$i: &mut Interp,
                 $args: Vec<ObjId>,
                 $kwargs: Vec<(String, ObjId)>|
                 -> Result<ObjId, RunError> {
                    let _ = &$kwargs;
                    $body
                },
            ),
        );
    };
}

fn type_err(msg: impl Into<String>) -> RunError {
    RunError::new(RunErrorKind::TypeError, msg)
}

fn need(args: &[ObjId], n: usize, name: &str) -> Result<(), RunError> {
    if args.len() != n {
        return Err(type_err(format!("{name}() takes {n} argument(s), got {}", args.len())));
    }
    Ok(())
}

/// Register the core builtins into a fresh interpreter.
pub fn register_core(interp: &mut Interp) {
    builtin!(interp, "len", |i, args, _k| {
        need(&args, 1, "len")?;
        match i.sequence_len(args[0]) {
            Some(n) => Ok(i.heap.alloc(ObjKind::Int(n as i64))),
            None => Err(type_err(format!(
                "object of type {} has no len()",
                i.heap.kind(args[0]).type_tag()
            ))),
        }
    });

    builtin!(interp, "range", |i, args, _k| {
        let (lo, hi, step) = match args.len() {
            1 => (0, i.expect_int(args[0])?, 1),
            2 => (i.expect_int(args[0])?, i.expect_int(args[1])?, 1),
            3 => (
                i.expect_int(args[0])?,
                i.expect_int(args[1])?,
                i.expect_int(args[2])?,
            ),
            _ => return Err(type_err("range() takes 1-3 arguments")),
        };
        if step == 0 {
            return Err(RunError::new(RunErrorKind::ValueError, "range() step must not be zero"));
        }
        let mut items = Vec::new();
        let mut v = lo;
        while (step > 0 && v < hi) || (step < 0 && v > hi) {
            items.push(i.heap.alloc(ObjKind::Int(v)));
            v += step;
        }
        Ok(i.heap.alloc(ObjKind::List(items)))
    });

    builtin!(interp, "print", |i, args, _k| {
        let line = args
            .iter()
            .map(|a| repr::display(&i.heap, *a))
            .collect::<Vec<_>>()
            .join(" ");
        i.emit_output(line);
        Ok(i.heap.alloc(ObjKind::None))
    });

    builtin!(interp, "sum", |i, args, _k| {
        need(&args, 1, "sum")?;
        let items = i.iterate(args[0])?;
        let mut int_sum = 0i64;
        let mut float_sum = 0.0f64;
        let mut any_float = false;
        for item in items {
            match i.heap.kind(item) {
                ObjKind::Int(v) => int_sum += v,
                ObjKind::Float(v) => {
                    float_sum += v;
                    any_float = true;
                }
                ObjKind::Bool(b) => int_sum += *b as i64,
                other => return Err(type_err(format!("cannot sum {}", other.type_tag()))),
            }
        }
        if any_float {
            Ok(i.heap.alloc(ObjKind::Float(float_sum + int_sum as f64)))
        } else {
            Ok(i.heap.alloc(ObjKind::Int(int_sum)))
        }
    });

    builtin!(interp, "min", |i, args, _k| reduce_extreme(i, args, true));
    builtin!(interp, "max", |i, args, _k| reduce_extreme(i, args, false));

    builtin!(interp, "abs", |i, args, _k| {
        need(&args, 1, "abs")?;
        match i.heap.kind(args[0]).clone() {
            ObjKind::Int(v) => Ok(i.heap.alloc(ObjKind::Int(v.abs()))),
            ObjKind::Float(v) => Ok(i.heap.alloc(ObjKind::Float(v.abs()))),
            other => Err(type_err(format!("bad operand for abs(): {}", other.type_tag()))),
        }
    });

    builtin!(interp, "sorted", |i, args, _k| {
        need(&args, 1, "sorted")?;
        let items = i.iterate(args[0])?;
        let copy = i.heap.alloc(ObjKind::List(items));
        i.call_method(copy, "sort", &[], &[])?;
        Ok(copy)
    });

    builtin!(interp, "str", |i, args, _k| {
        need(&args, 1, "str")?;
        let s = repr::display(&i.heap, args[0]);
        Ok(i.heap.alloc(ObjKind::Str(s)))
    });

    builtin!(interp, "repr", |i, args, _k| {
        need(&args, 1, "repr")?;
        let s = repr::repr(&i.heap, args[0]);
        Ok(i.heap.alloc(ObjKind::Str(s)))
    });

    builtin!(interp, "int", |i, args, _k| {
        need(&args, 1, "int")?;
        let v = match i.heap.kind(args[0]) {
            ObjKind::Int(v) => *v,
            ObjKind::Float(v) => *v as i64,
            ObjKind::Bool(b) => *b as i64,
            ObjKind::Str(s) => s
                .trim()
                .parse::<i64>()
                .map_err(|_| RunError::new(RunErrorKind::ValueError, format!("invalid int literal: `{s}`")))?,
            other => return Err(type_err(format!("cannot convert {} to int", other.type_tag()))),
        };
        Ok(i.heap.alloc(ObjKind::Int(v)))
    });

    builtin!(interp, "float", |i, args, _k| {
        need(&args, 1, "float")?;
        let v = i.expect_float(args[0]).or_else(|_| {
            let s = i.expect_str(args[0])?;
            s.trim()
                .parse::<f64>()
                .map_err(|_| RunError::new(RunErrorKind::ValueError, format!("invalid float literal: `{s}`")))
        })?;
        Ok(i.heap.alloc(ObjKind::Float(v)))
    });

    builtin!(interp, "bool", |i, args, _k| {
        need(&args, 1, "bool")?;
        let b = i.truthy(args[0])?;
        Ok(i.heap.alloc(ObjKind::Bool(b)))
    });

    builtin!(interp, "list", |i, args, _k| {
        if args.is_empty() {
            return Ok(i.heap.alloc(ObjKind::List(Vec::new())));
        }
        need(&args, 1, "list")?;
        let items = i.iterate(args[0])?;
        Ok(i.heap.alloc(ObjKind::List(items)))
    });

    builtin!(interp, "tuple", |i, args, _k| {
        need(&args, 1, "tuple")?;
        let items = i.iterate(args[0])?;
        Ok(i.heap.alloc(ObjKind::Tuple(items)))
    });

    builtin!(interp, "set", |i, args, _k| {
        if args.is_empty() {
            return Ok(i.heap.alloc(ObjKind::Set(Vec::new())));
        }
        need(&args, 1, "set")?;
        let items = i.iterate(args[0])?;
        let mut uniq: Vec<ObjId> = Vec::new();
        for v in items {
            if !uniq.iter().any(|u| i.value_eq(*u, v)) {
                uniq.push(v);
            }
        }
        Ok(i.heap.alloc(ObjKind::Set(uniq)))
    });

    builtin!(interp, "type", |i, args, _k| {
        need(&args, 1, "type")?;
        let tag = i.heap.kind(args[0]).type_tag().to_string();
        Ok(i.heap.alloc(ObjKind::Str(tag)))
    });

    builtin!(interp, "id", |i, args, _k| {
        need(&args, 1, "id")?;
        let addr = i.heap.addr(args[0]);
        Ok(i.heap.alloc(ObjKind::Int(addr as i64)))
    });

    // ------------------------------------------------------------------
    // data constructors

    builtin!(interp, "Object", |i, args, _k| {
        if !args.is_empty() {
            return Err(type_err("Object() takes no arguments"));
        }
        Ok(i.heap.alloc(ObjKind::Instance {
            class_name: "Object".to_string(),
            attrs: Vec::new(),
        }))
    });

    builtin!(interp, "zeros", |i, args, _k| {
        need(&args, 1, "zeros")?;
        let n = i.expect_int(args[0])?.max(0) as usize;
        Ok(i.heap.alloc(ObjKind::NdArray(vec![0.0; n])))
    });

    builtin!(interp, "ones", |i, args, _k| {
        need(&args, 1, "ones")?;
        let n = i.expect_int(args[0])?.max(0) as usize;
        Ok(i.heap.alloc(ObjKind::NdArray(vec![1.0; n])))
    });

    builtin!(interp, "arange", |i, args, _k| {
        need(&args, 1, "arange")?;
        let n = i.expect_int(args[0])?.max(0) as usize;
        Ok(i.heap.alloc(ObjKind::NdArray((0..n).map(|v| v as f64).collect())))
    });

    // Nondeterministic array: draws from the session RNG, so re-running the
    // cell produces different values (Python's unseeded `np.random.randn`).
    builtin!(interp, "randn", |i, args, _k| {
        need(&args, 1, "randn")?;
        let n = i.expect_int(args[0])?.max(0) as usize;
        let values: Vec<f64> = (0..n).map(|_| i.next_random() * 2.0 - 1.0).collect();
        Ok(i.heap.alloc(ObjKind::NdArray(values)))
    });

    // Deterministic array: fully determined by the explicit seed.
    builtin!(interp, "randn_seeded", |i, args, _k| {
        need(&args, 2, "randn_seeded")?;
        let n = i.expect_int(args[0])?.max(0) as usize;
        let seed = i.expect_int(args[1])? as u64;
        Ok(i.heap.alloc(ObjKind::NdArray(seeded_values(n, seed))))
    });

    builtin!(interp, "series", |i, args, _k| {
        need(&args, 2, "series")?;
        let name = i.expect_str(args[0])?.to_string();
        let values = args[1];
        match i.heap.kind(values) {
            ObjKind::List(_) | ObjKind::NdArray(_) => {}
            other => {
                return Err(type_err(format!(
                    "series() values must be list or ndarray, got {}",
                    other.type_tag()
                )))
            }
        }
        Ok(i.heap.alloc(ObjKind::Series { name, values }))
    });

    // read_csv(name, rows, cols, seed) -> DataFrame of seeded numeric
    // columns. The synthetic stand-in for loading a dataset from disk.
    builtin!(interp, "read_csv", |i, args, _k| {
        need(&args, 4, "read_csv")?;
        let _name = i.expect_str(args[0])?.to_string();
        let rows = i.expect_int(args[1])?.max(0) as usize;
        let cols = i.expect_int(args[2])?.max(0) as usize;
        let seed = i.expect_int(args[3])? as u64;
        // Simulated parse latency: loading data from disk is not free in a
        // real notebook (see kishu_kernel::simcost).
        kishu_kernel::simcost::charge_bytes(
            (rows * cols * 8) as u64,
            kishu_kernel::simcost::CSV_PARSE_BPS,
        );
        let mut columns = Vec::with_capacity(cols);
        for c in 0..cols {
            let values = seeded_values(rows, seed.wrapping_add(c as u64));
            let col = i.heap.alloc(ObjKind::NdArray(values));
            columns.push((format!("c{c}"), col));
        }
        Ok(i.heap.alloc(ObjKind::DataFrame(columns)))
    });

    builtin!(interp, "dataframe", |i, args, _k| {
        need(&args, 1, "dataframe")?;
        let pairs = match i.heap.kind(args[0]).clone() {
            ObjKind::Dict(pairs) => pairs,
            other => {
                return Err(type_err(format!(
                    "dataframe() expects dict of columns, got {}",
                    other.type_tag()
                )))
            }
        };
        let mut columns = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            let name = i.expect_str(k)?.to_string();
            columns.push((name, v));
        }
        Ok(i.heap.alloc(ObjKind::DataFrame(columns)))
    });

    builtin!(interp, "enumerate", |i, args, _k| {
        need(&args, 1, "enumerate")?;
        let items = i.iterate(args[0])?;
        let pairs: Vec<ObjId> = items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| {
                let n = i.heap.alloc(ObjKind::Int(idx as i64));
                i.heap.alloc(ObjKind::Tuple(vec![n, item]))
            })
            .collect();
        Ok(i.heap.alloc(ObjKind::List(pairs)))
    });

    builtin!(interp, "zip", |i, args, _k| {
        need(&args, 2, "zip")?;
        let a = i.iterate(args[0])?;
        let b = i.iterate(args[1])?;
        let pairs: Vec<ObjId> = a
            .into_iter()
            .zip(b)
            .map(|(x, y)| i.heap.alloc(ObjKind::Tuple(vec![x, y])))
            .collect();
        Ok(i.heap.alloc(ObjKind::List(pairs)))
    });

    builtin!(interp, "round", |i, args, _k| {
        if args.is_empty() || args.len() > 2 {
            return Err(type_err("round() takes 1-2 arguments"));
        }
        let v = i.expect_float(args[0])?;
        if args.len() == 2 {
            let nd = i.expect_int(args[1])?.clamp(0, 12) as u32;
            let scale = 10f64.powi(nd as i32);
            Ok(i.heap.alloc(ObjKind::Float((v * scale).round() / scale)))
        } else {
            Ok(i.heap.alloc(ObjKind::Int(v.round() as i64)))
        }
    });

    builtin!(interp, "pow", |i, args, _k| {
        need(&args, 2, "pow")?;
        let a = i.expect_float(args[0])?;
        let b = i.expect_float(args[1])?;
        let out = a.powf(b);
        // int ** non-negative int stays int, like Python.
        match (i.heap.kind(args[0]), i.heap.kind(args[1])) {
            (ObjKind::Int(_), ObjKind::Int(e)) if *e >= 0 => {
                Ok(i.heap.alloc(ObjKind::Int(out as i64)))
            }
            _ => Ok(i.heap.alloc(ObjKind::Float(out))),
        }
    });

    builtin!(interp, "any", |i, args, _k| {
        need(&args, 1, "any")?;
        let items = i.iterate(args[0])?;
        for item in items {
            if i.truthy(item)? {
                return Ok(i.heap.alloc(ObjKind::Bool(true)));
            }
        }
        Ok(i.heap.alloc(ObjKind::Bool(false)))
    });

    builtin!(interp, "all", |i, args, _k| {
        need(&args, 1, "all")?;
        let items = i.iterate(args[0])?;
        for item in items {
            if !i.truthy(item)? {
                return Ok(i.heap.alloc(ObjKind::Bool(false)));
            }
        }
        Ok(i.heap.alloc(ObjKind::Bool(true)))
    });

    builtin!(interp, "make_generator", |i, args, _k| {
        if !args.is_empty() {
            return Err(type_err("make_generator() takes no arguments"));
        }
        let token = i.heap.fresh_token();
        Ok(i.heap.alloc(ObjKind::Generator { token }))
    });
}

fn reduce_extreme(i: &mut Interp, args: Vec<ObjId>, want_min: bool) -> Result<ObjId, RunError> {
    let items = if args.len() == 1 {
        i.iterate(args[0])?
    } else {
        args
    };
    if items.is_empty() {
        return Err(RunError::new(RunErrorKind::ValueError, "empty sequence"));
    }
    let mut best = items[0];
    for item in &items[1..] {
        let a = i.expect_float(*item)?;
        let b = i.expect_float(best)?;
        if (want_min && a < b) || (!want_min && a > b) {
            best = *item;
        }
    }
    Ok(best)
}

/// Deterministic pseudo-random values from a seed (splitmix64-based).
pub fn seeded_values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    fn eval_repr(src: &str) -> String {
        let mut i = Interp::new();
        let out = i.run_cell(src).expect("parses");
        if let Some(e) = out.error {
            panic!("cell failed: {e}");
        }
        out.value_repr.unwrap_or_default()
    }

    #[test]
    fn arithmetic_builtins() {
        assert_eq!(eval_repr("len([1, 2, 3])\n"), "3");
        assert_eq!(eval_repr("sum(range(5))\n"), "10");
        assert_eq!(eval_repr("min(3, 1, 2)\n"), "1");
        assert_eq!(eval_repr("max([4, 9, 2])\n"), "9");
        assert_eq!(eval_repr("abs(-7)\n"), "7");
    }

    #[test]
    fn conversions() {
        assert_eq!(eval_repr("int('42')\n"), "42");
        assert_eq!(eval_repr("float(3)\n"), "3.0");
        assert_eq!(eval_repr("str(12)\n"), "'12'");
        assert_eq!(eval_repr("bool([])\n"), "False");
        assert_eq!(eval_repr("list('ab')\n"), "['a', 'b']");
    }

    #[test]
    fn sorted_is_non_destructive() {
        let mut i = Interp::new();
        let out = i.run_cell("a = [3, 1, 2]\nb = sorted(a)\na\n").expect("runs");
        assert!(out.ok());
        assert_eq!(out.value_repr.expect("value"), "[3, 1, 2]");
    }

    #[test]
    fn range_variants() {
        assert_eq!(eval_repr("range(3)\n"), "[0, 1, 2]");
        assert_eq!(eval_repr("range(1, 4)\n"), "[1, 2, 3]");
        assert_eq!(eval_repr("range(6, 0, -2)\n"), "[6, 4, 2]");
    }

    #[test]
    fn seeded_values_are_reproducible() {
        assert_eq!(seeded_values(16, 7), seeded_values(16, 7));
        assert_ne!(seeded_values(16, 7), seeded_values(16, 8));
    }

    #[test]
    fn randn_is_nondeterministic_across_reruns() {
        let mut i = Interp::new();
        i.run_cell("a = randn(4)\n").expect("runs");
        i.run_cell("b = randn(4)\n").expect("runs");
        let a = i.globals.peek("a").expect("a");
        let b = i.globals.peek("b").expect("b");
        assert!(!i.value_eq(a, b));
    }

    #[test]
    fn randn_seeded_is_deterministic() {
        let mut i = Interp::new();
        i.run_cell("a = randn_seeded(4, 9)\nb = randn_seeded(4, 9)\n").expect("runs");
        let a = i.globals.peek("a").expect("a");
        let b = i.globals.peek("b").expect("b");
        assert!(i.value_eq(a, b));
    }

    #[test]
    fn read_csv_shapes() {
        assert_eq!(eval_repr("read_csv('d', 10, 3, 1).shape\n"), "(10, 3)");
    }

    #[test]
    fn object_attribute_bag() {
        let mut i = Interp::new();
        let out = i.run_cell("o = Object()\no.foo = 1\no.foo + 1\n").expect("runs");
        assert!(out.ok());
        assert_eq!(out.value_repr.expect("value"), "2");
    }

    #[test]
    fn print_captures_output() {
        let mut i = Interp::new();
        let out = i.run_cell("print('hello', 42)\n").expect("runs");
        assert_eq!(out.output, vec!["hello 42".to_string()]);
    }

    #[test]
    fn enumerate_and_zip() {
        assert_eq!(eval_repr("enumerate(['a', 'b'])\n"), "[(0, 'a'), (1, 'b')]");
        assert_eq!(eval_repr("zip([1, 2], ['x', 'y'])\n"), "[(1, 'x'), (2, 'y')]");
        assert_eq!(eval_repr("zip([1, 2, 3], [4])\n"), "[(1, 4)]");
        let mut i = Interp::new();
        let out = i
            .run_cell("total = 0\nfor pair in enumerate([10, 20]):\n    total += pair[0] * pair[1]\ntotal\n")
            .expect("runs");
        assert_eq!(out.value_repr.as_deref(), Some("20"));
    }

    #[test]
    fn round_pow_any_all() {
        assert_eq!(eval_repr("round(2.6)\n"), "3");
        assert_eq!(eval_repr("round(2.345, 2)\n"), "2.35");
        assert_eq!(eval_repr("pow(2, 10)\n"), "1024");
        assert_eq!(eval_repr("pow(2.0, 0.5)\n"), "1.4142135623730951");
        assert_eq!(eval_repr("any([0, 0, 3])\n"), "True");
        assert_eq!(eval_repr("any([])\n"), "False");
        assert_eq!(eval_repr("all([1, 2])\n"), "True");
        assert_eq!(eval_repr("all([1, 0])\n"), "False");
    }

    #[test]
    fn generator_is_opaque() {
        let mut i = Interp::new();
        let out = i.run_cell("g = make_generator()\n").expect("runs");
        assert!(out.ok());
        let g = i.globals.peek("g").expect("g");
        assert!(!i.heap.kind(g).is_traversable());
    }
}
