//! XXH64 — re-exported from [`kishu_testkit::hash`].
//!
//! The implementation started here (it is the §6.2 array fast path) but
//! moved into the testkit when the storage layer grew a content-addressed
//! dedup index and keyed fault injection: `kishu-storage` cannot depend on
//! `kishu` (the dependency points the other way), and the workspace policy
//! is that shared zero-dependency utilities live in `kishu-testkit`. This
//! module keeps every existing `kishu::xxh64::*` import working.

pub use kishu_testkit::hash::{xxh64, xxh64_f64s, xxh64_str};
