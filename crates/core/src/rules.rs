//! Rule-based static cell analysis (§6.2's second extension).
//!
//! Kishu's update detection is always sound but pays a VarGraph
//! regeneration for every accessed co-variable — even for the read-only
//! printing cells §7.6 highlights (`y_train[:10]`, `df.head` inspections),
//! where the paper observes up to 1.06× overhead for zero state change.
//! The paper proposes rule-based identification of such *statically
//! read-only* cells as future work; this module implements the
//! conservative version:
//!
//! A cell is **provably read-only** when every statement is a bare
//! expression whose calls are restricted to a whitelist of pure builtins
//! and pure methods. Assignments, deletions, augmented assignments, loops
//! (whose bodies could mutate), user-function calls (arbitrary effects),
//! and any non-whitelisted call disqualify the cell. For qualifying cells
//! the delta detector is skipped entirely — sound because the interpreter
//! cannot mutate the heap while evaluating such expressions.

use kishu_minipy::ast::{Expr, Stmt};

/// Builtins that never mutate state.
const PURE_BUILTINS: [&str; 12] = [
    "print", "len", "sum", "min", "max", "abs", "str", "repr", "type", "id", "bool", "float",
];

/// Methods that never mutate their receiver (read-only views/reductions).
const PURE_METHODS: [&str; 12] = [
    "head", "mean", "std", "describe", "keys", "values", "items", "copy", "count", "index",
    "tolist", "score",
];

/// Whether a parsed cell is provably read-only under the rules above.
pub fn cell_is_read_only(program: &[Stmt]) -> bool {
    !program.is_empty() && program.iter().all(stmt_is_read_only)
}

fn stmt_is_read_only(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Expr(e) => expr_is_read_only(e),
        Stmt::Pass => true,
        _ => false,
    }
}

fn expr_is_read_only(e: &Expr) -> bool {
    match e {
        Expr::None
        | Expr::Bool(_)
        | Expr::Int(_)
        | Expr::Float(_)
        | Expr::Str(_)
        | Expr::Name(_) => true,
        Expr::List(items) | Expr::Tuple(items) | Expr::Set(items) => {
            items.iter().all(expr_is_read_only)
        }
        Expr::Dict(pairs) => pairs
            .iter()
            .all(|(k, v)| expr_is_read_only(k) && expr_is_read_only(v)),
        Expr::BinOp { left, right, .. } => expr_is_read_only(left) && expr_is_read_only(right),
        Expr::Unary { operand, .. } => expr_is_read_only(operand),
        Expr::BoolOp { operands, .. } => operands.iter().all(expr_is_read_only),
        Expr::Compare { left, rest } => {
            expr_is_read_only(left) && rest.iter().all(|(_, e)| expr_is_read_only(e))
        }
        Expr::Attr(obj, _) => expr_is_read_only(obj),
        Expr::Index(obj, idx) => expr_is_read_only(obj) && expr_is_read_only(idx),
        Expr::Slice(lo, hi) => {
            lo.as_deref().map(expr_is_read_only).unwrap_or(true)
                && hi.as_deref().map(expr_is_read_only).unwrap_or(true)
        }
        Expr::Call { func, args, kwargs } => {
            let callee_ok = match func.as_ref() {
                // Whitelisted pure builtin by bare name.
                Expr::Name(n) => PURE_BUILTINS.contains(&n.as_str()),
                // Whitelisted pure method on a read-only receiver.
                Expr::Attr(obj, method) => {
                    PURE_METHODS.contains(&method.as_str()) && expr_is_read_only(obj)
                }
                _ => false,
            };
            callee_ok
                && args.iter().all(expr_is_read_only)
                && kwargs.iter().all(|(_, e)| expr_is_read_only(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_minipy::parse_program;

    fn read_only(src: &str) -> bool {
        cell_is_read_only(&parse_program(src).expect("parses"))
    }

    #[test]
    fn printing_and_slicing_cells_qualify() {
        assert!(read_only("y_train[:10]\n"));
        assert!(read_only("print(df.head(5))\n"));
        assert!(read_only("len(sad_ls)\n"));
        assert!(read_only("df.describe()\n"));
        assert!(read_only("x + y * 2\n"));
        assert!(read_only("d.keys()\n"));
        assert!(read_only("a[0] == b.attr\n"));
    }

    #[test]
    fn mutating_cells_do_not_qualify() {
        assert!(!read_only("x = 1\n"));
        assert!(!read_only("ls.append(1)\n"));
        assert!(!read_only("del x\n"));
        assert!(!read_only("x += 1\n"));
        assert!(!read_only("for k in range(3):\n    pass\n"));
        assert!(!read_only("model.fit(3)\n"));
        assert!(!read_only("custom_function(x)\n"), "user calls have effects");
        assert!(!read_only("print(poke())\n"), "nested unknown call");
        assert!(!read_only(""), "empty cells are not classified");
    }

    #[test]
    fn whitelisted_method_on_mutating_receiver_is_rejected() {
        // The receiver expression itself must be read-only too.
        assert!(!read_only("f(x).head(3)\n"));
    }
}
