//! The Checkpoint Graph (§5.1): branch-based versioning of session states.
//!
//! A directed tree of incremental checkpoints, analogous to Git's commit
//! graph. Each node holds (1) the *versioned co-variables* updated by its
//! cell execution (the state delta), (2) the cell's code, and (3) the
//! versioned co-variables the cell accessed — update, operation, and
//! dependencies, in database-logging terms. The head tracks the user's
//! current state; a checkout moves it, and the next cell execution starts a
//! new branch (Fig 9/10).
//!
//! Session states (Definition 5) are reconstructed by walking a node's
//! ancestor chain and taking, for every co-variable, the *youngest* version
//! on the path that has not been deleted since — which makes the state-diff
//! computation linear in the number of cell executions on the two paths,
//! the scaling Fig 19 measures.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use kishu_testkit::json::Json;

use crate::covariable::CoVarKey;

/// Identifier of a checkpoint node (the paper's `checkpoint_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A versioned co-variable as stored in a node's delta: the member names
/// plus where (and whether) its bytes were written.
#[derive(Debug, Clone)]
pub struct StoredCoVar {
    /// Member variable names (the co-variable's identity).
    pub names: CoVarKey,
    /// Blob id in the checkpoint store; `None` when serialization failed or
    /// was blocklisted — restoration then uses fallback recomputation.
    pub blob: Option<u64>,
    /// Stored payload size in bytes (0 when skipped).
    pub bytes: u64,
}

/// One checkpoint: the result of one cell execution.
#[derive(Debug, Clone)]
pub struct CpNode {
    /// Parent node (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Distance from the root (for LCA stepping).
    pub depth: u32,
    /// Logical timestamp (monotone per session).
    pub timestamp: u64,
    /// Source code of the cell execution this node checkpoints.
    pub cell_code: String,
    /// The state delta: versioned co-variables updated by this cell.
    pub delta: Vec<StoredCoVar>,
    /// Co-variable keys that ceased to exist at this cell (deletions,
    /// splits, merges).
    pub deleted: Vec<CoVarKey>,
    /// Versioned co-variables this cell read: `(key, version node)` —
    /// the inputs fallback recomputation loads before re-running the cell.
    pub deps: Vec<(CoVarKey, NodeId)>,
}

/// The tree of checkpoints plus the head pointer.
#[derive(Debug, Clone)]
pub struct CheckpointGraph {
    nodes: Vec<CpNode>,
    head: NodeId,
    next_timestamp: u64,
}

/// What a checkout must do: which versioned co-variables to load and which
/// current co-variables to drop (§5.2's state difference).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckoutPlan {
    /// Diverged co-variables to load, with the version (node) to load from.
    pub load: Vec<(CoVarKey, NodeId)>,
    /// Co-variables present now but absent in the target state: their
    /// variables must be deleted.
    pub remove: Vec<CoVarKey>,
    /// Co-variables identical between the states (left untouched — the
    /// entire point of incremental checkout).
    pub identical: Vec<CoVarKey>,
}

impl Default for CheckpointGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl CheckpointGraph {
    /// New graph containing only the root node (the empty pre-session
    /// state).
    pub fn new() -> Self {
        CheckpointGraph {
            nodes: vec![CpNode {
                parent: None,
                depth: 0,
                timestamp: 0,
                cell_code: String::new(),
                delta: Vec::new(),
                deleted: Vec::new(),
                deps: Vec::new(),
            }],
            head: NodeId(0),
            next_timestamp: 1,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The current head node.
    pub fn head(&self) -> NodeId {
        self.head
    }

    /// Move the head (used by checkout).
    pub fn set_head(&mut self, id: NodeId) {
        assert!(self.contains(id), "head must be an existing node");
        self.head = id;
    }

    /// Whether `id` names an existing node.
    pub fn contains(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &CpNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Append a checkpoint under the current head and advance the head to
    /// it. Returns the new node's id.
    pub fn commit(
        &mut self,
        cell_code: String,
        delta: Vec<StoredCoVar>,
        deleted: Vec<CoVarKey>,
        deps: Vec<(CoVarKey, NodeId)>,
    ) -> NodeId {
        let parent = self.head;
        let id = NodeId(self.nodes.len() as u32);
        let ts = self.next_timestamp;
        self.next_timestamp += 1;
        self.nodes.push(CpNode {
            parent: Some(parent),
            depth: self.node(parent).depth + 1,
            timestamp: ts,
            cell_code,
            delta,
            deleted,
            deps,
        });
        self.head = id;
        id
    }

    /// Iterator over `id` and its ancestors up to the root.
    pub fn ancestors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = Some(id);
        std::iter::from_fn(move || {
            let here = cur?;
            cur = self.node(here).parent;
            Some(here)
        })
    }

    /// Lowest common ancestor of two nodes (depth-stepping walk — the
    /// "off-the-shelf algorithm" of §7.7.2, linear in the branch lengths).
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.node(a).depth > self.node(b).depth {
            a = self.node(a).parent.expect("deeper node has a parent");
        }
        while self.node(b).depth > self.node(a).depth {
            b = self.node(b).parent.expect("deeper node has a parent");
        }
        while a != b {
            a = self.node(a).parent.expect("non-root while differing");
            b = self.node(b).parent.expect("non-root while differing");
        }
        a
    }

    /// Lowest common ancestor via binary lifting: O(log depth) per query
    /// after an O(n log n) jump-table build. The ablation partner of
    /// [`Self::lca`] (the paper uses the off-the-shelf linear walk, noting
    /// diff time stays ≤81 ms at 1000 cells; this shows the headroom).
    pub fn lca_index(&self) -> LcaIndex {
        let n = self.nodes.len();
        let levels = (usize::BITS - n.leading_zeros()).max(1) as usize;
        let mut up = vec![vec![NodeId(0); n]; levels];
        for (i, node) in self.nodes.iter().enumerate() {
            up[0][i] = node.parent.unwrap_or(NodeId(i as u32));
        }
        for l in 1..levels {
            for i in 0..n {
                let half = up[l - 1][i];
                up[l][i] = up[l - 1][half.0 as usize];
            }
        }
        let depths = self.nodes.iter().map(|n| n.depth).collect();
        LcaIndex { up, depths }
    }

    /// The session state at node `t` (Definition 5): every co-variable
    /// live after CE `t`, mapped to the node holding its current version.
    pub fn state_at(&self, t: NodeId) -> BTreeMap<CoVarKey, NodeId> {
        let mut state: BTreeMap<CoVarKey, NodeId> = BTreeMap::new();
        let mut dead: BTreeSet<CoVarKey> = BTreeSet::new();
        for node_id in self.ancestors(t) {
            let node = self.node(node_id);
            // Walking young → old: the first mention of a key wins.
            for sc in &node.delta {
                if !state.contains_key(&sc.names) && !dead.contains(&sc.names) {
                    state.insert(sc.names.clone(), node_id);
                }
            }
            for key in &node.deleted {
                if !state.contains_key(key) {
                    dead.insert(key.clone());
                }
            }
        }
        state
    }

    /// Definition 6: whether co-variable `x` is identical between the
    /// states of `a` and `b` — a version `(x, t_c)` exists in the states of
    /// `a`, `b`, and their lowest common ancestor `c`.
    pub fn identical(&self, x: &CoVarKey, a: NodeId, b: NodeId) -> bool {
        let c = self.lca(a, b);
        let sa = self.state_at(a);
        let sb = self.state_at(b);
        let sc = self.state_at(c);
        match (sa.get(x), sb.get(x), sc.get(x)) {
            (Some(va), Some(vb), Some(vc)) => va == vb && vb == vc,
            _ => false,
        }
    }

    /// Compute the checkout plan from `current` to `target`: which
    /// co-variables diverged (load), which must be removed, which are
    /// identical (§5.2).
    pub fn diff(&self, current: NodeId, target: NodeId) -> CheckoutPlan {
        let cur = self.state_at(current);
        let tgt = self.state_at(target);
        let mut load = Vec::new();
        let mut identical = Vec::new();
        for (key, version) in &tgt {
            match cur.get(key) {
                Some(v) if v == version => identical.push(key.clone()),
                _ => load.push((key.clone(), *version)),
            }
        }
        let remove: Vec<CoVarKey> = cur
            .keys()
            .filter(|k| !tgt.contains_key(*k))
            .cloned()
            .collect();
        CheckoutPlan {
            load,
            remove,
            identical,
        }
    }

    /// Find the stored co-variable record for `(key, version)`.
    pub fn stored(&self, key: &CoVarKey, version: NodeId) -> Option<&StoredCoVar> {
        self.node(version).delta.iter().find(|sc| &sc.names == key)
    }

    /// Backfill a co-variable's storage location after a deferred
    /// (think-time) serialization completed (§2.2's think-time
    /// exploitation).
    pub fn set_stored(&mut self, version: NodeId, key: &CoVarKey, blob: u64, bytes: u64) {
        if let Some(sc) = self.nodes[version.0 as usize]
            .delta
            .iter_mut()
            .find(|sc| &sc.names == key)
        {
            sc.blob = Some(blob);
            sc.bytes = bytes;
        }
    }

    /// Serialized size of the graph metadata in bytes (the Fig 19 metric).
    pub fn metadata_bytes(&self) -> usize {
        self.to_json().dump().len()
    }

    /// Serialize to the persisted JSON form. The layout (field names and
    /// order) is the checkpoint blob format and is pinned by a
    /// golden-bytes test: changing it breaks `resume()` on existing
    /// stores, so bump `format_version` and keep a reader for old blobs
    /// if it ever has to evolve.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format_version", Json::Int(1)),
            ("head", Json::Int(self.head.0 as i64)),
            ("next_timestamp", int_u64(self.next_timestamp)),
            (
                "nodes",
                Json::Array(self.nodes.iter().map(node_to_json).collect()),
            ),
        ])
    }

    /// Parse a graph from the persisted JSON form, validating structural
    /// invariants (parents precede children, head in range).
    pub fn from_json(json: &Json) -> Result<CheckpointGraph, String> {
        let version = json
            .get("format_version")
            .and_then(Json::as_i64)
            .ok_or("missing format_version")?;
        if version != 1 {
            return Err(format!("unsupported graph format_version {version}"));
        }
        let head = NodeId(
            json.get("head")
                .and_then(Json::as_u64)
                .ok_or("missing head")? as u32,
        );
        let next_timestamp = json
            .get("next_timestamp")
            .and_then(Json::as_u64)
            .ok_or("missing next_timestamp")?;
        let nodes: Vec<CpNode> = json
            .get("nodes")
            .and_then(Json::as_array)
            .ok_or("missing nodes")?
            .iter()
            .map(node_from_json)
            .collect::<Result<_, _>>()?;
        if nodes.is_empty() {
            return Err("graph has no root node".into());
        }
        if head.0 as usize >= nodes.len() {
            return Err(format!("head {} out of range", head.0));
        }
        for (i, node) in nodes.iter().enumerate() {
            match node.parent {
                None if i != 0 => return Err(format!("non-root node {i} has no parent")),
                Some(p) if p.0 as usize >= i => {
                    return Err(format!("node {i} has forward parent {}", p.0))
                }
                _ => {}
            }
        }
        Ok(CheckpointGraph {
            nodes,
            head,
            next_timestamp,
        })
    }

    /// Children of a node (computed; the tree stores parent pointers).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(id))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Human-readable log of all checkpoints (the `log` command).
    pub fn log(&self) -> Vec<String> {
        let mut map: HashMap<NodeId, char> = HashMap::new();
        map.insert(self.head, '*');
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let id = NodeId(i as u32);
                let marker = map.get(&id).copied().unwrap_or(' ');
                let code = n.cell_code.lines().next().unwrap_or("").trim();
                format!(
                    "{marker}[{}] parent={:?} t={} delta={} : {}",
                    i,
                    n.parent.map(|p| p.0),
                    n.timestamp,
                    n.delta.len(),
                    code
                )
            })
            .collect()
    }
}

/// Precomputed binary-lifting jump tables for O(log n) LCA queries.
#[derive(Debug, Clone)]
pub struct LcaIndex {
    up: Vec<Vec<NodeId>>,
    depths: Vec<u32>,
}

impl LcaIndex {
    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        if self.depths[a.0 as usize] < self.depths[b.0 as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        // Lift `a` to `b`'s depth.
        let mut diff = self.depths[a.0 as usize] - self.depths[b.0 as usize];
        let mut level = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                a = self.up[level][a.0 as usize];
            }
            diff >>= 1;
            level += 1;
        }
        if a == b {
            return a;
        }
        for l in (0..self.up.len()).rev() {
            if self.up[l][a.0 as usize] != self.up[l][b.0 as usize] {
                a = self.up[l][a.0 as usize];
                b = self.up[l][b.0 as usize];
            }
        }
        self.up[0][a.0 as usize]
    }
}

// --- JSON encoding helpers for the persisted graph format ---------------

fn int_u64(v: u64) -> Json {
    // Blob ids and timestamps are sequential counters, far below i64::MAX;
    // fail loudly rather than silently wrap if that ever changes.
    Json::Int(i64::try_from(v).expect("counter exceeds i64 range"))
}

fn key_to_json(key: &CoVarKey) -> Json {
    Json::Array(key.iter().map(|n| Json::Str(n.clone())).collect())
}

fn key_from_json(json: &Json) -> Result<CoVarKey, String> {
    json.as_array()
        .ok_or("co-variable key is not an array")?
        .iter()
        .map(|n| {
            n.as_str()
                .map(str::to_string)
                .ok_or_else(|| "co-variable member is not a string".to_string())
        })
        .collect()
}

fn node_to_json(node: &CpNode) -> Json {
    Json::obj(vec![
        (
            "parent",
            match node.parent {
                Some(p) => Json::Int(p.0 as i64),
                None => Json::Null,
            },
        ),
        ("depth", Json::Int(node.depth as i64)),
        ("timestamp", int_u64(node.timestamp)),
        ("cell_code", Json::Str(node.cell_code.clone())),
        (
            "delta",
            Json::Array(
                node.delta
                    .iter()
                    .map(|sc| {
                        Json::obj(vec![
                            ("names", key_to_json(&sc.names)),
                            (
                                "blob",
                                match sc.blob {
                                    Some(b) => int_u64(b),
                                    None => Json::Null,
                                },
                            ),
                            ("bytes", int_u64(sc.bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "deleted",
            Json::Array(node.deleted.iter().map(key_to_json).collect()),
        ),
        (
            "deps",
            Json::Array(
                node.deps
                    .iter()
                    .map(|(k, v)| Json::Array(vec![key_to_json(k), Json::Int(v.0 as i64)]))
                    .collect(),
            ),
        ),
    ])
}

fn node_from_json(json: &Json) -> Result<CpNode, String> {
    let parent = match json.get("parent") {
        Some(Json::Null) | None => None,
        Some(p) => Some(NodeId(
            p.as_u64().ok_or("parent is not an integer")? as u32
        )),
    };
    let delta = json
        .get("delta")
        .and_then(Json::as_array)
        .ok_or("missing delta")?
        .iter()
        .map(|sc| {
            Ok(StoredCoVar {
                names: key_from_json(sc.get("names").ok_or("missing names")?)?,
                blob: match sc.get("blob") {
                    Some(Json::Null) | None => None,
                    Some(b) => Some(b.as_u64().ok_or("blob is not an integer")?),
                },
                bytes: sc
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or("missing bytes")?,
            })
        })
        .collect::<Result<_, String>>()?;
    let deleted = json
        .get("deleted")
        .and_then(Json::as_array)
        .ok_or("missing deleted")?
        .iter()
        .map(key_from_json)
        .collect::<Result<_, _>>()?;
    let deps = json
        .get("deps")
        .and_then(Json::as_array)
        .ok_or("missing deps")?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().ok_or("dep is not a pair")?;
            if pair.len() != 2 {
                return Err("dep is not a pair".to_string());
            }
            Ok((
                key_from_json(&pair[0])?,
                NodeId(pair[1].as_u64().ok_or("dep version is not an integer")? as u32),
            ))
        })
        .collect::<Result<_, String>>()?;
    Ok(CpNode {
        parent,
        depth: json
            .get("depth")
            .and_then(Json::as_u64)
            .ok_or("missing depth")? as u32,
        timestamp: json
            .get("timestamp")
            .and_then(Json::as_u64)
            .ok_or("missing timestamp")?,
        cell_code: json
            .get("cell_code")
            .and_then(Json::as_str)
            .ok_or("missing cell_code")?
            .to_string(),
        delta,
        deleted,
        deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariable::key;

    fn stored(names: &[&str]) -> StoredCoVar {
        StoredCoVar {
            names: key(names),
            blob: Some(0),
            bytes: 10,
        }
    }

    /// Build the paper's Fig 10 graph:
    /// t1(df,gmm) -> t2(gmm) -> t3(plot); checkout t1; t4(gmm) -> t5(plot).
    fn fig10() -> (CheckpointGraph, [NodeId; 5]) {
        let mut g = CheckpointGraph::new();
        let t1 = g.commit("df = load(); gmm = init()".into(), vec![stored(&["df"]), stored(&["gmm"])], vec![], vec![]);
        let t2 = g.commit("gmm.fit(k=3)".into(), vec![stored(&["gmm"])], vec![], vec![(key(&["gmm"]), t1)]);
        let t3 = g.commit("plot = gmm.result()".into(), vec![stored(&["plot"])], vec![], vec![(key(&["gmm"]), t2)]);
        g.set_head(t1);
        let t4 = g.commit("gmm.fit(k=10)".into(), vec![stored(&["gmm"])], vec![], vec![(key(&["gmm"]), t1)]);
        let t5 = g.commit("plot = gmm.result()".into(), vec![stored(&["plot"])], vec![], vec![(key(&["gmm"]), t4)]);
        (g, [t1, t2, t3, t4, t5])
    }

    #[test]
    fn commit_advances_head_and_depth() {
        let mut g = CheckpointGraph::new();
        let a = g.commit("x=1".into(), vec![stored(&["x"])], vec![], vec![]);
        assert_eq!(g.head(), a);
        assert_eq!(g.node(a).depth, 1);
        assert_eq!(g.node(a).parent, Some(g.root()));
    }

    #[test]
    fn lca_matches_fig10() {
        let (g, [t1, t2, t3, t4, t5]) = fig10();
        assert_eq!(g.lca(t3, t5), t1);
        assert_eq!(g.lca(t2, t3), t2);
        assert_eq!(g.lca(t5, t5), t5);
        assert_eq!(g.lca(t4, t2), t1);
        assert_eq!(g.lca(t1, g.root()), g.root());
    }

    #[test]
    fn state_at_reconstructs_definition5() {
        let (g, [t1, t2, t3, _, _]) = fig10();
        let s3 = g.state_at(t3);
        // Fig 10 top-left: state t3 = {plot@t3, gmm@t2, df@t1}.
        assert_eq!(s3.get(&key(&["plot"])), Some(&t3));
        assert_eq!(s3.get(&key(&["gmm"])), Some(&t2), "gmm@t1 was overwritten");
        assert_eq!(s3.get(&key(&["df"])), Some(&t1));
        assert_eq!(s3.len(), 3);
    }

    #[test]
    fn identical_and_diverged_match_fig10() {
        let (g, [_, _, t3, _, t5]) = fig10();
        // df is identical between the branches; gmm and plot diverged.
        assert!(g.identical(&key(&["df"]), t5, t3));
        assert!(!g.identical(&key(&["gmm"]), t5, t3));
        assert!(!g.identical(&key(&["plot"]), t5, t3));
    }

    #[test]
    fn diff_loads_only_diverged() {
        let (g, [_, t2, t3, _, t5]) = fig10();
        let plan = g.diff(t5, t3);
        assert!(plan.identical.contains(&key(&["df"])));
        assert!(plan.load.contains(&(key(&["gmm"]), t2)));
        assert!(plan.load.contains(&(key(&["plot"]), t3)));
        assert_eq!(plan.load.len(), 2);
        assert!(plan.remove.is_empty());
    }

    #[test]
    fn diff_removes_covariables_absent_in_target() {
        let mut g = CheckpointGraph::new();
        let t1 = g.commit("a = 1".into(), vec![stored(&["a"])], vec![], vec![]);
        let t2 = g.commit("b = 2".into(), vec![stored(&["b"])], vec![], vec![]);
        let plan = g.diff(t2, t1);
        assert_eq!(plan.remove, vec![key(&["b"])]);
        assert!(plan.load.is_empty());
        assert_eq!(plan.identical, vec![key(&["a"])]);
        let _ = t1;
    }

    #[test]
    fn deletions_tombstone_older_versions() {
        let mut g = CheckpointGraph::new();
        let t1 = g.commit("x = big()".into(), vec![stored(&["x"])], vec![], vec![]);
        let t2 = g.commit("del x".into(), vec![], vec![key(&["x"])], vec![]);
        let s2 = g.state_at(t2);
        assert!(!s2.contains_key(&key(&["x"])), "deleted co-variable is gone");
        let s1 = g.state_at(t1);
        assert!(s1.contains_key(&key(&["x"])), "still present before deletion");
    }

    #[test]
    fn recreation_after_deletion_resolves_to_new_version() {
        let mut g = CheckpointGraph::new();
        let _t1 = g.commit("x = 1".into(), vec![stored(&["x"])], vec![], vec![]);
        let _t2 = g.commit("del x".into(), vec![], vec![key(&["x"])], vec![]);
        let t3 = g.commit("x = 2".into(), vec![stored(&["x"])], vec![], vec![]);
        let s3 = g.state_at(t3);
        assert_eq!(s3.get(&key(&["x"])), Some(&t3));
    }

    #[test]
    fn split_and_merge_keys_version_independently() {
        let mut g = CheckpointGraph::new();
        let _t1 = g.commit(
            "x = [1]; y = x".into(),
            vec![stored(&["x", "y"])],
            vec![],
            vec![],
        );
        let t2 = g.commit(
            "y = [2]".into(),
            vec![stored(&["x"]), stored(&["y"])],
            vec![key(&["x", "y"])],
            vec![],
        );
        let s2 = g.state_at(t2);
        assert_eq!(s2.get(&key(&["x"])), Some(&t2));
        assert_eq!(s2.get(&key(&["y"])), Some(&t2));
        assert!(!s2.contains_key(&key(&["x", "y"])));
    }

    #[test]
    fn metadata_grows_linearly() {
        let mut g = CheckpointGraph::new();
        let mut sizes = Vec::new();
        for i in 0..100 {
            g.commit(format!("cell {i}"), vec![stored(&["v"])], vec![], vec![]);
            if i % 25 == 24 {
                sizes.push(g.metadata_bytes());
            }
        }
        // Roughly linear: each quarter adds a similar amount.
        let d1 = sizes[1] - sizes[0];
        let d3 = sizes[3] - sizes[2];
        assert!((d3 as f64) < 1.5 * d1 as f64, "growth should stay linear: {sizes:?}");
    }

    #[test]
    fn children_and_log() {
        let (g, [t1, t2, _, t4, _]) = fig10();
        let kids = g.children(t1);
        assert!(kids.contains(&t2) && kids.contains(&t4));
        let log = g.log();
        assert_eq!(log.len(), 6);
        assert!(log.iter().any(|l| l.starts_with('*')), "head is marked");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kishu_testkit::prelude::*;

    #[derive(Debug, Clone)]
    enum GraphOp {
        /// Commit a delta of keys (each `v{k%10}`), deleting others.
        Commit(Vec<u8>, Vec<u8>),
        /// Move the head to node `n % len` (branching).
        Checkout(u8),
    }

    fn op_strategy() -> impl Strategy<Value = GraphOp> {
        prop_oneof![
            (
                prop::collection::vec(any::<u8>(), 1..4),
                prop::collection::vec(any::<u8>(), 0..2)
            )
                .prop_map(|(k, d)| GraphOp::Commit(k, d)),
            any::<u8>().prop_map(GraphOp::Checkout),
        ]
    }

    fn key_of(k: u8) -> CoVarKey {
        [format!("v{}", k % 10)].into_iter().collect()
    }

    fn build(ops: &[GraphOp]) -> CheckpointGraph {
        let mut g = CheckpointGraph::new();
        for op in ops {
            match op {
                GraphOp::Commit(keys, dels) => {
                    let delta: Vec<StoredCoVar> = keys
                        .iter()
                        .map(|k| StoredCoVar {
                            names: key_of(*k),
                            blob: None,
                            bytes: 0,
                        })
                        .collect();
                    let deleted: Vec<CoVarKey> = dels
                        .iter()
                        .map(|d| key_of(*d))
                        .filter(|d| !delta.iter().any(|sc| &sc.names == d))
                        .collect();
                    g.commit("cell".into(), delta, deleted, vec![]);
                }
                GraphOp::Checkout(n) => {
                    let target = NodeId(*n as u32 % g.len() as u32);
                    g.set_head(target);
                }
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn lca_laws(ops in prop::collection::vec(op_strategy(), 1..40), a in any::<u8>(), b in any::<u8>()) {
            let g = build(&ops);
            let a = NodeId(a as u32 % g.len() as u32);
            let b = NodeId(b as u32 % g.len() as u32);
            let l = g.lca(a, b);
            prop_assert_eq!(l, g.lca(b, a), "symmetric");
            prop_assert_eq!(g.lca(a, a), a, "idempotent");
            prop_assert!(g.ancestors(a).any(|n| n == l), "lca is an ancestor of a");
            prop_assert!(g.ancestors(b).any(|n| n == l), "lca is an ancestor of b");
        }

        #[test]
        fn diff_partitions_the_target_state(
            ops in prop::collection::vec(op_strategy(), 1..40),
            a in any::<u8>(),
            b in any::<u8>(),
        ) {
            let g = build(&ops);
            let a = NodeId(a as u32 % g.len() as u32);
            let b = NodeId(b as u32 % g.len() as u32);
            let plan = g.diff(a, b);
            let target = g.state_at(b);
            let current = g.state_at(a);
            // load ∪ identical == target keys, disjointly.
            let mut covered: BTreeSet<CoVarKey> = plan.identical.iter().cloned().collect();
            for (k, v) in &plan.load {
                prop_assert_eq!(Some(v), target.get(k), "load version is the target version");
                prop_assert!(covered.insert(k.clone()), "load and identical overlap on {:?}", k);
            }
            let target_keys: BTreeSet<CoVarKey> = target.keys().cloned().collect();
            prop_assert_eq!(covered, target_keys);
            // remove == current − target.
            let expected_remove: BTreeSet<CoVarKey> = current
                .keys()
                .filter(|k| !target.contains_key(*k))
                .cloned()
                .collect();
            let remove: BTreeSet<CoVarKey> = plan.remove.into_iter().collect();
            prop_assert_eq!(remove, expected_remove);
        }

        #[test]
        fn diff_to_self_is_empty(ops in prop::collection::vec(op_strategy(), 1..40), a in any::<u8>()) {
            let g = build(&ops);
            let a = NodeId(a as u32 % g.len() as u32);
            let plan = g.diff(a, a);
            prop_assert!(plan.load.is_empty());
            prop_assert!(plan.remove.is_empty());
            prop_assert_eq!(plan.identical.len(), g.state_at(a).len());
        }

        #[test]
        fn definition6_matches_version_equality(
            ops in prop::collection::vec(op_strategy(), 1..40),
            a in any::<u8>(),
            b in any::<u8>(),
            k in any::<u8>(),
        ) {
            let g = build(&ops);
            let a = NodeId(a as u32 % g.len() as u32);
            let b = NodeId(b as u32 % g.len() as u32);
            let x = key_of(k);
            let same_version = match (g.state_at(a).get(&x), g.state_at(b).get(&x)) {
                (Some(va), Some(vb)) => va == vb,
                _ => false,
            };
            prop_assert_eq!(g.identical(&x, a, b), same_version);
        }

        #[test]
        fn metadata_serializes_and_roundtrips(ops in prop::collection::vec(op_strategy(), 1..25)) {
            let g = build(&ops);
            let text = g.to_json().dump();
            let back = CheckpointGraph::from_json(&Json::parse(&text).expect("parses"))
                .expect("deserializes");
            prop_assert_eq!(back.len(), g.len());
            prop_assert_eq!(back.head(), g.head());
            prop_assert_eq!(back.state_at(g.head()), g.state_at(g.head()));
        }
    }
}

#[cfg(test)]
mod json_format_tests {
    use super::*;
    use crate::covariable::key;

    fn sample_graph() -> CheckpointGraph {
        let mut g = CheckpointGraph::new();
        let t1 = g.commit(
            "df = load()\ngmm = init()".into(),
            vec![
                StoredCoVar { names: key(&["df"]), blob: Some(0), bytes: 128 },
                StoredCoVar { names: key(&["gmm"]), blob: None, bytes: 0 },
            ],
            vec![],
            vec![],
        );
        g.commit(
            "gmm.fit(k=3)".into(),
            vec![StoredCoVar { names: key(&["gmm", "aux"]), blob: Some(1), bytes: 64 }],
            vec![key(&["gmm"])],
            vec![(key(&["gmm"]), t1)],
        );
        g.set_head(t1);
        g
    }

    /// Full-fidelity round trip: every field of every node survives
    /// graph → testkit-JSON text → parse → graph.
    #[test]
    fn json_roundtrip_preserves_every_field() {
        let g = sample_graph();
        let text = g.to_json().dump();
        let back = CheckpointGraph::from_json(&Json::parse(&text).expect("parses"))
            .expect("deserializes");
        assert_eq!(back.len(), g.len());
        assert_eq!(back.head(), g.head());
        for i in 0..g.len() {
            let (a, b) = (g.node(NodeId(i as u32)), back.node(NodeId(i as u32)));
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.cell_code, b.cell_code);
            assert_eq!(a.deleted, b.deleted);
            assert_eq!(a.deps, b.deps);
            assert_eq!(a.delta.len(), b.delta.len());
            for (sa, sb) in a.delta.iter().zip(&b.delta) {
                assert_eq!(sa.names, sb.names);
                assert_eq!(sa.blob, sb.blob);
                assert_eq!(sa.bytes, sb.bytes);
            }
        }
        // Serialization is deterministic: same graph, same bytes.
        assert_eq!(text, back.to_json().dump());
    }

    /// Pins the exact persisted bytes of the checkpoint blob format.
    /// If this test fails, `Session::resume` can no longer read existing
    /// checkpoint stores: bump `format_version` and add a legacy reader
    /// instead of editing the expectation blindly.
    #[test]
    fn golden_bytes_pin_the_blob_format() {
        let golden = concat!(
            r#"{"format_version":1,"head":1,"next_timestamp":3,"nodes":["#,
            r#"{"parent":null,"depth":0,"timestamp":0,"cell_code":"","delta":[],"deleted":[],"deps":[]},"#,
            r#"{"parent":0,"depth":1,"timestamp":1,"cell_code":"df = load()\ngmm = init()","#,
            r#""delta":[{"names":["df"],"blob":0,"bytes":128},{"names":["gmm"],"blob":null,"bytes":0}],"#,
            r#""deleted":[],"deps":[]},"#,
            r#"{"parent":1,"depth":2,"timestamp":2,"cell_code":"gmm.fit(k=3)","#,
            r#""delta":[{"names":["aux","gmm"],"blob":1,"bytes":64}],"#,
            r#""deleted":[["gmm"]],"deps":[[["gmm"],1]]}]}"#,
        );
        assert_eq!(sample_graph().to_json().dump(), golden);
        // And the pinned bytes parse back to a working graph.
        let g = CheckpointGraph::from_json(&Json::parse(golden).expect("parses"))
            .expect("deserializes");
        assert_eq!(g.head(), NodeId(1));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn from_json_rejects_corrupt_graphs() {
        for (label, text) in [
            ("bad version", r#"{"format_version":2,"head":0,"next_timestamp":1,"nodes":[]}"#),
            ("no nodes", r#"{"format_version":1,"head":0,"next_timestamp":1,"nodes":[]}"#),
            (
                "head out of range",
                r#"{"format_version":1,"head":9,"next_timestamp":1,"nodes":[{"parent":null,"depth":0,"timestamp":0,"cell_code":"","delta":[],"deleted":[],"deps":[]}]}"#,
            ),
            (
                "forward parent",
                r#"{"format_version":1,"head":0,"next_timestamp":1,"nodes":[{"parent":1,"depth":0,"timestamp":0,"cell_code":"","delta":[],"deleted":[],"deps":[]}]}"#,
            ),
        ] {
            let json = Json::parse(text).expect("well-formed JSON");
            assert!(CheckpointGraph::from_json(&json).is_err(), "{label} should be rejected");
        }
    }
}

#[cfg(test)]
mod lca_index_tests {
    use super::*;
    use kishu_testkit::prelude::*;

    fn random_tree(parents: &[u8]) -> CheckpointGraph {
        let mut g = CheckpointGraph::new();
        for p in parents {
            let target = NodeId(*p as u32 % g.len() as u32);
            g.set_head(target);
            g.commit("cell".into(), vec![], vec![], vec![]);
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Binary lifting agrees with the linear walk on arbitrary trees.
        #[test]
        fn lca_index_matches_linear_walk(
            parents in prop::collection::vec(any::<u8>(), 1..80),
            a in any::<u8>(),
            b in any::<u8>(),
        ) {
            let g = random_tree(&parents);
            let idx = g.lca_index();
            let a = NodeId(a as u32 % g.len() as u32);
            let b = NodeId(b as u32 % g.len() as u32);
            prop_assert_eq!(idx.lca(a, b), g.lca(a, b));
        }
    }

    #[test]
    fn lca_index_on_a_deep_chain() {
        let mut g = CheckpointGraph::new();
        let mut nodes = vec![g.root()];
        for i in 0..1000 {
            nodes.push(g.commit(format!("c{i}"), vec![], vec![], vec![]));
        }
        let idx = g.lca_index();
        assert_eq!(idx.lca(nodes[1000], nodes[3]), nodes[3]);
        assert_eq!(idx.lca(nodes[500], nodes[500]), nodes[500]);
    }
}
