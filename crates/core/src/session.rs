//! [`KishuSession`]: the end-to-end time-traveling notebook session.
//!
//! Ties every piece together the way Fig 5 draws it: the minipy interpreter
//! is the kernel, its patched namespace produces per-cell access records,
//! the [`DeltaDetector`] turns them into co-variable state deltas, each
//! delta is pickled per co-variable into the [`CheckpointStore`] and
//! committed to the [`CheckpointGraph`], and `checkout` restores any past
//! state by loading only the diverged co-variables — falling back to
//! recursive recomputation (§5.3) when bytes are missing or refuse to load.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kishu_kernel::{simcost, ObjId, ObjKind};
use kishu_libsim::{LibReducer, Registry};
use kishu_minipy::{CellOutcome, Interp, RunError};
use kishu_pickle::{dumps, loads_precharged};
use kishu_storage::{
    content_key, crc32::crc32, BlobCache, BlobId, BlobIndex, CheckpointStore, ContentKey,
    MemoryStore, PutReceipt, StoreStats,
};
use kishu_trace::Trace;

use crate::covariable::CoVarKey;
use crate::delta::DeltaDetector;
use crate::error::KishuError;
use crate::graph::{CheckpointGraph, NodeId, StoredCoVar};

/// Session configuration.
#[derive(Debug, Clone)]
pub struct KishuConfig {
    /// Disable Lemma 1 candidate pruning and verify every co-variable after
    /// every cell (the AblatedKishu "Check all" baseline).
    pub check_all: bool,
    /// Use the XXH64 fast path for array contents in VarGraphs (§6.2).
    pub hash_arrays: bool,
    /// Write an incremental checkpoint after every cell execution.
    pub auto_checkpoint: bool,
    /// Library class names whose co-variables are never stored; checkout
    /// always restores them by fallback recomputation (§6.2's blocklist for
    /// silently erroneous classes).
    pub blocklist: BTreeSet<String>,
    /// Garbage-collect unreachable heap objects after each cell.
    pub gc_after_cell: bool,
    /// Skip delta detection entirely for cells that are *provably
    /// read-only* under the static rules of [`crate::rules`] — the §6.2
    /// rule-based extension targeting the printing cells of §7.6.
    pub rule_based_cells: bool,
    /// Collapse primitive-only lists into digest nodes in VarGraphs — the
    /// §7.6 "list hashing" extension. See
    /// [`crate::vargraph::VarGraphConfig::hash_primitive_lists`].
    pub hash_primitive_lists: bool,
    /// Defer checkpoint serialization into the user's *think time* (§2.2):
    /// `run_cell` commits the node immediately with metadata only, and the
    /// bytes are written by [`KishuSession::flush_pending`] — which is
    /// invoked automatically before the next cell execution or checkout
    /// (the state cannot change in between, so deferral is safe).
    pub defer_serialization: bool,
    /// How many immediate retries a transient checkpoint-store failure
    /// (`io::ErrorKind::Interrupted`) gets on `put`/`get` before the session
    /// degrades: a failed write drops the blob (checkout falls back to
    /// recomputation), a failed read falls back on the spot. Non-transient
    /// errors are never retried.
    pub store_retries: u32,
    /// Worker threads for the checkpoint write pipeline: co-variable
    /// serialization and CRC sealing fan out over a [`kishu_testkit::pool`]
    /// batch; store writes stay sequential on the session thread (in delta
    /// order), so store contents and fault ledgers are byte-identical at
    /// every worker count. `1` is the fully serial path — kept as the
    /// differential-testing oracle. Defaults to the
    /// `KISHU_CHECKPOINT_WORKERS` environment variable when set, else
    /// `min(4, available cores)`.
    pub checkpoint_workers: usize,
    /// Content-addressed blob dedup: before writing a sealed payload, look
    /// its content key up in the session's [`kishu_storage::BlobIndex`] and
    /// reuse the existing blob on a hit — a repeat checkpoint of unchanged
    /// bytes becomes metadata-only. `checkpoint_bytes` still counts the
    /// logical serialized size; the new `bytes_written` metric counts only
    /// physical writes.
    pub dedup_blobs: bool,
    /// Worker threads for the checkout read pipeline: CRC verification and
    /// the simulated decode charge of every fetched blob fan out over a
    /// [`kishu_testkit::pool`] batch; store reads and namespace application
    /// stay sequential on the session thread (in plan order), so checkout
    /// reports, fault ledgers, and the restored namespace are identical at
    /// every worker count. `1` is the fully serial path — kept as the
    /// differential-testing oracle. Defaults to the `KISHU_RESTORE_WORKERS`
    /// environment variable when set, else `min(4, available cores)`.
    pub restore_workers: usize,
    /// Byte budget of the content-addressed checkout read cache
    /// ([`kishu_storage::BlobCache`]); `0` disables it. Payloads that pass
    /// their end-to-end CRC during a checkout are kept (LRU by bytes) under
    /// the same content keys the write-side dedup index uses, so repeated
    /// undo/redo over the same states skips the store read, the CRC pass,
    /// and the decode charge. Defaults to the `KISHU_CHECKOUT_CACHE_BYTES`
    /// environment variable when set, else 32 MiB.
    pub checkout_cache_bytes: u64,
}

/// Default checkpoint pipeline width: `KISHU_CHECKPOINT_WORKERS` when set
/// (clamped to at least 1), else `min(4, available cores)`.
pub fn default_checkpoint_workers() -> usize {
    if let Ok(v) = std::env::var("KISHU_CHECKPOINT_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Default restore pipeline width: `KISHU_RESTORE_WORKERS` when set
/// (clamped to at least 1), else `min(4, available cores)`.
pub fn default_restore_workers() -> usize {
    if let Ok(v) = std::env::var("KISHU_RESTORE_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Default checkout read-cache budget: `KISHU_CHECKOUT_CACHE_BYTES` when
/// set (`0` disables the cache), else 32 MiB.
pub fn default_checkout_cache_bytes() -> u64 {
    if let Ok(v) = std::env::var("KISHU_CHECKOUT_CACHE_BYTES") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n;
        }
    }
    32 * 1024 * 1024
}

impl Default for KishuConfig {
    fn default() -> Self {
        KishuConfig {
            check_all: false,
            hash_arrays: true,
            auto_checkpoint: true,
            blocklist: BTreeSet::new(),
            gc_after_cell: true,
            rule_based_cells: false,
            hash_primitive_lists: false,
            defer_serialization: false,
            store_retries: 2,
            checkpoint_workers: default_checkpoint_workers(),
            dedup_blobs: true,
            restore_workers: default_restore_workers(),
            checkout_cache_bytes: default_checkout_cache_bytes(),
        }
    }
}

/// Run `op`, retrying up to `retries` extra times while it fails with a
/// transient (`Interrupted`) error — the kind `FaultStore` injects for
/// recoverable faults and real kernels return for interrupted syscalls.
fn retry_io<T>(trace: &Trace, retries: u32, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt < retries => {
                attempt += 1;
                trace.counter("store.retry", 1);
            }
            other => return other,
        }
    }
}

/// Per-cell measurements (drives Tables 6 and Figs 13/14/17).
#[derive(Debug, Clone)]
pub struct CellMetrics {
    /// Checkpoint node created for the cell; `None` when `auto_checkpoint`
    /// is off and no node was committed.
    pub node: Option<NodeId>,
    /// Cell execution wall time.
    pub cell_time: Duration,
    /// Delta-detection (tracking) time.
    pub tracking_time: Duration,
    /// Serialization + store-write time.
    pub checkpoint_time: Duration,
    /// Bytes written for this cell's checkpoint.
    pub checkpoint_bytes: u64,
    /// Updated co-variables in the delta.
    pub covars_updated: usize,
    /// Candidate co-variables verified.
    pub candidates_checked: usize,
    /// Co-variables whose bytes were dropped because serialization or the
    /// store failed (checkout will fall back to recomputation). Policy
    /// skips — blocklist, `store_data: false`, pending deferral — do not
    /// count.
    pub blobs_dropped: usize,
    /// Co-variables whose sealed bytes matched an already-written blob and
    /// were deduplicated away (no store write happened).
    pub blobs_deduped: usize,
    /// Physical bytes the store reported appending for this cell (sealed
    /// payloads minus session-level dedup hits; under the v2 chunked
    /// representation, minus chunk dedup and compression too).
    /// `checkpoint_bytes` keeps counting the logical serialized size.
    pub bytes_written: u64,
    /// New chunks this cell's puts stored (0 on stores without a chunk
    /// layer, including tenant views of a shared store).
    pub chunks_written: u64,
    /// Chunks this cell's puts shared with already-stored data.
    pub chunks_deduped: u64,
    /// Bytes the in-tree compressor saved on this cell's written chunks.
    pub bytes_compressed: u64,
    /// Of `checkpoint_time`, the nanoseconds spent serializing + sealing
    /// (the `ckpt.serialize` span — phase 2 of the write pipeline).
    pub serialize_ns: u64,
    /// Of `checkpoint_time`, the nanoseconds spent on sequential store
    /// writes (the `ckpt.write` span — phase 3).
    pub write_ns: u64,
}

/// Aggregated session measurements.
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    /// Per-cell entries in execution order.
    pub cells: Vec<CellMetrics>,
    /// Blocklist checks that encountered an `External` object whose class
    /// the registry could not name. Such an object cannot be cleared
    /// against the blocklist, so the check conservatively treats it as
    /// blocklisted (skip storage, rely on fallback recomputation) and
    /// counts the anomaly here instead of silently passing it.
    pub blocklist_anomalies: usize,
}

impl SessionMetrics {
    /// Total tracking time across cells.
    pub fn total_tracking(&self) -> Duration {
        self.cells.iter().map(|c| c.tracking_time).sum()
    }

    /// Total checkpoint (serialize + write) time across cells.
    pub fn total_checkpoint(&self) -> Duration {
        self.cells.iter().map(|c| c.checkpoint_time).sum()
    }

    /// Total cell execution wall time.
    pub fn total_cell_time(&self) -> Duration {
        self.cells.iter().map(|c| c.cell_time).sum()
    }

    /// Total checkpoint bytes written.
    pub fn total_checkpoint_bytes(&self) -> u64 {
        self.cells.iter().map(|c| c.checkpoint_bytes).sum()
    }

    /// Total co-variable blobs dropped at write time across cells (the
    /// write-side degradation counter).
    pub fn total_blobs_dropped(&self) -> usize {
        self.cells.iter().map(|c| c.blobs_dropped).sum()
    }

    /// Total co-variable blobs deduplicated away across cells.
    pub fn total_blobs_deduped(&self) -> usize {
        self.cells.iter().map(|c| c.blobs_deduped).sum()
    }

    /// Total physical bytes handed to the store across cells.
    pub fn total_bytes_written(&self) -> u64 {
        self.cells.iter().map(|c| c.bytes_written).sum()
    }

    /// Total new chunks stored across cells (0 without a chunk layer).
    pub fn total_chunks_written(&self) -> u64 {
        self.cells.iter().map(|c| c.chunks_written).sum()
    }

    /// Total chunk dedup hits across cells.
    pub fn total_chunks_deduped(&self) -> u64 {
        self.cells.iter().map(|c| c.chunks_deduped).sum()
    }

    /// Total bytes compression saved across cells.
    pub fn total_bytes_compressed(&self) -> u64 {
        self.cells.iter().map(|c| c.bytes_compressed).sum()
    }

    /// Total serialize+seal nanoseconds across cells (phase 2 of the write
    /// pipeline, summed from the per-cell `ckpt.serialize` spans).
    pub fn total_serialize_ns(&self) -> u64 {
        self.cells.iter().map(|c| c.serialize_ns).sum()
    }

    /// Total sequential store-write nanoseconds across cells (phase 3).
    pub fn total_write_ns(&self) -> u64 {
        self.cells.iter().map(|c| c.write_ns).sum()
    }
}

/// Result of [`KishuSession::run_cell`].
#[derive(Debug)]
pub struct CellReport {
    /// Checkpoint node committed for this cell. `None` when
    /// `auto_checkpoint` is off: the head did not move and the previous
    /// head must not be mistaken for this cell's checkpoint.
    pub node: Option<NodeId>,
    /// The interpreter-level outcome (output, value, error, access record).
    pub outcome: CellOutcome,
    /// Updated co-variables (the state delta stored in the checkpoint).
    pub updated: Vec<CoVarKey>,
    /// Tracking (delta detection) time.
    pub tracking_time: Duration,
    /// Checkpoint serialize+write time.
    pub checkpoint_time: Duration,
    /// Bytes written.
    pub checkpoint_bytes: u64,
    /// Co-variables whose bytes were dropped at write time because
    /// serialization or the store failed (degradation counter; checkout
    /// restores them by fallback recomputation).
    pub blobs_dropped: usize,
    /// Co-variables deduplicated against an already-written blob (their
    /// checkpoint became metadata-only).
    pub blobs_deduped: usize,
    /// Physical bytes the store reported appending (dedup hits excluded;
    /// chunk dedup and compression already subtracted where the store runs
    /// the v2 representation).
    pub bytes_written: u64,
    /// New chunks stored for this cell (0 without a chunk layer).
    pub chunks_written: u64,
    /// Chunk dedup hits for this cell.
    pub chunks_deduped: u64,
    /// Bytes compression saved on this cell's written chunks.
    pub bytes_compressed: u64,
    /// `checkpoint_time` in integer nanoseconds, for JSON report emission
    /// and the bench comparator (no `Duration` parsing downstream).
    ///
    /// Derived from the `ckpt` span (one clock read); `serialize_ns` and
    /// `write_ns` below are its phase children, so the per-phase breakdown
    /// never double-clocks the wall total.
    pub ckpt_wall_ns: u64,
    /// Nanoseconds in serialize+seal (the `ckpt.serialize` span).
    pub serialize_ns: u64,
    /// Nanoseconds in sequential store writes (the `ckpt.write` span).
    pub write_ns: u64,
}

/// Result of [`KishuSession::checkout`].
#[derive(Debug)]
pub struct CheckoutReport {
    /// The restored node (new head).
    pub target: NodeId,
    /// Co-variables loaded from checkpoints.
    pub loaded: Vec<CoVarKey>,
    /// Co-variables restored by fallback recomputation (§5.3).
    pub recomputed: Vec<CoVarKey>,
    /// Variables removed from the namespace.
    pub removed: Vec<CoVarKey>,
    /// Co-variables untouched because they were identical (the incremental
    /// win of §5.2).
    pub identical: usize,
    /// Checkpoint bytes read.
    pub bytes_loaded: u64,
    /// End-to-end checkout wall time (includes any think-time flush this
    /// checkout triggered; that time is *not* double-counted into the
    /// originating cell's `checkpoint_time`).
    pub wall_time: Duration,
    /// Stored blobs that failed to read back (I/O error after retries, or
    /// bytes that refused to deserialize) and were swallowed by falling
    /// back to recomputation — the read-side degradation counter.
    pub integrity_failures: usize,
    /// Deferred think-time co-variables this checkout flushed before
    /// restoring (their write time is in `wall_time`).
    pub flushed: usize,
    /// Among `loaded`, the co-variables whose payload was served from the
    /// in-memory read cache — no store read, no CRC pass, no decode charge.
    pub blobs_cached: usize,
    /// `wall_time` in integer nanoseconds, for JSON report emission and the
    /// bench comparator (no `Duration` parsing downstream).
    ///
    /// Derived from the `checkout` span (one clock read); the three phase
    /// fields below come from its child spans, so fetch/verify/apply sum to
    /// at most the wall total — never double-clocked.
    pub co_wall_ns: u64,
    /// Nanoseconds in phase 1 (sequential store reads, `checkout.fetch`).
    pub fetch_ns: u64,
    /// Nanoseconds in phase 2 (pooled CRC verify + decode charge,
    /// `checkout.verify`).
    pub verify_ns: u64,
    /// Nanoseconds in phase 3 (sequential deserialize + namespace apply,
    /// `checkout.apply`, including any fallback recomputation).
    pub apply_ns: u64,
}

/// A time-traveling notebook session.
pub struct KishuSession {
    /// The simulated kernel (public so examples and experiments can inspect
    /// the namespace and heap directly).
    pub interp: Interp,
    registry: Arc<Registry>,
    reducer: LibReducer,
    detector: DeltaDetector,
    graph: CheckpointGraph,
    store: Box<dyn CheckpointStore>,
    config: KishuConfig,
    metrics: SessionMetrics,
    /// Co-variables committed but not yet serialized (think-time deferral).
    pending: Vec<(NodeId, CoVarKey)>,
    /// Allocation high-water mark at the last garbage collection.
    last_gc_allocs: u64,
    /// Content-addressed index over sealed payloads written this session
    /// (advisory; empty after `resume`). See [`KishuConfig::dedup_blobs`].
    blob_index: BlobIndex,
    /// Read-side cache of CRC-verified checkout payloads, keyed by the
    /// content key of the *sealed* bytes (the same keys `blob_index` uses,
    /// so payloads deduplicated on the way in are shared on the way out).
    read_cache: BlobCache,
    /// Blob id → content key of its sealed bytes, learned from successful
    /// checkout reads, so a later read of the same blob can recognize a
    /// cache hit before touching the store.
    blob_keys: HashMap<BlobId, ContentKey>,
    /// Graph-snapshot blobs this session knows about: every id
    /// [`Self::persist`] wrote plus the one [`Self::resume`] recovered
    /// from. Feeds [`Self::live_blobs`] so shared-store GC never reclaims
    /// the snapshot a resume would need.
    snapshot_blobs: Vec<BlobId>,
    /// Observability handle (spans + metrics). Disabled by default unless
    /// `KISHU_TRACE` is set; never consulted for any decision, so enabling
    /// it cannot change behavior. Span guards still time phases while
    /// disabled — that is where the report's wall-clock fields come from.
    trace: Trace,
}

/// Result of the serialize+seal phase: per co-variable, the sealed bytes
/// plus the simulated serialize charge in ns (`None` = unserializable),
/// and then the phase's wall time in nanoseconds.
type SealedBatch = (Vec<Option<(Vec<u8>, u64)>>, u64);

impl KishuSession {
    /// Attach Kishu to a fresh kernel session writing checkpoints to
    /// `store`. This is the `init` step of §3.2: the namespace patch is
    /// armed and the Checkpoint Graph initialized with its root.
    pub fn new(mut store: Box<dyn CheckpointStore>, config: KishuConfig) -> Self {
        let registry = Arc::new(Registry::standard());
        let mut interp = Interp::new();
        kishu_libsim::install(&mut interp, registry.clone());
        let mut vg_config = crate::vargraph::VarGraphConfig::new(registry.clone());
        vg_config.hash_arrays = config.hash_arrays;
        vg_config.hash_primitive_lists = config.hash_primitive_lists;
        let detector = DeltaDetector::with_config(vg_config, config.check_all);
        let mut read_cache = BlobCache::new(config.checkout_cache_bytes);
        let trace = kishu_trace::global().clone();
        store.attach_trace(&trace);
        read_cache.attach_trace(&trace);
        KishuSession {
            interp,
            reducer: LibReducer::new(registry.clone()),
            registry,
            detector,
            graph: CheckpointGraph::new(),
            store,
            config,
            metrics: SessionMetrics::default(),
            pending: Vec::new(),
            last_gc_allocs: 0,
            blob_index: BlobIndex::new(),
            read_cache,
            blob_keys: HashMap::new(),
            snapshot_blobs: Vec::new(),
            trace,
        }
    }

    /// Attach Kishu to a fresh kernel writing checkpoints into tenant
    /// `tenant`'s view of a multi-tenant [`kishu_storage::SharedStore`].
    /// The view is observationally private — dense blob ids, logical
    /// stats — so everything above the store behaves exactly as on a
    /// private store; see `tests/multi_tenant.rs` for the differential
    /// proof.
    pub fn on_shared(
        store: &kishu_storage::SharedStore,
        tenant: &str,
        config: KishuConfig,
    ) -> io::Result<Self> {
        Ok(Self::new(Box::new(store.tenant(tenant)?), config))
    }

    /// Replace the session's observability handle (and re-attach it to the
    /// store and read cache). Purely observational — the differential suite
    /// proves byte-identical behavior with tracing on and off.
    pub fn set_trace(&mut self, trace: &Trace) {
        self.trace = trace.clone();
        self.store.attach_trace(&self.trace);
        self.read_cache.attach_trace(&self.trace);
    }

    /// The session's observability handle.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Session with an in-memory checkpoint store.
    pub fn in_memory(config: KishuConfig) -> Self {
        Self::new(Box::new(MemoryStore::new()), config)
    }

    /// Current head checkpoint.
    pub fn head(&self) -> NodeId {
        self.graph.head()
    }

    /// The checkpoint graph (read-only).
    pub fn graph(&self) -> &CheckpointGraph {
        &self.graph
    }

    /// The class registry this session simulates libraries from.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Storage accounting.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Checkout read-cache counters (hits/misses/evictions/residency).
    pub fn read_cache_stats(&self) -> kishu_storage::CacheStats {
        self.read_cache.stats()
    }

    /// The checkpoint store (read-only), so differential tests can compare
    /// store contents byte-for-byte across pipeline configurations.
    pub fn store(&self) -> &dyn CheckpointStore {
        self.store.as_ref()
    }

    /// Serialize and seal a batch of co-variables ([`SealedBatch`]),
    /// fanning the work out
    /// over [`KishuConfig::checkpoint_workers`] threads. Results come back
    /// in input order regardless of scheduling — `None` marks an
    /// unserializable co-variable. Sealing (CRC framing) happens on the
    /// worker too: it is per-byte work with no ordering requirement.
    ///
    /// Only CPU-side work runs here. Store writes stay on the session
    /// thread, in batch order, so the blob-id sequence, store bytes, and
    /// any injected-fault ledger are identical at every worker count.
    /// Returns the per-covariable results plus the phase's wall time in
    /// nanoseconds (the `ckpt.serialize` span, measured whether or not
    /// tracing is enabled).
    fn dump_sealed_batch(&self, batch: &[(CoVarKey, Vec<ObjId>)]) -> SealedBatch {
        let heap = &self.interp.heap;
        let reducer = &self.reducer;
        let mut sp = self.trace.span("ckpt.serialize");
        sp.arg("covars", batch.len());
        // Worker-side spans (`ckpt.seal` and the `pickle.dumps` underneath)
        // parent under this phase span via `worker_scope`, which also works
        // on the inline workers=1 path.
        let parent = sp.id();
        let trace = &self.trace;
        let jobs: Vec<_> = batch
            .iter()
            .map(|(_, roots)| {
                move || {
                    trace.worker_scope(parent, || {
                        let mut sp = trace.span("ckpt.seal");
                        dumps(heap, roots, reducer).ok().map(|bytes| {
                            let len = bytes.len() as u64;
                            sp.arg("bytes", len);
                            (seal_blob(&bytes), len)
                        })
                    })
                }
            })
            .collect();
        let out = kishu_testkit::pool::run(self.config.checkpoint_workers.max(1), jobs);
        (out, sp.end())
    }

    /// Write one sealed payload, deduplicating against the session's
    /// content index when enabled. Returns the blob id and whether the
    /// write was deduplicated away. Only successful full writes are
    /// indexed — a dropped blob must never satisfy a later lookup.
    fn put_sealed(&mut self, sealed: &[u8]) -> io::Result<(PutReceipt, bool)> {
        let mut sp = self.trace.span("store.put");
        sp.arg("bytes", sealed.len());
        self.trace.observe("blob.bytes", sealed.len() as u64);
        let key = self.config.dedup_blobs.then(|| content_key(sealed));
        if let Some(key) = key {
            if let Some(id) = self.blob_index.lookup(key) {
                self.trace.counter("blob.dedup_hits", 1);
                sp.arg("dedup", true);
                sp.arg("blob", id);
                // A session-level dedup hit writes nothing: the receipt is
                // all-zero physical attribution, not the opaque default.
                return Ok((PutReceipt { id, ..PutReceipt::default() }, true));
            }
        }
        let retries = self.config.store_retries;
        let store = &mut self.store;
        let trace = &self.trace;
        let receipt = retry_io(trace, retries, || store.put_with_receipt(sealed))?;
        sp.arg("blob", receipt.id);
        if let Some(key) = key {
            self.blob_index.record(key, receipt.id);
        }
        Ok((receipt, false))
    }

    /// Session measurements.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// The current co-variable partition (Table 7's co-variable counts).
    pub fn covariables(&self) -> Vec<CoVarKey> {
        self.detector.partition().covars().to_vec()
    }

    /// The `log` command: one line per checkpoint, head marked with `*`.
    pub fn log(&self) -> Vec<String> {
        self.graph.log()
    }

    /// Persist the Checkpoint Graph metadata into the checkpoint store (as
    /// a tagged blob alongside the co-variable data). Together with a
    /// durable store this makes the whole session resumable after the
    /// kernel process dies — see [`Self::resume`].
    pub fn persist(&mut self) -> Result<(), KishuError> {
        // Deferred co-variables must hit storage before the graph snapshot,
        // or the snapshot would point at blobs that never materialize.
        self.flush_pending();
        let mut payload = GRAPH_BLOB_MAGIC.to_vec();
        payload.extend_from_slice(self.graph.to_json().dump().as_bytes());
        let id = self.store.put(&seal_blob(&payload))?;
        // The snapshot is the resume anchor — it must never sit in a
        // group-commit buffer behind the blobs it references.
        self.store.flush_barrier()?;
        self.snapshot_blobs.push(id);
        Ok(())
    }

    /// Every tenant blob id the session's durable state still reaches:
    /// all co-variable blobs referenced from any node of the Checkpoint
    /// Graph, plus the **latest** graph snapshot [`Self::persist`] wrote
    /// (or [`Self::resume`] recovered from) — earlier snapshots are
    /// superseded history, exactly what shared-store GC exists to
    /// reclaim. This is the live set
    /// [`kishu_storage::SharedStore::collect`] marks from — anything
    /// outside it (old snapshots, dropped-write garbage) may be
    /// reclaimed.
    ///
    /// Deferred co-variables are no hazard: until [`Self::flush_pending`]
    /// runs, their bytes are not in the store at all.
    pub fn live_blobs(&self) -> BTreeSet<BlobId> {
        let mut live = BTreeSet::new();
        for i in 0..self.graph.len() {
            for sc in &self.graph.node(NodeId(i as u32)).delta {
                if let Some(b) = sc.blob {
                    live.insert(b);
                }
            }
        }
        if let Some(&latest) = self.snapshot_blobs.last() {
            live.insert(latest);
        }
        live
    }

    /// Drop every store-derived cache: the dedup [`BlobIndex`], the
    /// checkout read cache, and the blob → content-key map. Call after a
    /// shared-store GC pass — reclaimed blob ids must not satisfy a later
    /// dedup lookup (the write would alias to a tombstone), and the caches
    /// rebuild for free. Purely an optimization reset: never affects what
    /// any checkpoint restores to.
    pub fn invalidate_store_caches(&mut self) {
        self.blob_index = BlobIndex::new();
        self.read_cache.clear();
        self.blob_keys.clear();
    }

    /// Attach to a **fresh kernel** and restore the most recently persisted
    /// session from `store`: the Checkpoint Graph is recovered from its
    /// latest snapshot blob and the head state is checked out (loading
    /// co-variable data, falling back to recomputation where needed). This
    /// is crash recovery / session migration built from the same primitives
    /// as time-traveling.
    pub fn resume(store: Box<dyn CheckpointStore>, config: KishuConfig) -> Result<Self, KishuError> {
        let mut graph = None;
        let mut unreadable = 0u64;
        for i in (0..store.blob_count()).rev() {
            // An unreadable or corrupt blob must not abort resume: skip it
            // and keep scanning for an older intact graph snapshot. Only
            // transient errors are worth retrying first.
            let blob = match retry_io(kishu_trace::global(), config.store_retries, || store.get(i)) {
                Ok(b) => b,
                Err(_) => {
                    unreadable += 1;
                    continue;
                }
            };
            // A blob failing its end-to-end CRC is as good as unreadable.
            let Some(blob) = unseal_blob(&blob) else {
                unreadable += 1;
                continue;
            };
            if blob.starts_with(GRAPH_BLOB_MAGIC) {
                if let Ok(g) = kishu_testkit::json::Json::parse_bytes(&blob[GRAPH_BLOB_MAGIC.len()..])
                    .map_err(|e| e.to_string())
                    .and_then(|json| CheckpointGraph::from_json(&json))
                {
                    graph = Some((g, i));
                    break;
                }
                // A damaged snapshot that still carries the magic: ignore
                // it too and fall through to an older one.
            }
        }
        let (graph, snapshot_id) = graph.ok_or_else(|| KishuError::RestoreFailed {
            covariable: Vec::new(),
            reason: format!(
                "no intact checkpoint graph snapshot in the store \
                 ({} blob(s) scanned, {unreadable} unreadable)",
                store.blob_count()
            ),
        })?;
        let target = graph.head();
        let mut session = Self::new(store, config);
        session.graph = graph;
        // The snapshot we just recovered from stays live: a GC between now
        // and the next persist must not reclaim the only intact snapshot.
        session.snapshot_blobs.push(snapshot_id);
        let root = session.graph.root();
        session.graph.set_head(root);
        session.checkout(target)?;
        Ok(session)
    }

    /// Execute one cell: run, detect the delta, write the incremental
    /// checkpoint, commit the node, and advance the head.
    ///
    /// Returns `Err` only for syntax errors (nothing executed). A runtime
    /// error inside the cell still produces a checkpoint — its partial
    /// mutations are real and must be undoable.
    pub fn run_cell(&mut self, src: &str) -> Result<CellReport, RunError> {
        self.run_cell_with(src, true)
    }

    /// Like [`Self::run_cell`], but with per-cell control over data
    /// storage. With `store_data: false` the checkpoint node records the
    /// cell's code, delta keys, and dependencies but writes **no** bytes —
    /// checkout then reconstructs those co-variables by replaying the cell
    /// (fallback recomputation). This is the primitive behind the
    /// Kishu+Det-replay baseline (§7.1): skip storage after cells annotated
    /// deterministic.
    pub fn run_cell_with(&mut self, src: &str, store_data: bool) -> Result<CellReport, RunError> {
        // Think-time deferral: anything still pending belongs to the
        // previous cell and must hit storage before this cell can mutate
        // the objects it references.
        self.flush_pending();
        let exec_sp = self.trace.span("cell.exec");
        let outcome = self.interp.run_cell(src)?;
        exec_sp.end();
        let track_sp = self.trace.span("cell.track");
        let delta = if self.config.rule_based_cells && self.cell_provably_read_only(src) {
            // Rule-based fast path (§6.2 extension): the cell cannot have
            // changed the state, so skip VarGraph verification entirely and
            // record only the dependencies the patched namespace observed.
            let start = Instant::now();
            let partition = self.detector.partition();
            let dependencies: Vec<CoVarKey> = partition
                .intersecting(&outcome.access.gets.iter().cloned().collect())
                .into_iter()
                .map(|i| partition.covars()[i].clone())
                .collect();
            crate::delta::StateDelta {
                updated: Vec::new(),
                deleted: Vec::new(),
                dependencies,
                candidates_checked: 0,
                vars_rebuilt: 0,
                tracking_time: start.elapsed(),
            }
        } else {
            self.detector
                .on_cell(&self.interp.heap, &self.interp.globals, &outcome.access)
        };
        track_sp.end();

        // The `ckpt` span *is* the checkpoint stopwatch: its `end()` below
        // supplies `checkpoint_time`, so the report and the trace share one
        // clock read.
        let ckpt_sp = self.trace.span("ckpt");
        let mut serialize_ns = 0u64;
        let mut write_ns = 0u64;
        let mut checkpoint_bytes = 0u64;
        let mut bytes_written = 0u64;
        let mut chunks_written = 0u64;
        let mut chunks_deduped = 0u64;
        let mut bytes_compressed = 0u64;
        let mut blobs_dropped = 0usize;
        let mut blobs_deduped = 0usize;
        let mut committed: Option<NodeId> = None;
        let mut deferred: Vec<CoVarKey> = Vec::new();
        let mut stored: Vec<StoredCoVar> = Vec::with_capacity(delta.updated.len());
        if self.config.auto_checkpoint {
            // Resolve dependency versions against the pre-commit head state.
            let head_state = self.graph.state_at(self.graph.head());
            let mut deps: Vec<(CoVarKey, NodeId)> = delta
                .dependencies
                .iter()
                .filter_map(|k| {
                    if let Some(v) = head_state.get(k) {
                        return Some((k.clone(), *v));
                    }
                    // The detector's partition can drift from the graph's
                    // recorded keys across checkouts (merges/splits). A
                    // dependency must never be silently dropped — fallback
                    // recomputation would re-run this cell with the binding
                    // missing — so resolve it to any head co-variable that
                    // shares a name.
                    head_state
                        .iter()
                        .find(|(hk, _)| hk.iter().any(|n| k.contains(n)))
                        .map(|(hk, v)| (hk.clone(), *v))
                })
                .collect();
            deps.dedup();
            // Phase 1 (classify, session thread): decide each co-variable's
            // fate. Policy skips and deferrals write nothing now; the rest
            // queue for the dump pipeline.
            let mut to_dump: Vec<(CoVarKey, Vec<ObjId>)> = Vec::new();
            let mut dump_slots: Vec<Option<usize>> = Vec::with_capacity(delta.updated.len());
            let classify_sp = self.trace.span("ckpt.classify");
            for key in &delta.updated {
                let roots: Vec<ObjId> = key
                    .iter()
                    .filter_map(|n| self.interp.globals.peek(n))
                    .collect();
                stored.push(StoredCoVar {
                    names: key.clone(),
                    blob: None,
                    bytes: 0,
                });
                if !store_data || roots.len() != key.len() || self.is_blocklisted(&roots) {
                    dump_slots.push(None);
                } else if self.config.defer_serialization {
                    deferred.push(key.clone());
                    dump_slots.push(None);
                } else {
                    dump_slots.push(Some(to_dump.len()));
                    to_dump.push((key.clone(), roots));
                }
            }
            classify_sp.end();
            // Phase 2 (serialize + seal, worker pool): the CPU-heavy part,
            // fanned out; results return in delta order.
            let (dumped, ser_ns) = self.dump_sealed_batch(&to_dump);
            serialize_ns = ser_ns;
            // Phase 3 (write, session thread): sequential puts in delta
            // order keep blob ids, store bytes, and fault ledgers identical
            // at every worker count; dedup turns repeat payloads into
            // metadata-only entries.
            let write_sp = self.trace.span("ckpt.write");
            for (record, slot) in stored.iter_mut().zip(&dump_slots) {
                let Some(slot) = slot else { continue };
                match &dumped[*slot] {
                    Some((sealed, len)) => match self.put_sealed(sealed) {
                        Ok((receipt, deduped)) => {
                            checkpoint_bytes += len;
                            if deduped {
                                blobs_deduped += 1;
                            } else {
                                bytes_written += receipt.bytes_written;
                                chunks_written += receipt.chunks_written;
                                chunks_deduped += receipt.chunks_deduped;
                                bytes_compressed += receipt.bytes_compressed;
                            }
                            record.blob = Some(receipt.id);
                            record.bytes = *len;
                        }
                        // Store failure even after retries: drop the blob,
                        // count the degradation, rely on fallback
                        // recomputation.
                        Err(_) => blobs_dropped += 1,
                    },
                    // Unserializable co-variable: skip storage, rely on
                    // fallback recomputation (§5.1).
                    None => blobs_dropped += 1,
                }
            }
            // Group-commit barrier: the cell's burst of puts may be sitting
            // in a store-side buffer; everything must be reopenable before
            // the node commits. Barrier failure is not a data-loss event by
            // itself (the blobs are unordered, not gone), so it degrades
            // like any store hiccup: count it, keep the session alive.
            if self.store.flush_barrier().is_err() {
                self.trace.counter("store.barrier_failed", 1);
            }
            write_ns = write_sp.end();
            let node = self
                .graph
                .commit(src.to_string(), stored, delta.deleted.clone(), deps);
            committed = Some(node);
            for key in deferred {
                self.pending.push((node, key));
            }
        }
        if blobs_dropped > 0 {
            self.trace.counter("blobs.dropped", blobs_dropped as u64);
        }
        let ckpt_wall_ns = ckpt_sp.end();
        let checkpoint_time = Duration::from_nanos(ckpt_wall_ns);

        if self.config.gc_after_cell {
            // Amortize: a mark-sweep scans every slot ever allocated, so
            // collecting after every tiny cell would make GC cost grow with
            // session age. Collect only once enough new allocations piled
            // up since the last sweep.
            let allocs = self.interp.heap.stats().total_allocated;
            if allocs - self.last_gc_allocs > 4096 {
                self.interp.gc();
                self.last_gc_allocs = allocs;
            }
        }

        self.metrics.cells.push(CellMetrics {
            node: committed,
            cell_time: outcome.wall_time,
            tracking_time: delta.tracking_time,
            checkpoint_time,
            checkpoint_bytes,
            covars_updated: delta.updated.len(),
            candidates_checked: delta.candidates_checked,
            blobs_dropped,
            blobs_deduped,
            bytes_written,
            chunks_written,
            chunks_deduped,
            bytes_compressed,
            serialize_ns,
            write_ns,
        });

        Ok(CellReport {
            node: committed,
            outcome,
            updated: delta.updated,
            tracking_time: delta.tracking_time,
            checkpoint_time,
            checkpoint_bytes,
            blobs_dropped,
            blobs_deduped,
            bytes_written,
            chunks_written,
            chunks_deduped,
            bytes_compressed,
            ckpt_wall_ns,
            serialize_ns,
            write_ns,
        })
    }

    /// Serialize and store any co-variables whose checkpointing was
    /// deferred into think time. Safe to call at any point between cells;
    /// called automatically before the next cell execution and before any
    /// checkout. Returns the number of co-variables flushed.
    ///
    /// The elapsed time is attributed to the originating cell's
    /// `checkpoint_time` — it *is* that cell's checkpoint work, done late.
    /// (Checkout-triggered flushes instead land in the checkout's
    /// `wall_time`; see [`Self::checkout`].)
    pub fn flush_pending(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let sp = self.trace.span("ckpt.flush");
        let flushed = self.flush_pending_inner();
        let flush_ns = sp.end();
        if let Some(last) = self.metrics.cells.last_mut() {
            last.checkpoint_time += Duration::from_nanos(flush_ns);
            // Note: flush bytes are reflected in store_stats(), not in the
            // originating cell's checkpoint_bytes (which measured the
            // user-visible latency).
        }
        flushed
    }

    /// The flush itself, with no time attribution — callers decide where
    /// the wall time belongs. Write failures drop the blob and count into
    /// the owning cell's `blobs_dropped` degradation counter.
    fn flush_pending_inner(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let pending = std::mem::take(&mut self.pending);
        let mut flushed = 0;
        // Same three-phase shape as `run_cell_with`: classify, fan the
        // dumps out, then write sequentially in pending order.
        let mut batch: Vec<(CoVarKey, Vec<ObjId>)> = Vec::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        for (node, key) in pending {
            let roots: Vec<ObjId> = key
                .iter()
                .filter_map(|n| self.interp.globals.peek(n))
                .collect();
            if roots.len() != key.len() {
                continue; // vanished between cells (checkout raced): falls
                          // back to recomputation like any missing blob
            }
            batch.push((key, roots));
            nodes.push(node);
        }
        let (dumped, _serialize_ns) = self.dump_sealed_batch(&batch);
        for (((key, _), node), dump) in batch.iter().zip(nodes).zip(dumped) {
            let dropped = match dump {
                Some((sealed, len)) => match self.put_sealed(&sealed) {
                    Ok((receipt, _deduped)) => {
                        self.graph.set_stored(node, key, receipt.id, len);
                        flushed += 1;
                        false
                    }
                    Err(_) => true,
                },
                None => true,
            };
            if dropped {
                self.trace.counter("blobs.dropped", 1);
                if let Some(m) = self
                    .metrics
                    .cells
                    .iter_mut()
                    .rev()
                    .find(|m| m.node == Some(node))
                {
                    m.blobs_dropped += 1;
                }
            }
        }
        // The flushed blobs back already-committed nodes: order them out of
        // any group-commit buffer before returning.
        if self.store.flush_barrier().is_err() {
            self.trace.counter("store.barrier_failed", 1);
        }
        flushed
    }

    /// Number of co-variables currently awaiting their think-time flush.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    fn cell_provably_read_only(&self, src: &str) -> bool {
        kishu_minipy::parse_program(src)
            .map(|program| crate::rules::cell_is_read_only(&program))
            .unwrap_or(false)
    }

    /// Whether any object reachable from `roots` belongs to a blocklisted
    /// class. One union traversal over all roots (a co-variable's roots
    /// share most of their component, so per-root traversals would revisit
    /// the shared structure once per root — quadratic on wide namespaces).
    /// An `External` whose class the registry cannot name can't be cleared
    /// against the blocklist: it is treated as blocklisted (the safe side —
    /// skip storage, restore by fallback recomputation) and counted in
    /// [`SessionMetrics::blocklist_anomalies`].
    fn is_blocklisted(&mut self, roots: &[ObjId]) -> bool {
        if self.config.blocklist.is_empty() {
            return false;
        }
        let mut anomaly = false;
        let hit = self
            .interp
            .heap
            .reachable_from_all(roots)
            .iter()
            .any(|id| {
                if let ObjKind::External { class, .. } = self.interp.heap.kind(*id) {
                    match self.registry.get(*class) {
                        Some(spec) => self.config.blocklist.contains(spec.name),
                        None => {
                            anomaly = true;
                            true
                        }
                    }
                } else {
                    false
                }
            });
        if anomaly {
            self.metrics.blocklist_anomalies += 1;
            eprintln!(
                "kishu: blocklist check saw an external object with an \
                 unregistered class; treating its co-variable as blocklisted"
            );
        }
        hit
    }

    /// Incremental checkout (§5.2): restore the session to the state at
    /// `target`, loading only diverged co-variables, deleting variables
    /// absent in the target, and leaving identical co-variables untouched
    /// in the live kernel. Missing/unloadable data is reconstructed by
    /// fallback recomputation (§5.3).
    ///
    /// The read side mirrors the checkpoint write pipeline's three phases:
    ///
    /// 1. **Fetch (session thread, plan order)** — every planned blob is
    ///    read from the store sequentially (after a read-cache consult), so
    ///    any injected-fault ledger is identical at every worker count;
    /// 2. **Verify (worker pool)** — end-to-end CRC checks and the
    ///    simulated decode charge fan out over
    ///    [`KishuConfig::restore_workers`] threads, so cold-load sleeps
    ///    overlap across blobs;
    /// 3. **Apply (session thread, plan order)** — deserialization into the
    ///    live heap, namespace binding, and fallback recomputation run
    ///    sequentially, consuming the verified payloads in plan order.
    pub fn checkout(&mut self, target: NodeId) -> Result<CheckoutReport, KishuError> {
        // The `checkout` span is the wall-time stopwatch: its `end()` below
        // supplies `wall_time`/`co_wall_ns` — one clock read, shared by the
        // report and the trace.
        let mut co_sp = self.trace.span("checkout");
        co_sp.arg("target", target.0);
        // A checkout-triggered think-time flush belongs to this checkout's
        // wall time, not to the originating cell's checkpoint_time — the
        // inner flush skips the per-cell attribution.
        let flush_sp = self.trace.span("checkout.flush");
        let flushed = self.flush_pending_inner();
        flush_sp.end();
        if !self.graph.contains(target) {
            return Err(KishuError::UnknownNode(target));
        }
        let plan = self.graph.diff(self.graph.head(), target);

        let mut changed: BTreeSet<String> = BTreeSet::new();
        let mut loaded = Vec::new();
        let mut recomputed = Vec::new();
        let mut bytes_loaded = 0u64;
        let mut blobs_cached = 0usize;

        // Removals must precede loads: a target co-variable's member names
        // can overlap a (differently-shaped) current co-variable slated for
        // removal — e.g. `{x,y}` diverged into `{x,y,z}` — and removing
        // after loading would delete just-restored bindings.
        for key in &plan.remove {
            for name in key {
                self.interp.globals.delete_untracked(name);
                changed.insert(name.clone());
            }
        }
        let mut ctx = RestoreCtx::default();
        // Phases 1+2: fetch serially, verify+charge on the pool.
        self.prefetch_plan_blobs(&plan.load, &mut ctx);
        // Phase 3: apply in plan order.
        let apply_sp = self.trace.span("checkout.apply");
        for (key, version) in &plan.load {
            let (bindings, how) = self.materialize(key, *version, &mut ctx, 0)?;
            for (name, obj) in bindings {
                self.interp.globals.set_untracked(&name, obj);
                changed.insert(name);
            }
            match how {
                Materialized::Loaded { bytes, cached } => {
                    bytes_loaded += bytes;
                    if cached {
                        blobs_cached += 1;
                    }
                    loaded.push(key.clone());
                }
                Materialized::Recomputed => recomputed.push(key.clone()),
            }
        }
        let apply_ns = apply_sp.end();

        // Regenerate VarGraphs for what changed (§5.2 step 2) and move the
        // head (step 3).
        self.detector
            .resync_after_checkout(&self.interp.heap, &self.interp.globals, &changed);
        self.graph.set_head(target);
        // No GC here: collection scans every slot ever allocated, which
        // would dominate sub-millisecond undos; the next cell execution
        // collects anyway.

        let co_wall_ns = co_sp.end();
        Ok(CheckoutReport {
            target,
            loaded,
            recomputed,
            removed: plan.remove,
            identical: plan.identical.len(),
            bytes_loaded,
            wall_time: Duration::from_nanos(co_wall_ns),
            integrity_failures: ctx.integrity_failures,
            flushed,
            blobs_cached,
            co_wall_ns,
            fetch_ns: ctx.fetch_ns,
            verify_ns: ctx.verify_ns,
            apply_ns,
        })
    }

    /// Phases 1+2 of the checkout read pipeline: read every planned blob
    /// sequentially on the session thread (plan order — the determinism
    /// rule that store operations never leave the session thread, extended
    /// from writes to reads), then fan the CRC verification and the
    /// simulated decode charge of the cold payloads out over the worker
    /// pool. Outcomes land in `ctx.prefetched`, keyed like the memo, for
    /// [`Self::materialize_uncached`] to consume in apply order.
    ///
    /// Failures are *recorded*, not counted: a prefetched blob that was
    /// unreadable or corrupt only becomes an integrity failure when the
    /// apply phase actually consumes it (a memoized materialization from an
    /// earlier plan entry's recursion may supersede it first — exactly as
    /// the serial path behaves).
    fn prefetch_plan_blobs(&mut self, load: &[(CoVarKey, NodeId)], ctx: &mut RestoreCtx) {
        enum Fetched {
            /// Verified payload straight from the read cache.
            Cached(Vec<u8>),
            /// Sealed bytes from the store, pending CRC + charge.
            Sealed { blob: BlobId, sealed: Vec<u8> },
            /// Unreadable even after retries.
            Failed,
        }
        // Phase 1: sequential cache consults and store reads, plan order.
        let fetch_sp = self.trace.span("checkout.fetch");
        let mut fetched: Vec<((Vec<String>, NodeId), Fetched)> = Vec::new();
        for (key, version) in load {
            let Some(sc) = self.graph.stored(key, *version) else { continue };
            let Some(blob) = sc.blob else { continue };
            let memo_key = (key.iter().cloned().collect::<Vec<String>>(), *version);
            let mut sp = self.trace.span("store.get");
            sp.arg("blob", blob);
            let hit = self
                .blob_keys
                .get(&blob)
                .copied()
                .and_then(|k| self.read_cache.get(k));
            let f = match hit {
                Some(payload) => {
                    sp.arg("cached", true);
                    Fetched::Cached(payload)
                }
                None => {
                    let retries = self.config.store_retries;
                    let store = &self.store;
                    let trace = &self.trace;
                    match retry_io(trace, retries, || store.get(blob)) {
                        Ok(sealed) => {
                            sp.arg("bytes", sealed.len());
                            Fetched::Sealed { blob, sealed }
                        }
                        Err(_) => {
                            sp.arg("failed", true);
                            Fetched::Failed
                        }
                    }
                }
            };
            fetched.push((memo_key, f));
        }
        ctx.fetch_ns = fetch_sp.end();
        // Phase 2: CRC + decode charge of the cold payloads, fanned out.
        // Results return in job order, so the outcome map below is
        // identical at every worker count.
        let verify_sp = self.trace.span("checkout.verify");
        let parent = verify_sp.id();
        let trace = &self.trace;
        let jobs: Vec<_> = fetched
            .iter()
            .map(|(_, f)| {
                move || {
                    trace.worker_scope(parent, || match f {
                        Fetched::Sealed { blob, sealed } => {
                            let mut sp = trace.span("checkout.decode");
                            sp.arg("blob", *blob);
                            sp.arg("bytes", sealed.len());
                            let key = content_key(sealed);
                            unseal_blob(sealed).map(|payload| {
                                simcost::charge_bytes(payload.len() as u64, simcost::PICKLE_BPS);
                                (payload.to_vec(), key, *blob)
                            })
                        }
                        // Cache hits carry no worker-side work; failures
                        // have nothing to verify.
                        _ => None,
                    })
                }
            })
            .collect();
        let verified = kishu_testkit::pool::run(self.config.restore_workers.max(1), jobs);
        ctx.verify_ns = verify_sp.end();
        for ((memo_key, f), v) in fetched.into_iter().zip(verified) {
            let outcome = match (f, v) {
                (Fetched::Cached(payload), _) => Prefetched::Ready {
                    payload,
                    cached: true,
                    cache_key: None,
                },
                (Fetched::Sealed { .. }, Some((payload, key, blob))) => Prefetched::Ready {
                    payload,
                    cached: false,
                    cache_key: Some((key, blob)),
                },
                // CRC failure or unreadable blob: both degrade to counted
                // fallback recomputation at consumption time.
                (Fetched::Sealed { .. }, None) | (Fetched::Failed, _) => Prefetched::Failed,
            };
            ctx.prefetched.insert(memo_key, outcome);
        }
    }

    /// Fetch and verify one stored blob serially — the recursive-dependency
    /// path of fallback recomputation, whose blobs are not in the checkout
    /// plan and hence not prefetched. Same cache consult and the same
    /// decode charge as the pipeline, paid inline on the session thread.
    /// `None` means nothing is stored for this version (no blob id).
    fn fetch_blob_serial(&mut self, key: &CoVarKey, version: NodeId) -> Option<Prefetched> {
        let blob = self.graph.stored(key, version)?.blob?;
        let mut sp = self.trace.span("store.get");
        sp.arg("blob", blob);
        if let Some(payload) = self
            .blob_keys
            .get(&blob)
            .copied()
            .and_then(|k| self.read_cache.get(k))
        {
            sp.arg("cached", true);
            return Some(Prefetched::Ready {
                payload,
                cached: true,
                cache_key: None,
            });
        }
        let retries = self.config.store_retries;
        let store = &self.store;
        let trace = &self.trace;
        match retry_io(trace, retries, || store.get(blob)) {
            Ok(sealed) => {
                let ck = content_key(&sealed);
                match unseal_blob(&sealed) {
                    Some(payload) => {
                        simcost::charge_bytes(payload.len() as u64, simcost::PICKLE_BPS);
                        Some(Prefetched::Ready {
                            payload: payload.to_vec(),
                            cached: false,
                            cache_key: Some((ck, blob)),
                        })
                    }
                    None => Some(Prefetched::Failed),
                }
            }
            Err(_) => Some(Prefetched::Failed),
        }
    }

    /// Materialize one versioned co-variable: load its checkpoint if
    /// possible, otherwise recursively recompute it (Fig 11).
    ///
    /// Results are memoized in `ctx` for the duration of one checkout:
    /// diamond dependencies (two recomputations needing the same versioned
    /// input) reuse the first materialization, and only a revisit *along
    /// the current recursion path* (`ctx.in_progress`) is a true dependency
    /// cycle.
    fn materialize(
        &mut self,
        key: &CoVarKey,
        version: NodeId,
        ctx: &mut RestoreCtx,
        depth: usize,
    ) -> Result<(Vec<(String, ObjId)>, Materialized), KishuError> {
        let memo_key = (key.iter().cloned().collect::<Vec<String>>(), version);
        if let Some((bindings, how)) = ctx.memo.get(&memo_key) {
            // Report how the co-variable was *originally* materialized: a
            // memo hit on something loaded from the store is still a load
            // (its bytes were read, its CRC verified) — calling it
            // "recomputed" would zero `bytes_loaded` for diamond plans and
            // misattribute the restore work the report exists to measure.
            return Ok((bindings.clone(), *how));
        }
        if depth > MAX_FALLBACK_DEPTH || !ctx.in_progress.insert(memo_key.clone()) {
            return Err(KishuError::RestoreFailed {
                covariable: key.iter().cloned().collect(),
                reason: "fallback recomputation hit a dependency cycle or its depth limit".into(),
            });
        }
        let result = self.materialize_uncached(key, version, ctx, depth);
        ctx.in_progress.remove(&memo_key);
        if let Ok((bindings, how)) = &result {
            ctx.memo.insert(memo_key, (bindings.clone(), *how));
        }
        result
    }

    fn materialize_uncached(
        &mut self,
        key: &CoVarKey,
        version: NodeId,
        ctx: &mut RestoreCtx,
        depth: usize,
    ) -> Result<(Vec<(String, ObjId)>, Materialized), KishuError> {
        let memo_key = (key.iter().cloned().collect::<Vec<String>>(), version);
        // Plan entries were fetched and CRC-verified by the pipeline;
        // recursive dependencies of fallback recomputation were not, and
        // fetch serially here. Either way the CRC already ran before the
        // deserializer sees any bytes — damaged payloads must never reach
        // it, where a lucky flip could still parse into wrong state.
        let outcome = ctx
            .prefetched
            .remove(&memo_key)
            .or_else(|| self.fetch_blob_serial(key, version));
        match outcome {
            Some(Prefetched::Ready {
                payload,
                cached,
                cache_key,
            }) => {
                // The decode charge was already paid — on a worker (plan
                // entries), inline (recursive fetches), or skipped as a
                // cache hit — so decode without re-charging.
                match loads_precharged(&mut self.interp.heap, &payload, &self.reducer) {
                    Ok(roots) if roots.len() == key.len() => {
                        if let Some((ck, blob)) = cache_key {
                            // Only payloads that decoded cleanly are
                            // admitted: the cache must never launder a
                            // CRC-clean-but-undecodable blob into a "hit".
                            self.read_cache.insert(ck, &payload);
                            self.blob_keys.insert(blob, ck);
                        }
                        let bindings = key.iter().cloned().zip(roots).collect();
                        return Ok((
                            bindings,
                            Materialized::Loaded {
                                bytes: payload.len() as u64,
                                cached,
                            },
                        ));
                    }
                    // Deserialization failure (CRC-clean but incompatible
                    // bytes): count it and fall through to recomputation.
                    _ => {
                        ctx.integrity_failures += 1;
                        self.trace.counter("integrity.failures", 1);
                    }
                }
            }
            // Unreadable after retries, or failed the CRC: count and fall
            // back. Counted here at consumption time — not at prefetch — so
            // a plan entry already satisfied by an earlier entry's
            // recursion never counts a failure it didn't consume.
            Some(Prefetched::Failed) => {
                ctx.integrity_failures += 1;
                self.trace.counter("integrity.failures", 1);
            }
            // Nothing stored for this version (blocklisted or over-budget
            // at checkpoint time): straight to recomputation, not a
            // failure.
            None => {}
        }
        self.fallback_recompute(key, version, ctx, depth)
            .map(|b| (b, Materialized::Recomputed))
    }

    /// Fallback recomputation (§5.3): load the cell's recorded dependency
    /// co-variables (recursively materializing them), re-run the cell's
    /// code in a temporary namespace, and extract the target co-variable.
    fn fallback_recompute(
        &mut self,
        key: &CoVarKey,
        version: NodeId,
        ctx: &mut RestoreCtx,
        depth: usize,
    ) -> Result<Vec<(String, ObjId)>, KishuError> {
        let mut sp = self.trace.span("recompute");
        sp.arg("covar", key.iter().cloned().collect::<Vec<_>>().join(","));
        sp.arg("version", version.0);
        let _sp = sp;
        let node = self.graph.node(version).clone();
        if node.cell_code.is_empty() {
            return Err(KishuError::RestoreFailed {
                covariable: key.iter().cloned().collect(),
                reason: "no cell code recorded (root node)".into(),
            });
        }
        let mut bindings: Vec<(String, ObjId)> = Vec::new();
        for (dkey, dversion) in &node.deps {
            let (dep_bindings, _) = self.materialize(dkey, *dversion, ctx, depth + 1)?;
            bindings.extend(dep_bindings);
        }
        let result = self
            .interp
            .run_cell_in_temp_namespace(&node.cell_code, bindings)
            .map_err(KishuError::Recompute)?;
        let mut out = Vec::with_capacity(key.len());
        let mut missing: Vec<String> = Vec::new();
        for name in key {
            match result.iter().find(|(n, _)| n == name) {
                Some((n, o)) => out.push((n.clone(), *o)),
                None => missing.push(name.clone()),
            }
        }
        if !missing.is_empty() {
            // The cell re-ran cleanly yet never bound these names. The only
            // way a co-variable gets an update recorded at a cell that does
            // not produce it is address-only drift — a read re-verified the
            // object after a recomputed checkout rebuilt it at a new
            // address — so its *value* is that of the previous version:
            // materialize that instead of failing the restore.
            if let Some(parent) = self.graph.node(version).parent {
                let parent_state = self.graph.state_at(parent);
                let prev = match parent_state.get(key) {
                    Some(v) => Some((key.clone(), *v)),
                    None => parent_state
                        .iter()
                        .find(|(k2, _)| k2.iter().any(|n| missing.contains(n)))
                        .map(|(k2, v)| (k2.clone(), *v)),
                };
                if let Some((pkey, pversion)) = prev {
                    let (bindings, _) = self.materialize(&pkey, pversion, ctx, depth + 1)?;
                    for name in &missing {
                        if let Some((n, o)) = bindings.iter().find(|(n, _)| n == name) {
                            out.push((n.clone(), *o));
                        }
                    }
                }
            }
            if let Some(name) = key.iter().find(|n| !out.iter().any(|(m, _)| &m == n)) {
                return Err(KishuError::RestoreFailed {
                    covariable: key.iter().cloned().collect(),
                    reason: format!("re-running the cell did not produce `{name}`"),
                });
            }
        }
        Ok(out)
    }
}

/// Maximum recursion depth for fallback recomputation chains (a chain as
/// long as the notebook itself is legitimate in replay-heavy sessions).
const MAX_FALLBACK_DEPTH: usize = 512;

/// Tag prefix of persisted Checkpoint Graph blobs in the store.
const GRAPH_BLOB_MAGIC: &[u8; 4] = b"KGRF";

/// Frame a session blob as `crc32(payload) (4 bytes LE) || payload`.
///
/// Storage backends may checksum their own records (FileStore does), but
/// the session cannot rely on it: the store interface is pluggable, and
/// corruption can also happen after the backend's check (in transit, in a
/// cache, in a buggy decorator). The end-to-end CRC means a damaged blob is
/// always detected at read time and routed to fallback recomputation
/// instead of silently deserializing into wrong state.
fn seal_blob(payload: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(4 + payload.len());
    blob.extend_from_slice(&crc32(payload).to_le_bytes());
    blob.extend_from_slice(payload);
    blob
}

/// Verify and strip [`seal_blob`]'s framing; `None` if the blob is damaged.
fn unseal_blob(blob: &[u8]) -> Option<&[u8]> {
    if blob.len() < 4 {
        return None;
    }
    let crc = u32::from_le_bytes([blob[0], blob[1], blob[2], blob[3]]);
    let payload = &blob[4..];
    (crc32(payload) == crc).then_some(payload)
}

/// How one co-variable was materialized during a checkout. Memoized
/// alongside the bindings so diamond dependencies re-report the original
/// outcome instead of defaulting to "recomputed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Materialized {
    Loaded {
        /// Payload size actually decoded (counts toward `bytes_loaded`).
        bytes: u64,
        /// Whether the payload came from the read cache.
        cached: bool,
    },
    Recomputed,
}

/// A plan blob after the fetch+verify phases, waiting for the apply phase.
enum Prefetched {
    /// CRC-verified payload, decode charge already paid (or skipped as a
    /// cache hit).
    Ready {
        payload: Vec<u8>,
        /// Served from the read cache (no store read happened).
        cached: bool,
        /// Content key + blob id to admit into the cache after a clean
        /// decode; `None` for cache hits (already resident).
        cache_key: Option<(ContentKey, BlobId)>,
    },
    /// Unreadable after retries, or failed the end-to-end CRC.
    Failed,
}

/// Per-checkout restoration state: memoized materializations, the current
/// recursion path for real-cycle detection, the pipeline's prefetched
/// payloads, and the count of store reads that failed and were swallowed by
/// falling back to recomputation.
#[derive(Default)]
struct RestoreCtx {
    memo: std::collections::BTreeMap<(Vec<String>, NodeId), (Vec<(String, ObjId)>, Materialized)>,
    in_progress: BTreeSet<(Vec<String>, NodeId)>,
    prefetched: std::collections::BTreeMap<(Vec<String>, NodeId), Prefetched>,
    integrity_failures: usize,
    /// Wall nanoseconds of the pipeline's fetch phase (the `checkout.fetch`
    /// span), carried out to [`CheckoutReport::fetch_ns`].
    fetch_ns: u64,
    /// Wall nanoseconds of the pooled verify phase (`checkout.verify`).
    verify_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariable::key;
    use kishu_trace::SpanId;

    fn session() -> KishuSession {
        KishuSession::in_memory(KishuConfig::default())
    }

    fn run(s: &mut KishuSession, src: &str) -> CellReport {
        let report = s.run_cell(src).expect("parses");
        assert!(
            report.outcome.error.is_none(),
            "cell failed: {:?}",
            report.outcome.error
        );
        report
    }

    fn value(s: &mut KishuSession, expr: &str) -> String {
        let report = run(s, &format!("{expr}\n"));
        report.outcome.value_repr.unwrap_or_default()
    }

    #[test]
    fn tracing_captures_the_pipeline_span_tree_and_derives_report_timings() {
        let mut s = session();
        let trace = Trace::enabled();
        s.set_trace(&trace);
        let r1 = run(&mut s, "x = list(range(100))\n");
        run(&mut s, "x = list(range(50))\n");
        // Back to the first version: `x` diverged, so its old blob must be
        // fetched cold (store read, CRC verify, decode) and applied.
        let co = s.checkout(r1.node.expect("node")).expect("checkout");
        assert_eq!(co.loaded.len(), 1);

        let spans = trace.spans();
        let names: BTreeSet<&str> = spans.iter().map(|sp| sp.name.as_str()).collect();
        for want in [
            "cell.exec",
            "cell.track",
            "ckpt",
            "ckpt.classify",
            "ckpt.serialize",
            "ckpt.seal",
            "ckpt.write",
            "store.put",
            "pickle.dumps",
            "checkout",
            "checkout.flush",
            "checkout.fetch",
            "store.get",
            "checkout.verify",
            "checkout.decode",
            "checkout.apply",
            "pickle.loads",
        ] {
            assert!(names.contains(want), "missing span `{want}` in {names:?}");
        }

        // Worker-side spans parent under their phase span, regardless of
        // which thread ran them.
        let ids_of = |name: &str| -> Vec<SpanId> {
            spans.iter().filter(|sp| sp.name == name).map(|sp| sp.id).collect()
        };
        let serialize_ids = ids_of("ckpt.serialize");
        for seal in spans.iter().filter(|sp| sp.name == "ckpt.seal") {
            assert!(
                seal.parent.is_some_and(|p| serialize_ids.contains(&p)),
                "ckpt.seal must nest under ckpt.serialize: {seal:?}"
            );
        }
        let verify_ids = ids_of("checkout.verify");
        for dec in spans.iter().filter(|sp| sp.name == "checkout.decode") {
            assert!(
                dec.parent.is_some_and(|p| verify_ids.contains(&p)),
                "checkout.decode must nest under checkout.verify: {dec:?}"
            );
        }

        // The report's wall clock *is* the span's duration (single clock
        // read), and the phase breakdown never exceeds it.
        let co_span = spans.iter().find(|sp| sp.name == "checkout").expect("checkout span");
        assert_eq!(co_span.dur_ns, co.co_wall_ns);
        assert!(co.fetch_ns + co.verify_ns + co.apply_ns <= co.co_wall_ns);
        assert!(co.fetch_ns > 0 && co.verify_ns > 0 && co.apply_ns > 0);

        // Metrics mirrored the same events the reports count: every sealed
        // payload handed to `put_sealed` landed in the size histogram.
        let m = trace.metrics();
        let h = m.histogram("blob.bytes").expect("blob.bytes histogram");
        assert!(h.count >= 2, "one put per diverged cell, got {}", h.count);
    }

    #[test]
    fn reports_carry_phase_breakdowns_with_tracing_disabled() {
        // Span guards time phases even when no trace is attached: the
        // derived report fields must be populated either way.
        let mut s = session();
        assert!(!s.trace().is_enabled() || std::env::var("KISHU_TRACE").is_ok());
        let r1 = run(&mut s, "x = list(range(100))\n");
        let r2 = run(&mut s, "x = list(range(50))\n");
        assert!(r2.serialize_ns > 0, "serialize phase must be timed");
        assert!(r2.write_ns > 0, "write phase must be timed");
        assert!(r2.serialize_ns + r2.write_ns <= r2.ckpt_wall_ns);
        let co = s.checkout(r1.node.expect("node")).expect("checkout");
        assert!(co.fetch_ns > 0 && co.verify_ns > 0 && co.apply_ns > 0);
        assert!(co.fetch_ns + co.verify_ns + co.apply_ns <= co.co_wall_ns);
    }

    #[test]
    fn undo_a_dropped_column() {
        // The paper's headline use case (§2.1): un-drop a dataframe column.
        let mut s = session();
        run(&mut s, "df = read_csv('data', 50, 4, 7)\n");
        let before = s.head();
        run(&mut s, "df = df.drop('c1')\n");
        assert_eq!(value(&mut s, "len(df.columns)"), "3");
        let report = s.checkout(before).expect("checkout");
        assert!(report.loaded.contains(&key(&["df"])));
        assert_eq!(value(&mut s, "len(df.columns)"), "4");
    }

    #[test]
    fn identical_covariables_are_not_reloaded() {
        let mut s = session();
        run(&mut s, "big = read_csv('big', 2000, 8, 1)\n");
        run(&mut s, "small = [1, 2]\n");
        let before = s.head();
        run(&mut s, "small.append(3)\n");
        let report = s.checkout(before).expect("checkout");
        assert_eq!(report.loaded, vec![key(&["small"])]);
        assert!(report.identical >= 1, "big must be identical/untouched");
        assert_eq!(value(&mut s, "len(small)"), "2");
        assert_eq!(value(&mut s, "len(big.columns)"), "8");
    }

    #[test]
    fn checkout_removes_later_variables() {
        let mut s = session();
        run(&mut s, "a = 1\n");
        let early = s.head();
        run(&mut s, "b = 2\n");
        s.checkout(early).expect("checkout");
        assert!(!s.interp.globals.contains("b"));
        assert!(s.interp.globals.contains("a"));
    }

    #[test]
    fn branching_matches_fig10() {
        let mut s = session();
        run(&mut s, "df = read_csv('d', 20, 3, 1)\ngmm = lib_obj('sk.GaussianMixture', 128, 1)\n");
        let t1 = s.head();
        run(&mut s, "gmm.fit(3)\n");
        run(&mut s, "plot = gmm.result(16)\n");
        let t3 = s.head();
        let plot3 = value(&mut s, "plot.sum()");
        s.checkout(t1).expect("back to t1");
        run(&mut s, "gmm.fit(10)\n");
        run(&mut s, "plot = gmm.result(16)\n");
        let t5 = s.head();
        let plot5 = value(&mut s, "plot.sum()");
        assert_ne!(plot3, plot5, "branches diverged");
        // Switch back to the first branch.
        let report = s.checkout(t3).expect("branch switch");
        assert_eq!(value(&mut s, "plot.sum()"), plot3);
        // df was identical across branches: never reloaded.
        assert!(report.identical >= 1);
        let back = s.checkout(t5).expect("switch again");
        assert_eq!(value(&mut s, "plot.sum()"), plot5);
        let _ = back;
    }

    #[test]
    fn shared_references_survive_checkout() {
        // Restoring a co-variable must not break intra-component sharing:
        // `obj.foo` aliases an element of `ser`'s backing list, so a
        // mutation through either path must stay visible through the other
        // — before AND after a checkout restores the component.
        let mut s = session();
        run(&mut s, "ser = series('m', [['a'], ['b'], ['c']])\nobj = Object()\nobj.foo = ser.values[1]\n");
        let before = s.head();
        run(&mut s, "ser.values[1].append('z')\n");
        assert_eq!(value(&mut s, "len(obj.foo)"), "2"); // shared: both see it
        s.checkout(before).expect("checkout");
        assert_eq!(value(&mut s, "len(obj.foo)"), "1");
        // Sharing still intact after restore: mutate through ser again.
        run(&mut s, "ser.values[1].append('q')\n");
        assert_eq!(value(&mut s, "len(obj.foo)"), "2");
    }

    #[test]
    fn unserializable_covariable_restored_by_recomputation() {
        let mut s = session();
        run(&mut s, "seed = 5\n");
        let report = run(&mut s, "lazy = lib_obj('pl.LazyFrame', 64, 5)\nmarker = 123\n");
        // The co-variable containing the unserializable object was skipped.
        let node = report.node.expect("auto-checkpoint committed");
        let sc = s
            .graph()
            .node(node)
            .delta
            .iter()
            .find(|sc| sc.names.contains("lazy"))
            .expect("lazy in delta");
        assert!(sc.blob.is_none(), "unserializable: no bytes stored");
        let target = s.head();
        run(&mut s, "del lazy\n");
        let report = s.checkout(target).expect("checkout with fallback");
        assert!(report.recomputed.contains(&key(&["lazy"])));
        assert_eq!(value(&mut s, "type(lazy)"), "'external'");
    }

    #[test]
    fn deserialize_failure_triggers_fallback() {
        let mut s = session();
        run(&mut s, "fig = lib_obj('bokeh.figure', 64, 3)\n");
        let target = s.head();
        run(&mut s, "fig = 0\n");
        let report = s.checkout(target).expect("checkout");
        // Stored fine (dump works) but load fails -> recomputed.
        assert!(report.recomputed.contains(&key(&["fig"])));
        assert_eq!(value(&mut s, "type(fig)"), "'external'");
    }

    #[test]
    fn recursive_fallback_walks_the_chain() {
        // Fig 11: plot@t3 recomputes from gmm@t2; if gmm@t2 is also
        // unloadable it recomputes from gmm@t1. We force the whole chain to
        // be unserializable via the blocklist.
        let mut config = KishuConfig::default();
        config.blocklist.insert("sk.GaussianMixture".to_string());
        let mut s = KishuSession::in_memory(config);
        run(&mut s, "gmm = lib_obj('sk.GaussianMixture', 64, 1)\n");
        run(&mut s, "gmm.fit(3)\n");
        run(&mut s, "plot = gmm.result(8)\n");
        let t3 = s.head();
        let plot_val = value(&mut s, "plot.sum()");
        run(&mut s, "del plot\ndel gmm\n");
        let report = s.checkout(t3).expect("recursive fallback");
        assert!(report.recomputed.contains(&key(&["gmm"])));
        assert_eq!(value(&mut s, "plot.sum()"), plot_val, "deterministic chain reproduces");
    }

    #[test]
    fn blocklist_forces_recomputation() {
        let mut config = KishuConfig::default();
        config.blocklist.insert("wordcloud.WordCloud".to_string());
        let mut s = KishuSession::in_memory(config);
        let report = run(&mut s, "wc = lib_obj('wordcloud.WordCloud', 32, 2)\n");
        let sc = &s.graph().node(report.node.expect("committed")).delta[0];
        assert!(sc.blob.is_none(), "blocklisted class is never stored");
    }

    #[test]
    fn diamond_memo_hits_keep_loaded_attribution() {
        // `zx` is stored; `ay` is blocklisted (never stored) and depends on
        // `zx`. Plan order is key-sorted, so checkout materializes `ay`
        // first: its recomputation recursively *loads* zx@t1 and memoizes
        // it, and the top-level plan entry for `zx` then memo-hits. The
        // report must still attribute `zx` to `loaded` with its real byte
        // count — a memo hit must not launder a load into a recomputation.
        let mut config = KishuConfig::default();
        config.blocklist.insert("wordcloud.WordCloud".to_string());
        let mut s = KishuSession::in_memory(config);
        run(&mut s, "zx = [1, 2, 3]\n");
        run(&mut s, "ay = [lib_obj('wordcloud.WordCloud', 32, 2), len(zx)]\n");
        let target = s.head();
        run(&mut s, "zx.append(4)\nay = 0\n");
        let report = s.checkout(target).expect("checkout");
        assert_eq!(report.recomputed, vec![key(&["ay"])]);
        assert_eq!(report.loaded, vec![key(&["zx"])]);
        assert!(report.bytes_loaded > 0, "zx's payload really was read and decoded");
        assert_eq!(report.integrity_failures, 0);
        assert_eq!(value(&mut s, "len(zx)"), "3");
        assert_eq!(value(&mut s, "ay[1]"), "3");
    }

    #[test]
    fn unregistered_external_class_is_a_counted_anomaly() {
        let mut config = KishuConfig::default();
        config.blocklist.insert("wordcloud.WordCloud".to_string());
        let mut s = KishuSession::in_memory(config);
        let bogus = s.interp.heap.alloc(kishu_kernel::ObjKind::External {
            class: kishu_kernel::ClassId(u16::MAX),
            attrs: Vec::new(),
            payload: vec![0u8; 8],
            epoch: 0,
        });
        assert!(
            s.is_blocklisted(&[bogus]),
            "a class the registry cannot name must fail safe (treated as blocklisted)"
        );
        assert_eq!(s.metrics().blocklist_anomalies, 1);
        // A registered, non-blocklisted graph stays storable and does not
        // count an anomaly.
        let plain = s.interp.heap.alloc(kishu_kernel::ObjKind::Int(1));
        assert!(!s.is_blocklisted(&[plain]));
        assert_eq!(s.metrics().blocklist_anomalies, 1);
    }

    #[test]
    fn warm_checkout_hits_the_read_cache() {
        // Undo/redo over the same pair of states: the second visit to each
        // state should be served from the read cache.
        let mut s = session();
        run(&mut s, "data = zeros(50000)\n");
        let t1 = s.head();
        run(&mut s, "data[0] = 1.0\n");
        let t2 = s.head();
        let cold = s.checkout(t1).expect("undo");
        assert_eq!(cold.blobs_cached, 0, "first read of this blob is cold");
        s.checkout(t2).expect("redo");
        let warm = s.checkout(t1).expect("undo again");
        assert_eq!(warm.loaded, cold.loaded);
        assert_eq!(warm.bytes_loaded, cold.bytes_loaded);
        assert_eq!(warm.blobs_cached, warm.loaded.len(), "second undo is all cache hits");
        assert!(s.read_cache_stats().hits >= 1);
        assert_eq!(value(&mut s, "data[0]"), "0.0");
    }

    #[test]
    fn zero_cache_capacity_disables_read_caching() {
        let mut config = KishuConfig::default();
        config.checkout_cache_bytes = 0;
        let mut s = KishuSession::in_memory(config);
        run(&mut s, "data = zeros(50000)\n");
        let t1 = s.head();
        run(&mut s, "data[0] = 1.0\n");
        let t2 = s.head();
        s.checkout(t1).expect("undo");
        s.checkout(t2).expect("redo");
        let warm = s.checkout(t1).expect("undo again");
        assert_eq!(warm.blobs_cached, 0, "cache disabled: every read is cold");
        assert_eq!(s.read_cache_stats().hits, 0);
    }

    #[test]
    fn failed_cells_still_checkpoint_their_mutations() {
        let mut s = session();
        run(&mut s, "ls = [1]\n");
        let before = s.head();
        // The cell mutates, then raises.
        let report = s.run_cell("ls.append(2)\nboom()\n").expect("parses");
        assert!(report.outcome.error.is_some());
        assert!(report.updated.contains(&key(&["ls"])), "mutation before raise captured");
        s.checkout(before).expect("undo the half-executed cell");
        assert_eq!(value(&mut s, "len(ls)"), "1");
    }

    #[test]
    fn checkout_to_unknown_node_fails() {
        let mut s = session();
        assert!(matches!(
            s.checkout(NodeId(99)),
            Err(KishuError::UnknownNode(_))
        ));
    }

    #[test]
    fn exact_restoration_bytestring_equality() {
        // §5.3 Remark: serializable co-variables restore to the same
        // bytestring.
        let mut s = session();
        run(&mut s, "data = [1, 'two', 3.0, [4, 5]]\n");
        let target = s.head();
        let roots = vec![s.interp.globals.peek("data").expect("bound")];
        let before = dumps(&s.interp.heap, &roots, &kishu_pickle::NoopReducer).expect("dump");
        run(&mut s, "data.append(6)\n");
        s.checkout(target).expect("checkout");
        let roots = vec![s.interp.globals.peek("data").expect("bound")];
        let after = dumps(&s.interp.heap, &roots, &kishu_pickle::NoopReducer).expect("dump");
        assert_eq!(before, after);
    }

    #[test]
    fn metrics_accumulate() {
        let mut s = session();
        run(&mut s, "x = zeros(100)\n");
        run(&mut s, "x[0] = 1.0\n");
        let m = s.metrics();
        assert_eq!(m.cells.len(), 2);
        assert!(m.total_checkpoint_bytes() > 0);
        assert!(s.store_stats().blobs >= 2);
        assert_eq!(s.log().len(), 3); // root + 2 cells
    }

    #[test]
    fn no_auto_checkpoint_reports_no_node() {
        // Regression: with auto_checkpoint off, run_cell used to report the
        // *previous* head as the cell's node.
        let config = KishuConfig {
            auto_checkpoint: false,
            ..KishuConfig::default()
        };
        let mut s = KishuSession::new(Box::new(MemoryStore::new()), config);
        let report = run(&mut s, "x = 1\n");
        assert_eq!(report.node, None, "no commit happened");
        assert_eq!(s.metrics().cells[0].node, None);
        assert_eq!(s.head(), s.graph().root(), "head never moved");
    }

    #[test]
    fn transient_store_faults_are_retried_transparently() {
        use kishu_storage::{FaultKind, FaultOp, FaultPlan, FaultStore};
        // Every put hits one transient fault first; with retries the
        // session never degrades.
        let mut plan = FaultPlan::none();
        for i in 0..64 {
            plan = plan.schedule(FaultOp::Put, i * 2, FaultKind::Transient);
        }
        let store = FaultStore::new(Box::new(MemoryStore::new()), plan, 5);
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        let report = run(&mut s, "xs = [1, 2, 3]\n");
        assert_eq!(report.blobs_dropped, 0, "retry absorbed the transient fault");
        assert!(report.checkpoint_bytes > 0);
    }

    #[test]
    fn permanent_put_fault_counts_dropped_blob_and_checkout_recomputes() {
        use kishu_storage::{FaultKind, FaultOp, FaultPlan, FaultStore};
        let plan = FaultPlan::none().schedule(FaultOp::Put, 1, FaultKind::Permanent);
        let store = FaultStore::new(Box::new(MemoryStore::new()), plan, 5);
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        run(&mut s, "xs = [1, 2]\n");
        let target = s.head();
        // Put #1 fails permanently: this cell's blob (and all later ones)
        // are dropped but the session keeps working.
        let report = run(&mut s, "ys = [3]\n");
        assert_eq!(report.blobs_dropped, 1, "write-side degradation is counted");
        assert_eq!(s.metrics().total_blobs_dropped(), 1);
        let co = s.checkout(target).expect("checkout degrades, not fails");
        assert!(co.integrity_failures == 0, "nothing stored, nothing corrupt");
        assert_eq!(value(&mut s, "len(xs)"), "2");
    }

    #[test]
    fn corrupt_blob_read_falls_back_and_is_counted() {
        use kishu_storage::{FaultKind, FaultOp, FaultPlan, FaultStore};
        // Flip a bit in every read of blob 0's first fetch: the deserialize
        // fails, checkout falls back to recomputation, and the degradation
        // is visible in the report.
        let plan = FaultPlan::none().schedule(FaultOp::Get, 0, FaultKind::BitFlip);
        let store = FaultStore::new(Box::new(MemoryStore::new()), plan, 5);
        let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
        run(&mut s, "xs = [1, 2]\n");
        let target = s.head();
        run(&mut s, "del xs\n");
        let report = s.checkout(target).expect("degrades to recomputation");
        assert_eq!(report.integrity_failures, 1, "swallowed read failure is counted");
        assert!(report.recomputed.contains(&key(&["xs"])));
        assert_eq!(value(&mut s, "len(xs)"), "2");
    }

    #[test]
    fn resume_skips_corrupt_blobs_and_uses_an_older_snapshot() {
        use kishu_storage::{FaultKind, FaultOp, FaultPlan, FaultStore};
        let mut s = session();
        run(&mut s, "a = [1]\n");
        s.persist().expect("persist 1");
        run(&mut s, "b = [2, 3]\n");
        s.persist().expect("persist 2");
        // Move the blobs into a fresh store whose *latest* blob (the newest
        // KGRF snapshot) is permanently unreadable.
        let mut inner = MemoryStore::new();
        let n = s.store_stats().blobs;
        for i in 0..n {
            // Rebuild the store contents; the last blob is the newest
            // snapshot, which the fault plan below makes unreadable.
            inner.put(&s_store_get(&s, i)).expect("copy");
        }
        let plan = FaultPlan::none().schedule(FaultOp::Get, 0, FaultKind::Permanent);
        let store = FaultStore::new(Box::new(inner), plan, 5);
        let resumed = KishuSession::resume(Box::new(store), KishuConfig::default())
            .expect("resume survives a corrupt newest snapshot");
        // The older snapshot knows `a` but not `b`.
        assert!(resumed.interp.globals.contains("a"));
        assert!(!resumed.interp.globals.contains("b"));
    }

    #[test]
    fn resume_fails_only_when_no_intact_snapshot_exists() {
        use kishu_storage::{FaultKind, FaultOp, FaultPlan, FaultStore};
        let mut s = session();
        run(&mut s, "a = 1\n");
        s.persist().expect("persist");
        let mut inner = MemoryStore::new();
        let n = s.store_stats().blobs;
        for i in 0..n {
            inner.put(&s_store_get(&s, i)).expect("copy");
        }
        // Every blob permanently unreadable: resume must error, not panic.
        let mut plan = FaultPlan::none();
        for i in 0..n {
            plan = plan.schedule(FaultOp::Get, i, FaultKind::Permanent);
        }
        let store = FaultStore::new(Box::new(inner), plan, 5);
        let err = KishuSession::resume(Box::new(store), KishuConfig::default())
            .err()
            .expect("no intact snapshot anywhere");
        assert!(err.to_string().contains("no intact checkpoint graph"), "{err}");
    }

    /// Read a blob back out of a live session's store (test helper).
    fn s_store_get(s: &KishuSession, i: u64) -> Vec<u8> {
        s.store.get(i).expect("source blob readable")
    }

    #[test]
    fn checkout_triggered_flush_is_attributed_to_the_checkout() {
        let mut config = KishuConfig::default();
        config.defer_serialization = true;
        let mut s = KishuSession::in_memory(config);
        run(&mut s, "xs = [1, 2, 3]\n");
        let t1 = s.head();
        run(&mut s, "xs.append(4)\n");
        assert!(s.pending_count() > 0, "serialization was deferred");
        let cell_cp_before: Duration = s.metrics().cells.iter().map(|c| c.checkpoint_time).sum();
        let report = s.checkout(t1).expect("checkout flushes then restores");
        assert!(report.flushed > 0, "the checkout performed the flush");
        let cell_cp_after: Duration = s.metrics().cells.iter().map(|c| c.checkpoint_time).sum();
        assert_eq!(
            cell_cp_before, cell_cp_after,
            "flush time lands in the checkout's wall_time, not the cells' checkpoint_time"
        );
        assert_eq!(value(&mut s, "len(xs)"), "3");
    }

    #[test]
    fn undo_in_place_numpy_slice_update() {
        // §4.3 Remark: arr[0] += 1 is memory-based but reference-invoked.
        let mut s = session();
        run(&mut s, "arr = arange(10)\n");
        let before = s.head();
        run(&mut s, "arr[0] += 100\n");
        assert_eq!(value(&mut s, "arr[0]"), "100.0");
        s.checkout(before).expect("undo");
        assert_eq!(value(&mut s, "arr[0]"), "0.0");
    }
}
