//! # kishu — time-traveling for computational notebooks
//!
//! This crate is the paper's primary contribution: efficient and
//! fault-tolerant *time-traveling* between notebook session states via
//! incremental checkpoint and checkout at **co-variable** granularity.
//!
//! ## The pieces (paper section in parentheses)
//!
//! * [`vargraph`] — per-variable reachable-object graphs capturing object
//!   type, address, structure, and primitive values (§4.2). Comparing a
//!   variable's VarGraph before and after a cell execution detects updates
//!   with **no false negatives**; conservative false positives arise only
//!   from dynamically generated or opaque objects.
//! * [`covariable`] — co-variables: maximal sets of variable names whose
//!   reachable objects form one connected component (§4.1, Definition 1).
//!   They are the minimum granularity at which state can be stored/loaded
//!   without breaking shared references.
//! * [`delta`] — the Delta Detector (§4.3): uses the patched namespace's
//!   per-cell access record to prune the co-variables that *surely weren't*
//!   updated (Lemma 1), then verifies the rest by VarGraph comparison and
//!   recomputes merges/splits.
//! * [`graph`] — the Checkpoint Graph (§5.1): a timestamped tree of
//!   incremental checkpoints holding versioned co-variables, cell code, and
//!   dependencies; session states (Definition 5), identical/diverged
//!   classification (Definition 6), and lowest-common-ancestor queries.
//! * [`session`] — [`KishuSession`]: the end-to-end system. `run_cell`
//!   executes a cell, detects the state delta, and writes an incremental
//!   checkpoint; `checkout` restores any previous state by loading **only**
//!   the diverged co-variables into the live kernel (§5.2), falling back to
//!   recursive recomputation for data that failed to store or load (§5.3).
//! * [`xxh64`] — the XXH64 hash used for the array fast path (§6.2),
//!   implemented in-repo.
//!
//! ## Quick start
//!
//! ```
//! use kishu::session::{KishuConfig, KishuSession};
//!
//! let mut s = KishuSession::in_memory(KishuConfig::default());
//! s.run_cell("df = read_csv('data', 100, 4, 7)\n").unwrap();
//! let before = s.head();
//! s.run_cell("df = df.drop('c1')\n").unwrap();
//! assert_eq!(s.run_cell("len(df.columns)\n").unwrap().outcome.value_repr.as_deref(), Some("3"));
//! s.checkout(before).unwrap();   // un-drop the column
//! assert_eq!(s.run_cell("len(df.columns)\n").unwrap().outcome.value_repr.as_deref(), Some("4"));
//! ```

pub mod covariable;
pub mod delta;
pub mod error;
pub mod graph;
pub mod rules;
pub mod session;
pub mod vargraph;
pub mod xxh64;

pub use error::KishuError;
pub use graph::{CheckpointGraph, NodeId};
pub use session::{CellReport, CheckoutReport, KishuConfig, KishuSession};
