//! The Delta Detector (§4.3): accurate, fast co-variable update detection.
//!
//! After each cell execution the detector receives the patched namespace's
//! [`AccessRecord`] and:
//!
//! 1. prunes candidates by Lemma 1 — only co-variables whose members were
//!    accessed can possibly have been updated; everything else is skipped
//!    *without touching a single object* (this is the step AblatedKishu
//!    disables, and the entire reason Fig 17's per-cell overhead stays
//!    bounded as the state grows);
//! 2. regenerates VarGraphs for the candidate members (plus newly bound
//!    names) and compares them against the cached pre-cell graphs to verify
//!    actual modifications (Definition 2);
//! 3. recomputes the co-variable partition *within the candidate group* to
//!    identify merges and splits (Fig 6) — correctness outside the group is
//!    exactly Lemma 1's guarantee.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kishu_kernel::{AccessRecord, Heap, Namespace};
use kishu_libsim::Registry;

use crate::covariable::{components, CoVarKey, Partition};
use crate::vargraph::{VarGraph, VarGraphConfig};

/// One cell execution's state delta at co-variable granularity.
#[derive(Debug, Clone)]
pub struct StateDelta {
    /// Components that were created or modified by the cell — exactly what
    /// the incremental checkpoint must store (§5.1).
    pub updated: Vec<CoVarKey>,
    /// Old component keys that no longer exist (splits, merges, deletions).
    pub deleted: Vec<CoVarKey>,
    /// Pre-cell components the cell *read* — recorded as the checkpoint
    /// node's dependencies for fallback recomputation (§5.3).
    pub dependencies: Vec<CoVarKey>,
    /// How many co-variables were candidates (accessed) this cell.
    pub candidates_checked: usize,
    /// How many VarGraphs were regenerated.
    pub vars_rebuilt: usize,
    /// Time spent detecting (the paper's "tracking overhead", Table 6).
    pub tracking_time: Duration,
}

/// The detector: cached per-variable VarGraphs plus the current partition.
pub struct DeltaDetector {
    config: VarGraphConfig,
    check_all: bool,
    graphs: HashMap<String, VarGraph>,
    partition: Partition,
    nonce: u64,
}

impl DeltaDetector {
    /// New detector.
    ///
    /// * `hash_arrays` — use the XXH64 array fast path (§6.2).
    /// * `check_all` — ignore the access record and re-verify every
    ///   co-variable each cell (the AblatedKishu baseline of Table 6).
    pub fn new(registry: Arc<Registry>, hash_arrays: bool, check_all: bool) -> Self {
        let mut config = VarGraphConfig::new(registry);
        config.hash_arrays = hash_arrays;
        Self::with_config(config, check_all)
    }

    /// New detector with full VarGraph configuration (extension options
    /// such as primitive-list hashing included).
    pub fn with_config(config: VarGraphConfig, check_all: bool) -> Self {
        DeltaDetector {
            config,
            check_all,
            graphs: HashMap::new(),
            partition: Partition::new(),
            nonce: 0,
        }
    }

    /// The current co-variable partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of variables with cached VarGraphs.
    pub fn tracked_vars(&self) -> usize {
        self.graphs.len()
    }

    /// Process one cell execution's access record against the post-cell
    /// heap/namespace, returning the state delta.
    pub fn on_cell(
        &mut self,
        heap: &Heap,
        ns: &Namespace,
        access: &AccessRecord,
    ) -> StateDelta {
        let start = Instant::now();

        let accessed: BTreeSet<String> = if self.check_all {
            let mut all: BTreeSet<String> = self.graphs.keys().cloned().collect();
            all.extend(ns.names());
            all
        } else {
            access.accessed()
        };

        // Dependencies: pre-cell components the cell read.
        let dependencies: Vec<CoVarKey> = self
            .partition
            .intersecting(&access.gets.iter().cloned().collect())
            .into_iter()
            .map(|i| self.partition.covars()[i].clone())
            .collect();

        // Candidate group: members of accessed components + new bindings.
        let affected_idx = self.partition.intersecting(&accessed);
        let mut group: BTreeSet<String> = BTreeSet::new();
        let mut old_keys: BTreeSet<CoVarKey> = BTreeSet::new();
        for i in &affected_idx {
            let c = &self.partition.covars()[*i];
            old_keys.insert(c.clone());
            group.extend(c.iter().cloned());
        }
        for n in &accessed {
            if ns.contains(n) {
                group.insert(n.clone());
            }
        }

        // Regenerate VarGraphs for live group members; drop dead ones.
        let mut changed_vars: BTreeSet<String> = BTreeSet::new();
        let mut vars_rebuilt = 0;
        for name in &group {
            match ns.peek(name) {
                Some(root) => {
                    let fresh = VarGraph::build(heap, root, &self.config, &mut self.nonce);
                    vars_rebuilt += 1;
                    let changed = match self.graphs.get(name) {
                        Some(old) => old.differs_from(&fresh),
                        None => true, // newly bound
                    };
                    if changed {
                        changed_vars.insert(name.clone());
                    }
                    self.graphs.insert(name.clone(), fresh);
                }
                None => {
                    self.graphs.remove(name);
                }
            }
        }

        // Recompute the partition within the group.
        let live_group: Vec<&str> = group
            .iter()
            .filter(|n| ns.contains(n))
            .map(|n| n.as_str())
            .collect();
        let inputs: Vec<(&str, &VarGraph)> = live_group
            .iter()
            .map(|n| (*n, self.graphs.get(*n).expect("graph just built")))
            .collect();
        let new_components = components(&inputs);
        let vanished = self.partition.replace(&affected_idx, new_components.clone());

        // A component is updated if it is new (created / re-shaped) or any
        // member's VarGraph changed.
        let updated: Vec<CoVarKey> = new_components
            .into_iter()
            .filter(|c| !old_keys.contains(c) || c.iter().any(|n| changed_vars.contains(n)))
            .collect();

        StateDelta {
            updated,
            deleted: vanished,
            dependencies,
            candidates_checked: affected_idx.len(),
            vars_rebuilt,
            tracking_time: start.elapsed(),
        }
    }

    /// Re-synchronize the detector after a checkout replaced or deleted
    /// variables (step 2 of §5.2's checkout procedure): regenerate graphs
    /// for the changed names and rebuild the partition from cached
    /// reachable sets.
    pub fn resync_after_checkout(
        &mut self,
        heap: &Heap,
        ns: &Namespace,
        changed: &BTreeSet<String>,
    ) {
        for name in changed {
            match ns.peek(name) {
                Some(root) => {
                    let fresh = VarGraph::build(heap, root, &self.config, &mut self.nonce);
                    self.graphs.insert(name.clone(), fresh);
                }
                None => {
                    self.graphs.remove(name);
                }
            }
        }
        // Drop any cached graph whose variable no longer exists.
        self.graphs.retain(|name, _| ns.contains(name));
        let inputs: Vec<(&str, &VarGraph)> = self
            .graphs
            .iter()
            .map(|(n, g)| (n.as_str(), g))
            .collect();
        let comps = components(&inputs);
        self.partition.reset(comps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariable::key;
    use kishu_minipy::Interp;

    fn detector(check_all: bool) -> DeltaDetector {
        DeltaDetector::new(Arc::new(Registry::standard()), true, check_all)
    }

    fn run(interp: &mut Interp, det: &mut DeltaDetector, src: &str) -> StateDelta {
        let out = interp.run_cell(src).expect("parses");
        assert!(out.error.is_none(), "cell failed: {:?}", out.error);
        det.on_cell(&interp.heap, &interp.globals, &out.access)
    }

    #[test]
    fn creation_is_an_update() {
        let mut i = Interp::new();
        let mut d = detector(false);
        let delta = run(&mut i, &mut d, "x = [1, 2, 3]\n");
        assert_eq!(delta.updated, vec![key(&["x"])]);
        assert!(delta.deleted.is_empty());
    }

    #[test]
    fn untouched_covariables_are_skipped() {
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "big = read_csv('x', 1000, 5, 1)\nsmall = [1]\n");
        let delta = run(&mut i, &mut d, "small.append(2)\n");
        assert_eq!(delta.updated, vec![key(&["small"])]);
        // Lemma 1: `big` was not accessed, so it was not even a candidate.
        assert_eq!(delta.candidates_checked, 1);
        assert_eq!(delta.vars_rebuilt, 1);
    }

    #[test]
    fn check_all_mode_checks_everything() {
        let mut i = Interp::new();
        let mut d = detector(true);
        run(&mut i, &mut d, "a = [1]\nb = [2]\nc = [3]\n");
        let delta = run(&mut i, &mut d, "a.append(9)\n");
        assert_eq!(delta.updated, vec![key(&["a"])]);
        // Ablation: every co-variable was a candidate.
        assert_eq!(delta.candidates_checked, 3);
        assert_eq!(delta.vars_rebuilt, 3);
    }

    #[test]
    fn read_only_access_is_checked_but_not_updated() {
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "ls = [3, 1, 2]\n");
        let delta = run(&mut i, &mut d, "total = sum(ls)\n");
        // `ls` was accessed (candidate) but unchanged; `total` is new.
        assert_eq!(delta.updated, vec![key(&["total"])]);
        assert_eq!(delta.candidates_checked, 1);
        assert!(delta.dependencies.contains(&key(&["ls"])));
    }

    #[test]
    fn merge_by_reference_assignment() {
        // Fig 6 bottom-right: obj.foo = st merges co-variables.
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "obj = Object()\nst = ['payload']\n");
        let delta = run(&mut i, &mut d, "obj.foo = st\n");
        assert_eq!(delta.updated, vec![key(&["obj", "st"])]);
        assert!(delta.deleted.contains(&key(&["obj"])));
        assert!(delta.deleted.contains(&key(&["st"])));
    }

    #[test]
    fn split_by_rebinding() {
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "x = [1]\ny = x\n");
        assert_eq!(d.partition().covars(), &[key(&["x", "y"])]);
        let delta = run(&mut i, &mut d, "y = [2]\n");
        // {x, y} splits into {x} and {y}; both are new keys.
        assert!(delta.updated.contains(&key(&["y"])));
        assert!(delta.updated.contains(&key(&["x"])));
        assert_eq!(delta.deleted, vec![key(&["x", "y"])]);
    }

    #[test]
    fn deletion_removes_the_covariable() {
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "tmp = [0]\nkeep = [1]\n");
        let delta = run(&mut i, &mut d, "del tmp\n");
        assert!(delta.updated.is_empty());
        assert_eq!(delta.deleted, vec![key(&["tmp"])]);
        assert_eq!(d.partition().len(), 1);
    }

    #[test]
    fn in_place_update_of_shared_component_updates_whole_covariable() {
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "ser = series('m', ['a', 'b'])\nobj = Object()\nobj.foo = ser.values[1]\n");
        assert_eq!(d.partition().covars(), &[key(&["obj", "ser"])]);
        // Mutate through one member only.
        let delta = run(&mut i, &mut d, "ser.replace('a', 'z')\n");
        assert_eq!(delta.updated, vec![key(&["obj", "ser"])]);
    }

    #[test]
    fn update_through_function_reading_globals_is_caught() {
        // "Complex access patterns" (§2.2): the cell calls a function that
        // touches a global the cell text never names at top level.
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "data = [1, 2]\ndef poke():\n    data.append(99)\n    return len(data)\n");
        let delta = run(&mut i, &mut d, "n = poke()\n");
        assert!(delta.updated.contains(&key(&["data"])), "global mutated inside function");
        assert!(delta.updated.contains(&key(&["n"])));
    }

    #[test]
    fn no_false_negatives_across_constructs() {
        // Sweep of mutation styles; every one must be reported.
        let cases: &[(&str, &str)] = &[
            ("v = [3, 1, 2]\n", "v.sort()\n"),
            ("v = [1, 2, 3]\n", "v[0] = 9\n"),
            ("v = {'a': 1}\n", "v['a'] = 2\n"),
            ("v = {'a': 1}\n", "v.pop('a')\n"),
            ("v = zeros(50)\n", "v[25] = 1.0\n"),
            ("v = zeros(50)\n", "v += 1\n"),
            ("v = Object()\n", "v.attr = 5\n"),
            ("v = [1]\n", "v = [2]\n"),
            ("v = series('s', ['x'])\n", "v.replace('x', 'y')\n"),
            ("v = read_csv('d', 10, 2, 3)\n", "v['c9'] = zeros(10)\n"),
        ];
        for (setup, mutation) in cases {
            let mut i = Interp::new();
            let mut d = detector(false);
            run(&mut i, &mut d, setup);
            let delta = run(&mut i, &mut d, mutation);
            assert!(
                delta.updated.iter().any(|c| c.contains("v")),
                "missed update: {mutation:?}"
            );
        }
    }

    #[test]
    fn dependencies_are_pre_cell_covariables() {
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "df = read_csv('d', 10, 2, 3)\n");
        let delta = run(&mut i, &mut d, "m = df.mean()\n");
        assert_eq!(delta.dependencies, vec![key(&["df"])]);
    }

    #[test]
    fn resync_after_checkout_rebuilds_partition() {
        let mut i = Interp::new();
        let mut d = detector(false);
        run(&mut i, &mut d, "x = [1]\ny = x\nz = [2]\n");
        // Simulate a checkout that replaced y with an unrelated object and
        // deleted z.
        let fresh = i.heap.alloc(kishu_kernel::ObjKind::List(vec![]));
        i.globals.set_untracked("y", fresh);
        i.globals.delete_untracked("z");
        let changed: BTreeSet<String> = ["y".to_string(), "z".to_string()].into();
        d.resync_after_checkout(&i.heap, &i.globals, &changed);
        assert_eq!(d.partition().len(), 2);
        assert_eq!(d.partition().covar_of("y"), Some(&key(&["y"])));
        assert!(d.partition().covar_of("z").is_none());
    }
}
