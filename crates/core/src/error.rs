//! Kishu-level errors.

use std::fmt;

use kishu_minipy::RunError;
use kishu_pickle::PickleError;

use crate::graph::NodeId;

/// Errors surfaced by checkpoint/checkout operations.
#[derive(Debug)]
pub enum KishuError {
    /// The requested checkpoint id does not exist.
    UnknownNode(NodeId),
    /// A co-variable could not be restored: its checkpoint is missing or
    /// unloadable *and* fallback recomputation failed.
    RestoreFailed {
        /// The co-variable's member names.
        covariable: Vec<String>,
        /// Why the final fallback attempt failed.
        reason: String,
    },
    /// Storage I/O failure.
    Storage(std::io::Error),
    /// Serialization failure that was not recoverable by fallback.
    Pickle(PickleError),
    /// A cell re-run during fallback recomputation raised.
    Recompute(RunError),
}

impl fmt::Display for KishuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KishuError::UnknownNode(id) => write!(f, "unknown checkpoint {id:?}"),
            KishuError::RestoreFailed { covariable, reason } => {
                write!(f, "failed to restore co-variable {covariable:?}: {reason}")
            }
            KishuError::Storage(e) => write!(f, "storage error: {e}"),
            KishuError::Pickle(e) => write!(f, "serialization error: {e}"),
            KishuError::Recompute(e) => write!(f, "fallback recomputation failed: {e}"),
        }
    }
}

impl std::error::Error for KishuError {}

impl From<std::io::Error> for KishuError {
    fn from(e: std::io::Error) -> Self {
        KishuError::Storage(e)
    }
}

impl From<PickleError> for KishuError {
    fn from(e: PickleError) -> Self {
        KishuError::Pickle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = KishuError::RestoreFailed {
            covariable: vec!["gmm".into()],
            reason: "no checkpoint".into(),
        };
        assert!(e.to_string().contains("gmm"));
        let e = KishuError::UnknownNode(NodeId(9));
        assert!(e.to_string().contains('9'));
    }
}
