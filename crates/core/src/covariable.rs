//! Co-variables (§4.1): connected components of variables.
//!
//! A co-variable is a maximal set of variable names whose reachable objects
//! form one connected component (Definition 1). Membership is computed by
//! intersecting VarGraph reachable sets (Fig 7): a union-find keyed on
//! object handles merges every pair of variables that can reach a common
//! object. Co-variables are identified by their sorted member-name set —
//! the same identity the Checkpoint Graph versions over time.

use std::collections::{BTreeSet, HashMap};

use kishu_kernel::ObjId;

use crate::vargraph::VarGraph;

/// A co-variable's identity: its sorted member names.
pub type CoVarKey = BTreeSet<String>;

/// Compute the co-variable partition of a set of variables from their
/// VarGraphs' reachable sets. Returns components sorted by their smallest
/// member name (deterministic).
pub fn components(vars: &[(&str, &VarGraph)]) -> Vec<CoVarKey> {
    let mut dsu = Dsu::new(vars.len());
    let mut owner: HashMap<ObjId, usize> = HashMap::new();
    for (i, (_, graph)) in vars.iter().enumerate() {
        for obj in &graph.reachable {
            match owner.get(obj) {
                Some(j) => dsu.union(i, *j),
                None => {
                    owner.insert(*obj, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, CoVarKey> = HashMap::new();
    for (i, (name, _)) in vars.iter().enumerate() {
        groups
            .entry(dsu.find(i))
            .or_default()
            .insert(name.to_string());
    }
    let mut out: Vec<CoVarKey> = groups.into_values().collect();
    out.sort_by(|a, b| a.iter().next().cmp(&b.iter().next()));
    out
}

/// The current co-variable partition of a session's namespace.
///
/// Kept by the delta detector across cells; only the components touching an
/// accessed variable are recomputed per cell (Lemma 1's pruning).
#[derive(Debug, Clone, Default)]
pub struct Partition {
    covars: Vec<CoVarKey>,
    var_to_covar: HashMap<String, usize>,
}

impl Partition {
    /// Empty partition (fresh session).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current components.
    pub fn covars(&self) -> &[CoVarKey] {
        &self.covars
    }

    /// Component containing `name`, if any.
    pub fn covar_of(&self, name: &str) -> Option<&CoVarKey> {
        self.var_to_covar.get(name).map(|i| &self.covars[*i])
    }

    /// Indices of components whose members intersect `names`.
    pub fn intersecting(&self, names: &BTreeSet<String>) -> Vec<usize> {
        let mut idxs: BTreeSet<usize> = BTreeSet::new();
        for n in names {
            if let Some(i) = self.var_to_covar.get(n) {
                idxs.insert(*i);
            }
        }
        idxs.into_iter().collect()
    }

    /// Replace the components at `old_indices` with `new_components`,
    /// leaving all other components untouched. Returns the keys of the old
    /// components that no longer exist (deleted or re-shaped).
    pub fn replace(&mut self, old_indices: &[usize], new_components: Vec<CoVarKey>) -> Vec<CoVarKey> {
        let old_set: BTreeSet<usize> = old_indices.iter().copied().collect();
        let mut kept: Vec<CoVarKey> = Vec::with_capacity(self.covars.len());
        let mut removed: Vec<CoVarKey> = Vec::new();
        for (i, c) in self.covars.drain(..).enumerate() {
            if old_set.contains(&i) {
                removed.push(c);
            } else {
                kept.push(c);
            }
        }
        let new_keys: BTreeSet<&CoVarKey> = new_components.iter().collect();
        let vanished: Vec<CoVarKey> = removed
            .into_iter()
            .filter(|c| !new_keys.contains(c))
            .collect();
        kept.extend(new_components);
        self.covars = kept;
        self.reindex();
        vanished
    }

    /// Rebuild the whole partition (used at checkout, when arbitrary
    /// variables were replaced).
    pub fn reset(&mut self, components: Vec<CoVarKey>) {
        self.covars = components;
        self.reindex();
    }

    fn reindex(&mut self) {
        self.var_to_covar.clear();
        for (i, c) in self.covars.iter().enumerate() {
            for n in c {
                self.var_to_covar.insert(n.clone(), i);
            }
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.covars.len()
    }

    /// Whether there are no components.
    pub fn is_empty(&self) -> bool {
        self.covars.is_empty()
    }
}

struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Convenience: a sorted-key set from names.
pub fn key(names: &[&str]) -> CoVarKey {
    names.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vargraph::{VarGraph, VarGraphConfig};
    use kishu_libsim::Registry;
    use kishu_minipy::Interp;
    use std::sync::Arc;

    fn graphs_for(interp: &Interp, names: &[&str]) -> Vec<(String, VarGraph)> {
        let cfg = VarGraphConfig {
            registry: Arc::new(Registry::standard()),
            hash_arrays: true,
            hash_primitive_lists: false,
        };
        let mut nonce = 0;
        names
            .iter()
            .map(|n| {
                let root = interp.globals.peek(n).expect("bound");
                (n.to_string(), VarGraph::build(&interp.heap, root, &cfg, &mut nonce))
            })
            .collect()
    }

    fn run(interp: &mut Interp, src: &str) {
        let out = interp.run_cell(src).expect("parses");
        assert!(out.error.is_none(), "{:?}", out.error);
    }

    #[test]
    fn fig3_example_partition() {
        // {ser, obj} share 'b'; {df} is independent.
        let mut i = Interp::new();
        run(
            &mut i,
            "ser = series('mood', ['a', 'b', 'c'])\nobj = Object()\nobj.foo = ser.values[1]\ndf = read_csv('x', 5, 2, 1)\n",
        );
        let graphs = graphs_for(&i, &["ser", "obj", "df"]);
        let refs: Vec<(&str, &VarGraph)> = graphs.iter().map(|(n, g)| (n.as_str(), g)).collect();
        let comps = components(&refs);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&key(&["ser", "obj"])));
        assert!(comps.contains(&key(&["df"])));
    }

    #[test]
    fn transitive_sharing_forms_one_component() {
        let mut i = Interp::new();
        run(&mut i, "a = [1]\nb = [a]\nc = [b]\nd = [42]\n");
        let graphs = graphs_for(&i, &["a", "b", "c", "d"]);
        let refs: Vec<(&str, &VarGraph)> = graphs.iter().map(|(n, g)| (n.as_str(), g)).collect();
        let comps = components(&refs);
        assert!(comps.contains(&key(&["a", "b", "c"])));
        assert!(comps.contains(&key(&["d"])));
    }

    #[test]
    fn singletons_stay_separate() {
        let mut i = Interp::new();
        run(&mut i, "x = 1\ny = 1\nz = 'same'\n");
        let graphs = graphs_for(&i, &["x", "y", "z"]);
        let refs: Vec<(&str, &VarGraph)> = graphs.iter().map(|(n, g)| (n.as_str(), g)).collect();
        // Equal values but distinct objects: three singleton co-variables.
        assert_eq!(components(&refs).len(), 3);
    }

    #[test]
    fn aliasing_merges() {
        let mut i = Interp::new();
        run(&mut i, "x = [1, 2]\ny = x\n");
        let graphs = graphs_for(&i, &["x", "y"]);
        let refs: Vec<(&str, &VarGraph)> = graphs.iter().map(|(n, g)| (n.as_str(), g)).collect();
        assert_eq!(components(&refs), vec![key(&["x", "y"])]);
    }

    #[test]
    fn partition_replace_tracks_deletions() {
        let mut p = Partition::new();
        p.reset(vec![key(&["a", "b"]), key(&["c"]), key(&["d"])]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.covar_of("b"), Some(&key(&["a", "b"])));
        // Split {a,b} into {a} and {b}; {c} untouched; re-shape removes the
        // old key.
        let affected = p.intersecting(&key(&["a"]));
        let vanished = p.replace(&affected, vec![key(&["a"]), key(&["b"])]);
        assert_eq!(vanished, vec![key(&["a", "b"])]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.covar_of("a"), Some(&key(&["a"])));
        assert_eq!(p.covar_of("c"), Some(&key(&["c"])));
    }

    #[test]
    fn partition_replace_keeps_identical_components() {
        let mut p = Partition::new();
        p.reset(vec![key(&["a", "b"]), key(&["c"])]);
        let affected = p.intersecting(&key(&["a"]));
        let vanished = p.replace(&affected, vec![key(&["a", "b"])]);
        assert!(vanished.is_empty(), "same shape: nothing vanished");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn intersecting_finds_by_any_member() {
        let mut p = Partition::new();
        p.reset(vec![key(&["a", "b"]), key(&["c"]), key(&["d", "e"])]);
        let hits = p.intersecting(&key(&["b", "e", "zz"]));
        assert_eq!(hits.len(), 2);
    }
}
