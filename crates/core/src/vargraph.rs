//! VarGraphs: per-variable reachable-object graphs (§4.2).
//!
//! A VarGraph captures everything about a variable's connected component
//! that Definition 2 counts as an update: the set of reachable objects
//! (nodes, identified by simulated memory address), the reference structure
//! between them (children, in order), each object's type, and — uniquely
//! versus ElasticNotebook's ID graph — primitive *values*, so a different
//! primitive landing at a recycled address is still detected.
//!
//! Two conservative cases make a graph *volatile* (always considered
//! updated when its variable is accessed):
//!
//! * opaque objects (generators) cannot be traversed into;
//! * library classes flagged `dynamic_identity`/`nondet_pickle` produce
//!   freshly generated reachable objects on every traversal (simulated by a
//!   per-build nonce), the source of Table 5's 14 false positives and 12
//!   pickle errors.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use kishu_kernel::{Heap, ObjId, ObjKind};
use kishu_libsim::Registry;

use crate::xxh64::{xxh64_f64s, xxh64_str};

/// The recorded observation of one reachable object.
#[derive(Debug, Clone, PartialEq)]
pub struct VgNode {
    /// Simulated memory address (CPython `id()`): in-place updates keep it,
    /// rebinding and buffer growth change it.
    pub addr: u64,
    /// `type(x).__name__` analogue; a type change at the same address is an
    /// update.
    pub type_tag: &'static str,
    /// Kind-specific content observation.
    pub value: VgValue,
}

/// Content observation per node kind.
#[derive(Debug, Clone, PartialEq)]
pub enum VgValue {
    /// Primitive: hash of the value bytes.
    Primitive(u64),
    /// Container: child node indices within the graph's `nodes`, in
    /// reference order (captures edge additions/deletions/reorders).
    Container(Vec<u32>),
    /// Array fast path (§6.2): XXH64 of the element bytes.
    ArrayHash(u64),
    /// Array slow path (ablation): the full element vector.
    ArrayFull(Vec<f64>),
    /// Digest of a primitive-only list: one hash over every element's
    /// (address, type, value) in order (the §7.6 list-hashing extension).
    ListDigest(u64),
    /// Library object: epoch counter + payload hash + attribute children.
    External {
        /// In-place modification counter.
        epoch: u64,
        /// Hash of the class-internal payload.
        payload_hash: u64,
        /// Attribute child node indices.
        children: Vec<u32>,
    },
    /// A value that cannot be observed stably: opaque objects and
    /// dynamically-generated reachables. Carries a per-build nonce so two
    /// builds never compare equal.
    Volatile(u64),
}

/// A variable's reachable-object graph.
#[derive(Debug, Clone)]
pub struct VarGraph {
    /// Nodes in BFS order from the root.
    pub nodes: Vec<VgNode>,
    /// Currently reachable object handles (used for co-variable
    /// membership intersection, Fig 7).
    pub reachable: BTreeSet<ObjId>,
    /// Whether the graph contains a volatile node — if so, any comparison
    /// reports an update (the conservative direction).
    pub volatile: bool,
}

/// Configuration for VarGraph construction.
#[derive(Debug, Clone)]
pub struct VarGraphConfig {
    /// Class behaviour source.
    pub registry: Arc<Registry>,
    /// Use the XXH64 fast path for arrays (`true`, Kishu's default) or
    /// record full element vectors (`false`, the ablation in the
    /// `vargraph_vs_hash` bench).
    pub hash_arrays: bool,
    /// Collapse lists whose elements are all primitives into a single
    /// digest node instead of one node per element — the "list hashing"
    /// optimization §7.6 leaves as future work (the `Sklearn` `text_neg`
    /// case). Elements stay in the reachable set, so co-variable
    /// membership is unaffected; only the per-node records are collapsed.
    pub hash_primitive_lists: bool,
}

impl VarGraphConfig {
    /// Default configuration over a registry (hash fast path on, list
    /// hashing off — the paper's shipped configuration).
    pub fn new(registry: Arc<Registry>) -> Self {
        VarGraphConfig {
            registry,
            hash_arrays: true,
            hash_primitive_lists: false,
        }
    }
}

impl VarGraph {
    /// Build the VarGraph of the object bound to a variable.
    ///
    /// `nonce` is a session-level counter used to stamp volatile nodes; it
    /// is bumped on every volatile observation so no two builds of a
    /// volatile graph compare equal.
    pub fn build(heap: &Heap, root: ObjId, config: &VarGraphConfig, nonce: &mut u64) -> VarGraph {
        let mut index: HashMap<ObjId, u32> = HashMap::new();
        let mut order: Vec<ObjId> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert(root, 0);
        order.push(root);
        queue.push_back(root);
        let mut digest_only: BTreeSet<ObjId> = BTreeSet::new();
        // First pass: BFS assigning node indices. Children of digestible
        // primitive-only lists join the reachable set but get no node.
        while let Some(id) = queue.pop_front() {
            let children = heap.children(id);
            if config.hash_primitive_lists && is_digestible_list(heap, id, &children) {
                digest_only.extend(children.iter().copied());
                continue;
            }
            for child in children {
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(child) {
                    e.insert(order.len() as u32);
                    order.push(child);
                    queue.push_back(child);
                }
            }
        }
        // Second pass: record observations.
        let mut nodes = Vec::with_capacity(order.len());
        let mut volatile = false;
        for id in &order {
            let kind = heap.kind(*id);
            let value = match kind {
                ObjKind::None => VgValue::Primitive(0),
                ObjKind::Bool(b) => VgValue::Primitive(1 + *b as u64),
                ObjKind::Int(v) => VgValue::Primitive(xxh64_str(&format!("i{v}"), 0)),
                ObjKind::Float(v) => VgValue::Primitive(v.to_bits().wrapping_mul(0x9E3779B97F4A7C15)),
                ObjKind::Str(s) => VgValue::Primitive(xxh64_str(s, 1)),
                ObjKind::NdArray(values) => {
                    if config.hash_arrays {
                        VgValue::ArrayHash(xxh64_f64s(values, 0))
                    } else {
                        VgValue::ArrayFull(values.clone())
                    }
                }
                ObjKind::Generator { .. } => {
                    volatile = true;
                    *nonce += 1;
                    VgValue::Volatile(*nonce)
                }
                ObjKind::External {
                    class,
                    attrs,
                    payload,
                    epoch,
                } => {
                    let behavior = config.registry.behavior(*class);
                    if behavior.volatile() {
                        volatile = true;
                        *nonce += 1;
                        VgValue::Volatile(*nonce)
                    } else {
                        let children = attrs
                            .iter()
                            .map(|(_, v)| index[v])
                            .collect();
                        VgValue::External {
                            epoch: *epoch,
                            payload_hash: crate::xxh64::xxh64(payload, 2),
                            children,
                        }
                    }
                }
                ObjKind::Function { source, .. } => VgValue::Primitive(xxh64_str(source, 3)),
                ObjKind::List(children)
                    if config.hash_primitive_lists
                        && is_digestible_list(heap, *id, children) =>
                {
                    VgValue::ListDigest(digest_primitive_list(heap, children))
                }
                _ => {
                    let children = heap.children(*id).iter().map(|c| index[c]).collect();
                    VgValue::Container(children)
                }
            };
            nodes.push(VgNode {
                addr: heap.addr(*id),
                type_tag: kind.type_tag(),
                value,
            });
        }
        let mut reachable: BTreeSet<ObjId> = order.into_iter().collect();
        reachable.extend(digest_only);
        VarGraph {
            nodes,
            reachable,
            volatile,
        }
    }

    /// Whether two builds of the same variable differ — Definition 2's
    /// "modified", plus the conservative volatile case.
    pub fn differs_from(&self, other: &VarGraph) -> bool {
        if self.volatile || other.volatile {
            return true;
        }
        self.nodes != other.nodes
    }

    /// Whether this graph's component intersects another's (shared
    /// reachable objects ⇒ same co-variable, Fig 7).
    pub fn intersects(&self, other: &VarGraph) -> bool {
        let (small, large) = if self.reachable.len() <= other.reachable.len() {
            (&self.reachable, &other.reachable)
        } else {
            (&other.reachable, &self.reachable)
        };
        small.iter().any(|id| large.contains(id))
    }

    /// Number of reachable objects.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a graph with no nodes (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Whether a list qualifies for the digest fast path: non-empty and all
/// elements primitive.
fn is_digestible_list(heap: &Heap, id: ObjId, children: &[ObjId]) -> bool {
    matches!(heap.kind(id), ObjKind::List(_))
        && !children.is_empty()
        && children.iter().all(|c| heap.kind(*c).is_primitive())
}

/// One hash over every element's identity, type, and value.
fn digest_primitive_list(heap: &Heap, children: &[ObjId]) -> u64 {
    let mut acc = 0x51u64;
    for c in children {
        let value_hash = match heap.kind(*c) {
            ObjKind::None => 0,
            ObjKind::Bool(b) => 1 + *b as u64,
            ObjKind::Int(v) => xxh64_str(&format!("i{v}"), 0),
            ObjKind::Float(v) => v.to_bits().wrapping_mul(0x9E3779B97F4A7C15),
            ObjKind::Str(s) => xxh64_str(s, 1),
            _ => unreachable!("digestible lists hold primitives only"),
        };
        acc = acc
            .rotate_left(13)
            .wrapping_add(heap.addr(*c))
            .rotate_left(7)
            .wrapping_add(value_hash);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_minipy::Interp;

    fn config() -> VarGraphConfig {
        VarGraphConfig {
            registry: Arc::new(Registry::standard()),
            hash_arrays: true,
            hash_primitive_lists: false,
        }
    }

    fn build_for(interp: &Interp, name: &str, cfg: &VarGraphConfig, nonce: &mut u64) -> VarGraph {
        let root = interp.globals.peek(name).expect("bound");
        VarGraph::build(&interp.heap, root, cfg, nonce)
    }

    fn run(interp: &mut Interp, src: &str) {
        let out = interp.run_cell(src).expect("parses");
        if let Some(e) = out.error {
            panic!("cell failed: {e}");
        }
    }

    #[test]
    fn unchanged_variable_compares_equal() {
        let mut i = Interp::new();
        run(&mut i, "ls = [1, 2, 3]\nother = [9]\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "ls", &cfg, &mut nonce);
        run(&mut i, "other.append(10)\n");
        let g2 = build_for(&i, "ls", &cfg, &mut nonce);
        assert!(!g1.differs_from(&g2));
    }

    #[test]
    fn in_place_update_is_detected() {
        let mut i = Interp::new();
        run(&mut i, "ls = [1, 2, 3]\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "ls", &cfg, &mut nonce);
        run(&mut i, "ls[0] = 99\n");
        let g2 = build_for(&i, "ls", &cfg, &mut nonce);
        assert!(g1.differs_from(&g2));
    }

    #[test]
    fn structural_change_is_detected() {
        let mut i = Interp::new();
        run(&mut i, "d = {'a': 1}\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "d", &cfg, &mut nonce);
        run(&mut i, "d['b'] = 2\n");
        let g2 = build_for(&i, "d", &cfg, &mut nonce);
        assert!(g1.differs_from(&g2));
    }

    #[test]
    fn array_single_element_update_detected_by_hash() {
        // §4.3's Remark: NumPy memory-based updates still invoked via
        // referencing are caught.
        let mut i = Interp::new();
        run(&mut i, "arr = zeros(1000)\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "arr", &cfg, &mut nonce);
        run(&mut i, "arr[500] = arr[500] + 1\n");
        let g2 = build_for(&i, "arr", &cfg, &mut nonce);
        assert!(g1.differs_from(&g2));
    }

    #[test]
    fn ablation_full_array_values_also_detect() {
        let mut i = Interp::new();
        run(&mut i, "arr = zeros(100)\n");
        let cfg = VarGraphConfig {
            registry: Arc::new(Registry::standard()),
            hash_arrays: false,
            hash_primitive_lists: false,
        };
        let mut nonce = 0;
        let g1 = build_for(&i, "arr", &cfg, &mut nonce);
        run(&mut i, "arr[3] = 7.0\n");
        let g2 = build_for(&i, "arr", &cfg, &mut nonce);
        assert!(g1.differs_from(&g2));
        assert!(matches!(g1.nodes[0].value, VgValue::ArrayFull(_)));
    }

    #[test]
    fn shared_reference_intersection() {
        // Fig 7: ser and obj share 'b', so their graphs intersect; df is
        // separate.
        let mut i = Interp::new();
        run(
            &mut i,
            "ser = series('mood', ['a', 'b', 'c'])\nobj = Object()\nobj.foo = ser.values[1]\ndf = read_csv('x', 10, 2, 1)\n",
        );
        let cfg = config();
        let mut nonce = 0;
        let g_ser = build_for(&i, "ser", &cfg, &mut nonce);
        let g_obj = build_for(&i, "obj", &cfg, &mut nonce);
        let g_df = build_for(&i, "df", &cfg, &mut nonce);
        assert!(g_ser.intersects(&g_obj));
        assert!(!g_ser.intersects(&g_df));
        assert!(!g_obj.intersects(&g_df));
    }

    #[test]
    fn rebinding_changes_address_hence_differs() {
        let mut i = Interp::new();
        run(&mut i, "x = [1, 2]\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "x", &cfg, &mut nonce);
        run(&mut i, "x = [1, 2]\n"); // same value, new object
        let g2 = build_for(&i, "x", &cfg, &mut nonce);
        assert!(g1.differs_from(&g2));
    }

    #[test]
    fn generators_make_graphs_volatile() {
        let mut i = Interp::new();
        run(&mut i, "g = make_generator()\nls = [g]\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "ls", &cfg, &mut nonce);
        let g2 = build_for(&i, "ls", &cfg, &mut nonce);
        assert!(g1.volatile);
        assert!(g1.differs_from(&g2), "volatile graphs always differ");
    }

    #[test]
    fn dynamic_identity_classes_are_false_positives() {
        let mut i = Interp::new();
        kishu_libsim::install(&mut i, Arc::new(Registry::standard()));
        run(&mut i, "fig = lib_obj('plt.Figure', 64, 1)\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "fig", &cfg, &mut nonce);
        let g2 = build_for(&i, "fig", &cfg, &mut nonce);
        assert!(g1.differs_from(&g2), "nothing changed, but detection is conservative");
    }

    #[test]
    fn clean_external_classes_compare_stably() {
        let mut i = Interp::new();
        kishu_libsim::install(&mut i, Arc::new(Registry::standard()));
        run(&mut i, "m = lib_obj('sk.KMeans', 64, 1)\n");
        let cfg = config();
        let mut nonce = 0;
        let g1 = build_for(&i, "m", &cfg, &mut nonce);
        let g2 = build_for(&i, "m", &cfg, &mut nonce);
        assert!(!g1.differs_from(&g2));
        run(&mut i, "m.fit(3)\n");
        let g3 = build_for(&i, "m", &cfg, &mut nonce);
        assert!(g1.differs_from(&g3), "fit must be detected");
    }

    #[test]
    fn cycles_terminate() {
        let mut i = Interp::new();
        run(&mut i, "a = []\na.append(a)\n");
        let cfg = config();
        let mut nonce = 0;
        let g = build_for(&i, "a", &cfg, &mut nonce);
        assert_eq!(g.len(), 1);
        assert_eq!(g.nodes[0].value, VgValue::Container(vec![0]));
    }
}
