//! Cell-visible constructors and methods for the simulated classes.
//!
//! After [`install`], minipy cells can write the library-flavoured code the
//! paper's notebooks contain:
//!
//! ```text
//! gmm = lib_obj('sk.GaussianMixture')
//! gmm.fit(df, 3)          # deterministic: same inputs -> same state
//! plot = gmm.result(100)  # derived array
//! ```
//!
//! `fit`/`update` mutate the object's payload **in place** (bumping its
//! epoch), which is what Kishu's delta detection must notice; `fit_random`
//! folds in session entropy, making the cell nondeterministic — the §5.3
//! caveat for fallback recomputation.

use std::rc::Rc;
use std::sync::Arc;

use kishu_kernel::{ObjId, ObjKind};
use kishu_minipy::error::{RunError, RunErrorKind};
use kishu_minipy::interp::{ExternalDispatch, Interp};

use crate::registry::Registry;

/// Method dispatcher for `ObjKind::External` objects.
pub struct LibDispatch {
    registry: Arc<Registry>,
}

impl LibDispatch {
    /// Dispatcher over a shared registry.
    pub fn new(registry: Arc<Registry>) -> Self {
        LibDispatch { registry }
    }
}

/// Register the library constructors and method dispatch into an
/// interpreter. Returns the shared registry for use by Kishu and baselines.
pub fn install(interp: &mut Interp, registry: Arc<Registry>) {
    interp.set_external_dispatch(Rc::new(LibDispatch::new(registry.clone())));

    let reg = registry.clone();
    interp.register_builtin(
        "lib_obj",
        Rc::new(move |i: &mut Interp, args: Vec<ObjId>, _kwargs| {
            if args.is_empty() || args.len() > 3 {
                return Err(RunError::new(
                    RunErrorKind::TypeError,
                    "lib_obj(name[, size[, seed]]) takes 1-3 arguments",
                ));
            }
            let name = i.expect_str(args[0])?.to_string();
            let spec = reg.by_name(&name).ok_or_else(|| {
                RunError::new(
                    RunErrorKind::LibraryError,
                    format!("unknown library class `{name}`"),
                )
            })?;
            let size = if args.len() >= 2 {
                i.expect_int(args[1])?.max(0) as usize
            } else {
                spec.behavior.default_payload
            };
            let seed = if args.len() >= 3 {
                i.expect_int(args[2])? as u64
            } else {
                0x5EED
            };
            let payload = derive_payload(size, seed);
            Ok(i.heap.alloc(ObjKind::External {
                class: spec.id,
                attrs: Vec::new(),
                payload,
                epoch: 0,
            }))
        }),
    );
}

/// Deterministic payload bytes from (size, seed).
pub fn derive_payload(size: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..size)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

fn fold_args(interp: &Interp, args: &[ObjId]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for a in args {
        match interp.heap.kind(*a) {
            ObjKind::Int(v) => mix(*v as u64),
            ObjKind::Float(v) => mix(v.to_bits()),
            ObjKind::Bool(b) => mix(*b as u64),
            ObjKind::Str(s) => {
                for b in s.bytes() {
                    mix(b as u64);
                }
            }
            ObjKind::NdArray(vs) => {
                mix(vs.len() as u64);
                for v in vs.iter().take(64) {
                    mix(v.to_bits());
                }
            }
            ObjKind::External { payload, epoch, .. } => {
                mix(*epoch);
                mix(payload.len() as u64);
                for b in payload.iter().take(64) {
                    mix(*b as u64);
                }
            }
            other => mix(other.shallow_size() as u64),
        }
    }
    h
}

impl ExternalDispatch for LibDispatch {
    fn call_method(
        &self,
        interp: &mut Interp,
        recv: ObjId,
        method: &str,
        args: &[ObjId],
        _kwargs: &[(String, ObjId)],
    ) -> Option<Result<ObjId, RunError>> {
        let (class, payload_len, epoch) = match interp.heap.kind(recv) {
            ObjKind::External { class, payload, epoch, .. } => (*class, payload.len(), *epoch),
            _ => return None,
        };
        let spec = self.registry.get(class)?;
        let _ = spec;
        match method {
            // Deterministic in-place training: new payload is a pure
            // function of the old payload and the arguments.
            "fit" | "transform" | "update" => {
                // Simulated compute: training/updating costs wall time
                // proportional to the model state produced.
                let bps = if method == "update" {
                    kishu_kernel::simcost::UPDATE_BPS
                } else {
                    kishu_kernel::simcost::TRAIN_BPS
                };
                kishu_kernel::simcost::charge_bytes(payload_len as u64, bps);
                let seed = fold_args(interp, args) ^ epoch.wrapping_mul(0x9E37);
                let size = payload_len.max(1);
                let fresh = derive_payload(size, seed);
                interp.heap.modify(recv, |k| {
                    if let ObjKind::External { payload, epoch, .. } = k {
                        *payload = fresh;
                        *epoch += 1;
                    }
                });
                Some(Ok(interp.heap.alloc(ObjKind::None)))
            }
            // Nondeterministic training: folds in session entropy, so
            // re-running the cell yields a different state (§5.3 caveat).
            "fit_random" => {
                kishu_kernel::simcost::charge_bytes(
                    payload_len as u64,
                    kishu_kernel::simcost::TRAIN_BPS,
                );
                let noise = (interp.next_random() * u64::MAX as f64) as u64;
                let seed = fold_args(interp, args) ^ noise;
                let size = payload_len.max(1);
                let fresh = derive_payload(size, seed);
                interp.heap.modify(recv, |k| {
                    if let ObjKind::External { payload, epoch, .. } = k {
                        *payload = fresh;
                        *epoch += 1;
                    }
                });
                Some(Ok(interp.heap.alloc(ObjKind::None)))
            }
            // Derived outputs: pure functions of the current state.
            "result" | "predict" | "sample" => {
                let n = match args.first() {
                    Some(a) => match interp.expect_int(*a) {
                        Ok(v) => v.max(0) as usize,
                        Err(e) => return Some(Err(e)),
                    },
                    None => 64,
                };
                let seed = fold_args(interp, &[recv]);
                let values: Vec<f64> = kishu_minipy::builtins::seeded_values(n, seed);
                Some(Ok(interp.heap.alloc(ObjKind::NdArray(values))))
            }
            "score" => {
                let seed = fold_args(interp, &[recv]);
                let v = kishu_minipy::builtins::seeded_values(1, seed)[0];
                Some(Ok(interp.heap.alloc(ObjKind::Float(v))))
            }
            "resize" => {
                let n = match args.first() {
                    Some(a) => match interp.expect_int(*a) {
                        Ok(v) => v.max(0) as usize,
                        Err(e) => return Some(Err(e)),
                    },
                    None => return Some(Err(RunError::new(
                        RunErrorKind::TypeError,
                        "resize(n) takes one argument",
                    ))),
                };
                let fresh = derive_payload(n, epoch ^ 0xABCD);
                interp.heap.modify(recv, |k| {
                    if let ObjKind::External { payload, epoch, .. } = k {
                        *payload = fresh;
                        *epoch += 1;
                    }
                });
                Some(Ok(interp.heap.alloc(ObjKind::None)))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> (Interp, Arc<Registry>) {
        let mut interp = Interp::new();
        let registry = Arc::new(Registry::standard());
        install(&mut interp, registry.clone());
        (interp, registry)
    }

    fn run(interp: &mut Interp, src: &str) {
        let out = interp.run_cell(src).expect("parses");
        if let Some(e) = out.error {
            panic!("cell failed: {e}");
        }
    }

    fn payload_of(interp: &Interp, name: &str) -> Vec<u8> {
        let id = interp.globals.peek(name).expect("bound");
        match interp.heap.kind(id) {
            ObjKind::External { payload, .. } => payload.clone(),
            other => panic!("{name} is {other:?}"),
        }
    }

    #[test]
    fn constructor_creates_external() {
        let (mut i, registry) = session();
        run(&mut i, "m = lib_obj('sk.KMeans', 1000, 42)\n");
        let id = i.globals.peek("m").expect("bound");
        match i.heap.kind(id) {
            ObjKind::External { class, payload, .. } => {
                assert_eq!(*class, registry.by_name("sk.KMeans").expect("exists").id);
                assert_eq!(payload.len(), 1000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_class_is_an_error() {
        let (mut i, _) = session();
        let out = i.run_cell("m = lib_obj('not.AClass')\n").expect("parses");
        assert!(matches!(out.error, Some(e) if e.kind == RunErrorKind::LibraryError));
    }

    #[test]
    fn fit_is_deterministic_and_in_place() {
        let (mut i, _) = session();
        run(&mut i, "m = lib_obj('sk.GaussianMixture', 256, 1)\nbefore = id(m)\n");
        let p0 = payload_of(&i, "m");
        run(&mut i, "m.fit(3)\nafter = id(m)\n");
        let p1 = payload_of(&i, "m");
        assert_ne!(p0, p1, "fit must change the payload");
        // In place: same address.
        let b = i.globals.peek("before").expect("b");
        let a = i.globals.peek("after").expect("a");
        assert!(i.value_eq(a, b));
        // Deterministic: a fresh object fit with the same args converges.
        run(&mut i, "m2 = lib_obj('sk.GaussianMixture', 256, 1)\nm2.fit(3)\n");
        assert_eq!(payload_of(&i, "m2"), p1);
    }

    #[test]
    fn fit_random_is_nondeterministic() {
        let (mut i, _) = session();
        run(&mut i, "a = lib_obj('sk.KMeans', 64, 1)\nb = lib_obj('sk.KMeans', 64, 1)\na.fit_random(1)\nb.fit_random(1)\n");
        assert_ne!(payload_of(&i, "a"), payload_of(&i, "b"));
    }

    #[test]
    fn result_derives_from_state() {
        let (mut i, _) = session();
        run(&mut i, "m = lib_obj('sk.PCA', 128, 5)\nr1 = m.result(16)\nr2 = m.result(16)\nm.fit(1)\nr3 = m.result(16)\n");
        let r1 = i.globals.peek("r1").expect("r1");
        let r2 = i.globals.peek("r2").expect("r2");
        let r3 = i.globals.peek("r3").expect("r3");
        assert!(i.value_eq(r1, r2), "same state, same result");
        assert!(!i.value_eq(r1, r3), "fit changes the result");
    }

    #[test]
    fn unknown_method_raises_attribute_error() {
        let (mut i, _) = session();
        let out = i.run_cell("m = lib_obj('pd.DataFrame')\nm.no_such_method()\n").expect("parses");
        assert!(matches!(out.error, Some(e) if e.kind == RunErrorKind::AttributeError));
    }

    #[test]
    fn epoch_counts_updates() {
        let (mut i, _) = session();
        run(&mut i, "m = lib_obj('xgb.DMatrix', 32, 0)\nm.update(1)\nm.update(2)\n");
        let id = i.globals.peek("m").expect("bound");
        match i.heap.kind(id) {
            ObjKind::External { epoch, .. } => assert_eq!(*epoch, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
