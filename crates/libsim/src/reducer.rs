//! Registry-backed reduction instructions.

use std::sync::Arc;

use kishu_kernel::ClassId;
use kishu_pickle::{PickleError, Reducer};

use crate::registry::Registry;

/// A [`Reducer`] that enforces each class's behavioural flags:
/// unserializable classes refuse to dump, deserialize-failing classes refuse
/// to load, and silently erroneous classes corrupt their payload without
/// raising (§6.2).
#[derive(Clone)]
pub struct LibReducer {
    registry: Arc<Registry>,
}

impl LibReducer {
    /// Reducer over a shared registry.
    pub fn new(registry: Arc<Registry>) -> Self {
        LibReducer { registry }
    }
}

impl Reducer for LibReducer {
    fn reduce(&self, class: ClassId, payload: &[u8]) -> Result<Vec<u8>, PickleError> {
        let spec = self.registry.get(class);
        if let Some(spec) = spec {
            if spec.behavior.unserializable {
                return Err(PickleError::Unserializable {
                    type_tag: spec.name.to_string(),
                });
            }
        }
        // Off-process classes are exactly the ones whose *reduction* makes
        // them storable at the application level: the payload stands for the
        // reduction instructions (`__reduce__`), not raw process memory.
        Ok(payload.to_vec())
    }

    fn rebuild(&self, class: ClassId, stored: &[u8]) -> Result<Vec<u8>, PickleError> {
        let spec = self.registry.get(class);
        if let Some(spec) = spec {
            if spec.behavior.deserialize_fails {
                return Err(PickleError::DeserializeFailed {
                    reason: spec.name.to_string(),
                });
            }
            if spec.behavior.silent_error && !stored.is_empty() {
                // Round-trips "successfully" but wrong: the silent pickle
                // error Kishu cannot prevent, only blocklist (§6.2).
                let mut wrong = stored.to_vec();
                wrong[0] ^= 0x01;
                return Ok(wrong);
            }
        }
        Ok(stored.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_kernel::{Heap, ObjKind};
    use kishu_pickle::{dumps, loads};

    fn external(heap: &mut Heap, class: ClassId, payload: Vec<u8>) -> kishu_kernel::ObjId {
        heap.alloc(ObjKind::External {
            class,
            attrs: Vec::new(),
            payload,
            epoch: 0,
        })
    }

    #[test]
    fn unserializable_class_refuses_dump() {
        let registry = Arc::new(Registry::standard());
        let reducer = LibReducer::new(registry.clone());
        let lazy = registry.by_name("pl.LazyFrame").expect("exists").id;
        let mut heap = Heap::new();
        let obj = external(&mut heap, lazy, vec![1, 2, 3]);
        let err = dumps(&heap, &[obj], &reducer).expect_err("must refuse");
        assert!(matches!(err, PickleError::Unserializable { .. }));
    }

    #[test]
    fn deserialize_failing_class_dumps_but_wont_load() {
        let registry = Arc::new(Registry::standard());
        let reducer = LibReducer::new(registry.clone());
        let bokeh = registry.by_name("bokeh.figure").expect("exists").id;
        let mut heap = Heap::new();
        let obj = external(&mut heap, bokeh, vec![1, 2, 3]);
        let blob = dumps(&heap, &[obj], &reducer).expect("dump ok");
        let err = loads(&mut heap, &blob, &reducer).expect_err("load fails");
        assert!(matches!(err, PickleError::DeserializeFailed { .. }));
    }

    #[test]
    fn silent_error_class_roundtrips_wrong() {
        let registry = Arc::new(Registry::standard());
        let reducer = LibReducer::new(registry.clone());
        let wc = registry.by_name("wordcloud.WordCloud").expect("exists").id;
        let mut heap = Heap::new();
        let obj = external(&mut heap, wc, vec![0xAA, 0xBB]);
        let blob = dumps(&heap, &[obj], &reducer).expect("dump ok");
        let back = loads(&mut heap, &blob, &reducer).expect("load 'succeeds'");
        match heap.kind(back[0]) {
            ObjKind::External { payload, .. } => {
                assert_ne!(payload, &vec![0xAA, 0xBB], "payload silently corrupted");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clean_and_off_process_classes_roundtrip_exactly() {
        let registry = Arc::new(Registry::standard());
        let reducer = LibReducer::new(registry.clone());
        let mut heap = Heap::new();
        for name in ["pd.DataFrame", "torch.Tensor", "ray.data.Dataset"] {
            let id = registry.by_name(name).expect("exists").id;
            let obj = external(&mut heap, id, vec![5; 64]);
            let blob = dumps(&heap, &[obj], &reducer).expect("dump");
            let back = loads(&mut heap, &blob, &reducer).expect("load");
            assert_eq!(heap.kind(back[0]), heap.kind(obj), "{name} must roundtrip");
        }
    }
}
