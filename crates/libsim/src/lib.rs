//! # kishu-libsim — the 146 simulated data-science library classes
//!
//! The paper's generalizability claims (§7.2) are quantified over 146 object
//! classes from popular data-science libraries (Table 3), of which specific
//! subsets defeat specific mechanisms (Table 4) or degrade Kishu's update
//! detection from "success" to "conservative" (Table 5). None of those
//! results depend on the classes' numerics — only on *how many classes
//! exhibit which pathology*. This crate therefore provides:
//!
//! * a [`Registry`] of 146 named classes across the paper's 8 categories,
//!   each carrying a [`Behavior`] with the flags that drive the experiments:
//!   - `unserializable` (5 classes) — reduction refuses at dump time
//!     (`pl.LazyFrame`-like); DumpSession dies, Kishu falls back to
//!     recomputation;
//!   - `deserialize_fails` (2) — stores fine, refuses to rebuild
//!     (`bokeh.figure`-like);
//!   - `silent_error` (5) — round-trips without raising but wrong (§6.2);
//!   - together those 12 are the Table 5 "Pickle Error" bucket
//!     ([`Behavior::nondet_pickle`]);
//!   - `dynamic_identity` (14) — traversal sees freshly generated reachable
//!     objects each time, producing Table 5's false positives;
//!   - `off_process` (6) — state lives in another process or on a device
//!     (Spark/Ray/GPU tensors); OS-level snapshots cannot capture it;
//! * [`LibReducer`] — a [`kishu_pickle::Reducer`] enforcing those flags;
//! * [`install`] — registers constructors and an
//!   [`ExternalDispatch`](kishu_minipy::interp::ExternalDispatch) so minipy
//!   cells can create and mutate these objects (`m = lib_obj('sk.GMM')`,
//!   `m.fit(...)`).

pub mod dispatch;
pub mod reducer;
pub mod registry;

pub use dispatch::{install, LibDispatch};
pub use reducer::LibReducer;
pub use registry::{Behavior, Category, ClassSpec, Registry};
