//! The class registry: 146 simulated classes, Table 3's categories,
//! Tables 4/5's behavioural flags.

use std::collections::HashMap;

use kishu_kernel::ClassId;

/// The eight library categories of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// pandas, polars, pyarrow, numpy, ...
    DataAnalysis,
    /// matplotlib, plotly, seaborn, bokeh, ...
    DataVisualization,
    /// sklearn, xgboost, scipy, statsmodels, ...
    MachineLearning,
    /// tensorflow, torch, keras, jax, ...
    DeepLearning,
    /// nltk, textblob, spacy, gensim, ...
    Nlp,
    /// photutils, torchvision, opencv, ...
    ComputerVision,
    /// pyspark, ray, dask, optuna, ...
    DistComputing,
    /// huggingface, transformers, airflow, ...
    DataPipelining,
}

impl Category {
    /// All categories, in Table 3 order.
    pub const ALL: [Category; 8] = [
        Category::DataAnalysis,
        Category::DataVisualization,
        Category::MachineLearning,
        Category::DeepLearning,
        Category::Nlp,
        Category::ComputerVision,
        Category::DistComputing,
        Category::DataPipelining,
    ];

    /// Display name as in Table 3.
    pub fn label(&self) -> &'static str {
        match self {
            Category::DataAnalysis => "Data Analysis",
            Category::DataVisualization => "Data Visualization",
            Category::MachineLearning => "Machine Learning",
            Category::DeepLearning => "Deep Learning",
            Category::Nlp => "NLP",
            Category::ComputerVision => "Computer Vision",
            Category::DistComputing => "Dist. Computing",
            Category::DataPipelining => "Data Pipelining",
        }
    }
}

/// Behavioural flags of one class — the drivers of Figs 12 and Tables 4/5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Behavior {
    /// Reduction refuses at dump time (`pl.LazyFrame`-like). DumpSession
    /// fails outright; Kishu skips storage and uses fallback recomputation.
    pub unserializable: bool,
    /// Stores fine but refuses to rebuild (`bokeh.figure`-like).
    pub deserialize_fails: bool,
    /// Round-trips without raising, but the rebuilt payload is wrong
    /// (§6.2's silent serialization errors).
    pub silent_error: bool,
    /// Traversal encounters freshly generated reachable objects on every
    /// visit (dynamically created datatype objects), so VarGraph comparison
    /// conservatively reports an update whenever the object is accessed —
    /// Table 5's false positives.
    pub dynamic_identity: bool,
    /// The class's real state lives outside the kernel process (Spark/Ray
    /// workers, GPU memory). OS-level snapshots cannot capture it; Kishu's
    /// reduction-based storage can.
    pub off_process: bool,
    /// Default payload size in bytes for objects constructed without an
    /// explicit size.
    pub default_payload: usize,
}

impl Behavior {
    /// Whether the class cannot be *deterministically* stored — the union
    /// Table 5 reports as "Pickle Error" (12 classes): unserializable,
    /// deserialize-failing, or silently erroneous.
    pub fn nondet_pickle(&self) -> bool {
        self.unserializable || self.deserialize_fails || self.silent_error
    }

    /// Whether Kishu's update detection must be conservative for this class
    /// (report an update whenever accessed).
    pub fn volatile(&self) -> bool {
        self.nondet_pickle() || self.dynamic_identity
    }
}

/// One registered class.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Stable id (index into the registry).
    pub id: ClassId,
    /// Qualified name as a notebook user would write it (`sk.GMM`).
    pub name: &'static str,
    /// Table 3 category.
    pub category: Category,
    /// Behavioural flags.
    pub behavior: Behavior,
}

/// The registry of all simulated classes.
#[derive(Debug, Clone)]
pub struct Registry {
    classes: Vec<ClassSpec>,
    by_name: HashMap<&'static str, ClassId>,
}

/// Classes whose reduction refuses at dump time (5).
const UNSERIALIZABLE: [&str; 5] = [
    "pl.LazyFrame",
    "ray.ObjectRef",
    "tf.data.Dataset",
    "optuna.Study",
    "hashlib.sha256",
];

/// Classes that store but refuse to rebuild (2).
const DESERIALIZE_FAILS: [&str; 2] = ["bokeh.figure", "plotly.FigureWidget"];

/// Classes with silent round-trip corruption (5). With the 7 above, these
/// form Table 5's 12 "Pickle Error" classes.
const SILENT_ERROR: [&str; 5] = [
    "sns.FacetGrid",
    "nltk.FreqDist",
    "wordcloud.WordCloud",
    "keras.History",
    "xgb.Booster",
];

/// Classes with dynamically generated reachable objects (14) — Table 5's
/// false positives.
const DYNAMIC_IDENTITY: [&str; 14] = [
    "plt.Figure",
    "plt.Axes",
    "plt.Line2D",
    "plt.Colorbar",
    "sns.PairGrid",
    "altair.Chart",
    "spacy.Doc",
    "spacy.Token",
    "re.Match",
    "nltk.Tree",
    "sm.SARIMAX",
    "dask.Delayed",
    "airflow.DAG",
    "PIL.Image",
];

/// Classes whose state lives off-process (6) — Table 4's CRIU failures.
const OFF_PROCESS: [&str; 6] = [
    "pyspark.sql.DataFrame",
    "ray.data.Dataset",
    "tf.Tensor",
    "torch.Tensor",
    "transformers.Pipeline",
    "transformers.BertTokenizer",
];

const DATA_ANALYSIS: [&str; 20] = [
    "pd.DataFrame", "pd.Series", "pd.Index", "pd.MultiIndex", "pd.Categorical",
    "pd.Timestamp", "pd.Timedelta", "pd.GroupBy", "pl.DataFrame", "pl.Series",
    "pl.LazyFrame", "pa.Table", "pa.RecordBatch", "pa.Array", "pa.Schema",
    "np.ndarray", "np.matrix", "np.ma.MaskedArray", "np.recarray",
    "scipy.sparse.csr_matrix",
];

const DATA_VISUALIZATION: [&str; 18] = [
    "plt.Figure", "plt.Axes", "plt.Line2D", "plt.Colorbar", "sns.FacetGrid",
    "sns.PairGrid", "sns.JointGrid", "sns.ClusterGrid", "plotly.Figure",
    "plotly.FigureWidget", "plotly.Scatter", "bokeh.figure",
    "bokeh.ColumnDataSource", "altair.Chart", "folium.Map", "graphviz.Digraph",
    "pydot.Dot", "mpl.Axes3D",
];

const MACHINE_LEARNING: [&str; 20] = [
    "sk.GaussianMixture", "sk.KMeans", "sk.RandomForestClassifier",
    "sk.LogisticRegression", "sk.LinearRegression", "sk.SVC", "sk.PCA",
    "sk.StandardScaler", "sk.PowerTransformer", "sk.Pipeline",
    "sk.GridSearchCV", "sk.TfidfVectorizer", "sk.CountVectorizer",
    "xgb.Booster", "xgb.DMatrix", "lgb.LGBMClassifier", "cb.CatBoostClassifier",
    "sm.OLS", "sm.SARIMAX", "scipy.OptimizeResult",
];

const DEEP_LEARNING: [&str; 18] = [
    "torch.Tensor", "torch.nn.Module", "torch.optim.Adam", "torch.DataLoader",
    "torch.cuda.Stream", "tf.Tensor", "tf.Variable", "tf.keras.Model",
    "tf.data.Dataset", "keras.Sequential", "keras.History", "jax.Array",
    "flax.Module", "torch.nn.Linear", "torch.nn.Conv2d", "torchmetrics.Accuracy",
    "lightning.Trainer", "tf.GradientTape",
];

const NLP: [&str; 18] = [
    "nltk.Text", "nltk.FreqDist", "nltk.PorterStemmer", "nltk.WordNetLemmatizer",
    "nltk.Tree", "textblob.TextBlob", "textblob.Sentence", "spacy.Doc",
    "spacy.Token", "spacy.Language", "gensim.Word2Vec", "gensim.Doc2Vec",
    "gensim.LdaModel", "wordcloud.WordCloud", "re.Pattern", "re.Match",
    "sentencepiece.Processor", "tokenizers.Tokenizer",
];

const COMPUTER_VISION: [&str; 16] = [
    "cv2.Mat", "PIL.Image", "torchvision.ImageFolder", "torchvision.ResNet34",
    "photutils.ImageDepth", "photutils.DAOStarFinder", "skimage.ImageCollection",
    "imageio.Reader", "albumentations.Compose", "kornia.Tensor",
    "detectron2.Predictor", "mmcv.Config", "ultralytics.YOLO", "timm.Model",
    "torchvision.Compose", "openslide.Slide",
];

const DIST_COMPUTING: [&str; 18] = [
    "pyspark.sql.DataFrame", "pyspark.RDD", "pyspark.Broadcast",
    "pyspark.SparkContext", "ray.data.Dataset", "ray.ObjectRef", "ray.Actor",
    "ray.RemoteFunction", "dask.DataFrame", "dask.Bag", "dask.Delayed",
    "optuna.Study", "optuna.Trial", "mp.Pool", "mp.Queue", "concurrent.Future",
    "joblib.Parallel", "distributed.Client",
];

const DATA_PIPELINING: [&str; 18] = [
    "hf.Dataset", "hf.DatasetDict", "transformers.Pipeline",
    "transformers.BertTokenizer", "transformers.AutoModel",
    "transformers.TrainingArguments", "datasets.Features", "airflow.DAG",
    "luigi.Task", "prefect.Flow", "beam.Pipeline", "kedro.Pipeline", "dvc.Repo",
    "mlflow.Run", "wandb.Run", "ge.ExpectationSuite", "feast.FeatureStore",
    "hashlib.sha256",
];

impl Registry {
    /// Build the standard 146-class registry.
    pub fn standard() -> Self {
        let mut classes = Vec::with_capacity(146);
        let mut by_name = HashMap::with_capacity(146);
        let push = |names: &[&'static str], category: Category, classes: &mut Vec<ClassSpec>, by_name: &mut HashMap<&'static str, ClassId>| {
            for name in names {
                let id = ClassId(classes.len() as u16);
                let behavior = Behavior {
                    unserializable: UNSERIALIZABLE.contains(name),
                    deserialize_fails: DESERIALIZE_FAILS.contains(name),
                    silent_error: SILENT_ERROR.contains(name),
                    dynamic_identity: DYNAMIC_IDENTITY.contains(name),
                    off_process: OFF_PROCESS.contains(name),
                    default_payload: default_payload_for(category),
                };
                classes.push(ClassSpec {
                    id,
                    name,
                    category,
                    behavior,
                });
                by_name.insert(*name, id);
            }
        };
        push(&DATA_ANALYSIS, Category::DataAnalysis, &mut classes, &mut by_name);
        push(&DATA_VISUALIZATION, Category::DataVisualization, &mut classes, &mut by_name);
        push(&MACHINE_LEARNING, Category::MachineLearning, &mut classes, &mut by_name);
        push(&DEEP_LEARNING, Category::DeepLearning, &mut classes, &mut by_name);
        push(&NLP, Category::Nlp, &mut classes, &mut by_name);
        push(&COMPUTER_VISION, Category::ComputerVision, &mut classes, &mut by_name);
        push(&DIST_COMPUTING, Category::DistComputing, &mut classes, &mut by_name);
        push(&DATA_PIPELINING, Category::DataPipelining, &mut classes, &mut by_name);
        Registry { classes, by_name }
    }

    /// Look a class up by id.
    pub fn get(&self, id: ClassId) -> Option<&ClassSpec> {
        self.classes.get(id.0 as usize)
    }

    /// Look a class up by qualified name.
    pub fn by_name(&self, name: &str) -> Option<&ClassSpec> {
        self.by_name.get(name).and_then(|id| self.get(*id))
    }

    /// All classes, in id order.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the registry is empty (it never is for `standard()`).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Behaviour of a class id, defaulting to clean for unknown ids.
    pub fn behavior(&self, id: ClassId) -> Behavior {
        self.get(id).map(|c| c.behavior).unwrap_or_default()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

/// Typical in-memory footprint of a class instance per category: models and
/// tensors are heavy, handles and patterns are light.
fn default_payload_for(category: Category) -> usize {
    match category {
        Category::DataAnalysis => 64 * 1024,
        Category::DataVisualization => 32 * 1024,
        Category::MachineLearning => 128 * 1024,
        Category::DeepLearning => 256 * 1024,
        Category::Nlp => 24 * 1024,
        Category::ComputerVision => 96 * 1024,
        Category::DistComputing => 4 * 1024,
        Category::DataPipelining => 16 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_146_classes() {
        let r = Registry::standard();
        assert_eq!(r.len(), 146);
    }

    #[test]
    fn flag_counts_match_the_paper() {
        let r = Registry::standard();
        let count = |f: fn(&Behavior) -> bool| r.classes().iter().filter(|c| f(&c.behavior)).count();
        assert_eq!(count(|b| b.unserializable), 5);
        assert_eq!(count(|b| b.deserialize_fails), 2);
        assert_eq!(count(|b| b.silent_error), 5);
        // Table 4 / Fig 12: DumpSession fails on 7 classes.
        assert_eq!(count(|b| b.unserializable || b.deserialize_fails), 7);
        // Table 4 / Fig 12: CRIU fails on 6 classes.
        assert_eq!(count(|b| b.off_process), 6);
        // Table 5: 14 false positives, 12 pickle errors, 120 successes.
        assert_eq!(count(|b| b.dynamic_identity), 14);
        assert_eq!(count(|b| b.nondet_pickle()), 12);
        assert_eq!(count(|b| !b.volatile()), 120);
    }

    #[test]
    fn buckets_are_disjoint() {
        let r = Registry::standard();
        for c in r.classes() {
            let b = &c.behavior;
            assert!(
                !(b.dynamic_identity && b.nondet_pickle()),
                "{} is in two Table 5 buckets",
                c.name
            );
            assert!(
                !(b.off_process && b.volatile()),
                "{} is off-process but not cleanly detectable",
                c.name
            );
            assert!(
                !(b.unserializable && b.deserialize_fails),
                "{} has contradictory flags",
                c.name
            );
        }
    }

    #[test]
    fn every_category_is_populated() {
        let r = Registry::standard();
        for cat in Category::ALL {
            let n = r.classes().iter().filter(|c| c.category == cat).count();
            assert!(n >= 16, "{} has only {n} classes", cat.label());
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let r = Registry::standard();
        for c in r.classes() {
            let found = r.by_name(c.name).expect("name resolves");
            assert_eq!(found.id, c.id, "duplicate name {}", c.name);
        }
        assert!(r.by_name("nonexistent.Class").is_none());
    }

    #[test]
    fn table4_classes_have_the_right_flags() {
        let r = Registry::standard();
        assert!(r.by_name("pyspark.sql.DataFrame").expect("exists").behavior.off_process);
        assert!(r.by_name("ray.data.Dataset").expect("exists").behavior.off_process);
        assert!(r.by_name("tf.Tensor").expect("exists").behavior.off_process);
        assert!(r.by_name("torch.Tensor").expect("exists").behavior.off_process);
        assert!(r.by_name("pl.LazyFrame").expect("exists").behavior.unserializable);
        assert!(r.by_name("bokeh.figure").expect("exists").behavior.deserialize_fails);
    }
}
