//! Microbenchmarks of Kishu's core operations, including the ablations
//! DESIGN.md calls out: VarGraph hash fast-path vs full array values,
//! candidate pruning vs check-all, LCA/state-diff cost vs branch depth,
//! pickle throughput, and storage primitives.
//!
//! Runs under the in-tree `kishu_testkit::bench` harness (`harness =
//! false`): `cargo bench --bench core_ops [-- <filter>]`, or
//! `KISHU_BENCH_QUICK=1` for a smoke run.

use std::sync::Arc;

use kishu::delta::DeltaDetector;
use kishu::graph::{CheckpointGraph, StoredCoVar};
use kishu::vargraph::{VarGraph, VarGraphConfig};
use kishu::xxh64::xxh64;
use kishu_libsim::Registry;
use kishu_minipy::Interp;
use kishu_pickle::{dumps, loads, NoopReducer};
use kishu_storage::crc32::crc32;
use kishu_testkit::bench::{black_box, Bench};

fn prepared_interp(src: &str) -> Interp {
    let mut i = Interp::new();
    kishu_libsim::install(&mut i, Arc::new(Registry::standard()));
    let out = i.run_cell(src).expect("parses");
    assert!(out.error.is_none(), "{:?}", out.error);
    i
}

/// VarGraph construction cost vs component size, and the §6.2 hash-vs-full
/// array ablation.
fn bench_vargraph(b: &mut Bench) {
    b.group("vargraph_build", |g| {
        for n in [100usize, 10_000, 1_000_000] {
            let i = prepared_interp(&format!("arr = arange({n})\n"));
            let root = i.globals.peek("arr").expect("bound");
            for (label, hash) in [("hash", true), ("full", false)] {
                let config = VarGraphConfig {
                    registry: Arc::new(Registry::standard()),
                    hash_arrays: hash,
                    hash_primitive_lists: false,
                };
                let mut nonce = 0;
                g.bench(&format!("array_{label}/{n}"), || {
                    black_box(VarGraph::build(&i.heap, root, &config, &mut nonce))
                });
            }
        }
        // A fragmented string-list component (the Sklearn shape).
        let i = prepared_interp(
            "ls = []\nfor k in range(2000):\n    ls.append('tweet ' + str(k))\n",
        );
        let root = i.globals.peek("ls").expect("bound");
        let config = VarGraphConfig {
            registry: Arc::new(Registry::standard()),
            hash_arrays: true,
            hash_primitive_lists: false,
        };
        let mut nonce = 0;
        g.bench("string_list_2000", || {
            black_box(VarGraph::build(&i.heap, root, &config, &mut nonce))
        });
    });
}

/// Fig 17's mechanism in microcosm: per-cell delta detection with candidate
/// pruning vs check-all, against a growing bystander state.
fn bench_delta_detection(b: &mut Bench) {
    b.group("delta_detect", |g| {
        for bystanders in [10usize, 100] {
            let mut setup = String::new();
            for k in 0..bystanders {
                setup.push_str(&format!("big{k} = arange(2000)\n"));
            }
            setup.push_str("small = [1, 2, 3]\n");
            for (label, check_all) in [("kishu", false), ("check_all", true)] {
                let mut i = prepared_interp(&setup);
                let registry = Arc::new(Registry::standard());
                let mut det = DeltaDetector::new(registry, true, check_all);
                // Prime the caches. The benched mutation pokes in place
                // (no growth), so per-iteration cost stays stationary.
                let out = i.run_cell("small[0] = 0\n").expect("parses");
                det.on_cell(&i.heap, &i.globals, &out.access);
                g.bench(&format!("{label}/{bystanders}"), || {
                    let out = i.run_cell("small[0] = small[0] + 1\n").expect("parses");
                    black_box(det.on_cell(&i.heap, &i.globals, &out.access))
                });
            }
        }
    });
}

/// Fig 19's mechanism: LCA + state reconstruction cost vs chain depth.
fn bench_state_diff(b: &mut Bench) {
    b.group("state_diff", |g| {
        for depth in [100u32, 1000] {
            let mut graph = CheckpointGraph::new();
            let mut nodes = Vec::new();
            for i in 0..depth {
                let key: std::collections::BTreeSet<String> =
                    [format!("v{}", i % 40)].into_iter().collect();
                nodes.push(graph.commit(
                    format!("cell {i}"),
                    vec![StoredCoVar {
                        names: key,
                        blob: Some(i as u64),
                        bytes: 100,
                    }],
                    vec![],
                    vec![],
                ));
            }
            let head = *nodes.last().expect("nonempty");
            let target = nodes[nodes.len() / 2];
            g.bench(&format!("diff/{depth}"), || black_box(graph.diff(head, target)));
            g.bench(&format!("lca_walk/{depth}"), || {
                black_box(graph.lca(head, nodes[0]))
            });
            let idx = graph.lca_index();
            g.bench(&format!("lca_lifted/{depth}"), || {
                black_box(idx.lca(head, nodes[0]))
            });
        }
    });
}

/// Pickle throughput on a dataframe-shaped megabyte, dump and load.
fn bench_pickle(b: &mut Bench) {
    let i = prepared_interp("df = read_csv('bench', 16000, 8, 1)\n");
    let root = i.globals.peek("df").expect("bound");
    b.group("pickle", |g| {
        g.bench("dumps_1mb_frame", || {
            black_box(dumps(&i.heap, &[root], &NoopReducer).expect("dumps"))
        });
        let blob = dumps(&i.heap, &[root], &NoopReducer).expect("dumps");
        g.bench("loads_1mb_frame", || {
            let mut heap = kishu_kernel::Heap::new();
            black_box(loads(&mut heap, &blob, &NoopReducer).expect("loads"))
        });
    });
}

/// Extension ablations: primitive-list hashing (§7.6) and rule-based
/// read-only cell skipping (§6.2).
fn bench_extensions(b: &mut Bench) {
    b.group("extensions", |g| {
        // List hashing: VarGraph build over a 2000-string list.
        let i = prepared_interp(
            "ls = []\nfor k in range(2000):\n    ls.append('tweet ' + str(k))\n",
        );
        let root = i.globals.peek("ls").expect("bound");
        for (label, hash_lists) in [("list_nodes", false), ("list_digest", true)] {
            let mut config = VarGraphConfig::new(Arc::new(Registry::standard()));
            config.hash_primitive_lists = hash_lists;
            let mut nonce = 0;
            g.bench(&format!("vargraph_{label}_2000"), || {
                black_box(VarGraph::build(&i.heap, root, &config, &mut nonce))
            });
        }
        // Rule-based cells: tracking cost of a read-only inspection cell.
        use kishu::session::{KishuConfig, KishuSession};
        for (label, rules) in [("rules_off", false), ("rules_on", true)] {
            let config = KishuConfig {
                rule_based_cells: rules,
                auto_checkpoint: false,
                ..KishuConfig::default()
            };
            let mut s = KishuSession::in_memory(config);
            s.run_cell("big = []\nfor k in range(2000):\n    big.append('item ' + str(k))\n")
                .expect("runs");
            g.bench(&format!("print_cell_{label}"), || {
                black_box(s.run_cell("big[:10]\n").expect("runs").tracking_time)
            });
        }
    });
}

/// Hash and checksum primitives.
fn bench_hashes(b: &mut Bench) {
    let data = vec![0xA5u8; 1 << 20];
    b.group("hashes", |g| {
        g.bench("xxh64_1mb", || black_box(xxh64(&data, 0)));
        g.bench("crc32_1mb", || black_box(crc32(&data)));
    });
}

fn main() {
    let mut b = Bench::from_env("core_ops");
    bench_vargraph(&mut b);
    bench_delta_detection(&mut b);
    bench_state_diff(&mut b);
    bench_pickle(&mut b);
    bench_extensions(&mut b);
    bench_hashes(&mut b);
    b.finish();
}
