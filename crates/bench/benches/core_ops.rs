//! Microbenchmarks of Kishu's core operations, including the ablations
//! DESIGN.md calls out: VarGraph hash fast-path vs full array values,
//! candidate pruning vs check-all, LCA/state-diff cost vs branch depth,
//! pickle throughput, and storage primitives.

use std::hint::black_box;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kishu::delta::DeltaDetector;
use kishu::graph::{CheckpointGraph, StoredCoVar};
use kishu::vargraph::{VarGraph, VarGraphConfig};
use kishu::xxh64::xxh64;
use kishu_libsim::Registry;
use kishu_minipy::Interp;
use kishu_pickle::{dumps, loads, NoopReducer};
use kishu_storage::crc32::crc32;

fn prepared_interp(src: &str) -> Interp {
    let mut i = Interp::new();
    kishu_libsim::install(&mut i, Rc::new(Registry::standard()));
    let out = i.run_cell(src).expect("parses");
    assert!(out.error.is_none(), "{:?}", out.error);
    i
}

/// VarGraph construction cost vs component size, and the §6.2 hash-vs-full
/// array ablation.
fn bench_vargraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("vargraph_build");
    for n in [100usize, 10_000, 1_000_000] {
        let i = prepared_interp(&format!("arr = arange({n})\n"));
        let root = i.globals.peek("arr").expect("bound");
        for (label, hash) in [("hash", true), ("full", false)] {
            let config = VarGraphConfig {
                registry: Rc::new(Registry::standard()),
                hash_arrays: hash,
            hash_primitive_lists: false,
            };
            group.bench_with_input(
                BenchmarkId::new(format!("array_{label}"), n),
                &n,
                |b, _| {
                    let mut nonce = 0;
                    b.iter(|| black_box(VarGraph::build(&i.heap, root, &config, &mut nonce)));
                },
            );
        }
    }
    // A fragmented string-list component (the Sklearn shape).
    let i = prepared_interp(
        "ls = []\nfor k in range(2000):\n    ls.append('tweet ' + str(k))\n",
    );
    let root = i.globals.peek("ls").expect("bound");
    let config = VarGraphConfig {
        registry: Rc::new(Registry::standard()),
        hash_arrays: true,
            hash_primitive_lists: false,
    };
    group.bench_function("string_list_2000", |b| {
        let mut nonce = 0;
        b.iter(|| black_box(VarGraph::build(&i.heap, root, &config, &mut nonce)));
    });
    group.finish();
}

/// Fig 17's mechanism in microcosm: per-cell delta detection with candidate
/// pruning vs check-all, against a growing bystander state.
fn bench_delta_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_detect");
    for bystanders in [10usize, 100] {
        let mut setup = String::new();
        for k in 0..bystanders {
            setup.push_str(&format!("big{k} = arange(2000)\n"));
        }
        setup.push_str("small = [1, 2, 3]\n");
        for (label, check_all) in [("kishu", false), ("check_all", true)] {
            group.bench_with_input(
                BenchmarkId::new(label, bystanders),
                &bystanders,
                |b, _| {
                    let mut i = prepared_interp(&setup);
                    let registry = Rc::new(Registry::standard());
                    let mut det = DeltaDetector::new(registry, true, check_all);
                    // Prime the caches. The benched mutation pokes in place
                    // (no growth), so per-iteration cost stays stationary.
                    let out = i.run_cell("small[0] = 0\n").expect("parses");
                    det.on_cell(&i.heap, &i.globals, &out.access);
                    b.iter(|| {
                        let out = i.run_cell("small[0] = small[0] + 1\n").expect("parses");
                        black_box(det.on_cell(&i.heap, &i.globals, &out.access))
                    });
                },
            );
        }
    }
    group.finish();
}

/// Fig 19's mechanism: LCA + state reconstruction cost vs chain depth.
fn bench_state_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_diff");
    for depth in [100u32, 1000] {
        let mut g = CheckpointGraph::new();
        let mut nodes = Vec::new();
        for i in 0..depth {
            let key: std::collections::BTreeSet<String> =
                [format!("v{}", i % 40)].into_iter().collect();
            nodes.push(g.commit(
                format!("cell {i}"),
                vec![StoredCoVar {
                    names: key,
                    blob: Some(i as u64),
                    bytes: 100,
                }],
                vec![],
                vec![],
            ));
        }
        let head = *nodes.last().expect("nonempty");
        let target = nodes[nodes.len() / 2];
        group.bench_with_input(BenchmarkId::new("diff", depth), &depth, |b, _| {
            b.iter(|| black_box(g.diff(head, target)));
        });
        group.bench_with_input(BenchmarkId::new("lca_walk", depth), &depth, |b, _| {
            b.iter(|| black_box(g.lca(head, nodes[0])));
        });
        let idx = g.lca_index();
        group.bench_with_input(BenchmarkId::new("lca_lifted", depth), &depth, |b, _| {
            b.iter(|| black_box(idx.lca(head, nodes[0])));
        });
    }
    group.finish();
}

/// Pickle throughput on a dataframe-shaped megabyte, dump and load.
fn bench_pickle(c: &mut Criterion) {
    let i = prepared_interp("df = read_csv('bench', 16000, 8, 1)\n");
    let root = i.globals.peek("df").expect("bound");
    let mut group = c.benchmark_group("pickle");
    group.bench_function("dumps_1mb_frame", |b| {
        b.iter(|| black_box(dumps(&i.heap, &[root], &NoopReducer).expect("dumps")))
    });
    let blob = dumps(&i.heap, &[root], &NoopReducer).expect("dumps");
    group.bench_function("loads_1mb_frame", |b| {
        b.iter(|| {
            let mut heap = kishu_kernel::Heap::new();
            black_box(loads(&mut heap, &blob, &NoopReducer).expect("loads"))
        })
    });
    group.finish();
}

/// Extension ablations: primitive-list hashing (§7.6) and rule-based
/// read-only cell skipping (§6.2).
fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    // List hashing: VarGraph build over a 2000-string list.
    let i = prepared_interp("ls = []\nfor k in range(2000):\n    ls.append('tweet ' + str(k))\n");
    let root = i.globals.peek("ls").expect("bound");
    for (label, hash_lists) in [("list_nodes", false), ("list_digest", true)] {
        let mut config = VarGraphConfig::new(Rc::new(Registry::standard()));
        config.hash_primitive_lists = hash_lists;
        group.bench_function(format!("vargraph_{label}_2000"), |b| {
            let mut nonce = 0;
            b.iter(|| black_box(VarGraph::build(&i.heap, root, &config, &mut nonce)));
        });
    }
    // Rule-based cells: tracking cost of a read-only inspection cell.
    use kishu::session::{KishuConfig, KishuSession};
    for (label, rules) in [("rules_off", false), ("rules_on", true)] {
        group.bench_function(format!("print_cell_{label}"), |b| {
            let config = KishuConfig {
                rule_based_cells: rules,
                auto_checkpoint: false,
                ..KishuConfig::default()
            };
            let mut s = KishuSession::in_memory(config);
            s.run_cell("big = []\nfor k in range(2000):\n    big.append('item ' + str(k))\n")
                .expect("runs");
            b.iter(|| black_box(s.run_cell("big[:10]\n").expect("runs").tracking_time));
        });
    }
    group.finish();
}

/// Hash and checksum primitives.
fn bench_hashes(c: &mut Criterion) {
    let data = vec![0xA5u8; 1 << 20];
    let mut group = c.benchmark_group("hashes");
    group.bench_function("xxh64_1mb", |b| b.iter(|| black_box(xxh64(&data, 0))));
    group.bench_function("crc32_1mb", |b| b.iter(|| black_box(crc32(&data))));
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vargraph, bench_delta_detection, bench_state_diff, bench_pickle, bench_extensions, bench_hashes
);
criterion_main!(benches);
