//! End-to-end time-travel benchmarks: the per-figure operations measured
//! under the in-tree timing harness (the `repro` binary regenerates the
//! full tables; these pin the core latencies).
//!
//! * `fig13_checkpoint_cell/*` — one incremental cell checkpoint per
//!   method on a realistic mid-notebook state.
//! * `fig15_undo/*` — undoing one cell per method.
//! * `fig18_covar_share/*` — Kishu's checkpoint cost at 10% vs 100% of the
//!   state in one co-variable.
//!
//! Runs with `cargo bench --bench time_travel [-- <filter>]`, or
//! `KISHU_BENCH_QUICK=1` for a smoke run.

use kishu_bench::methods::{Driver, MethodKind};
use kishu_testkit::bench::{black_box, Bench};
use kishu_workloads::sweeps::shared_ref_workload;
use kishu_workloads::{cell, Cell};

fn setup_cells() -> Vec<Cell> {
    vec![
        cell("df = read_csv('bench', 20000, 6, 1)\n"),
        cell("model = lib_obj('sk.KMeans', 65536, 2)\nmodel.fit(1)\n"),
        cell("small = [1, 2, 3]\n"),
    ]
}

/// Per-method cost of checkpointing one small-delta cell on a meaningful
/// state (the Fig 13/14 inner loop).
fn bench_checkpoint_cell(b: &mut Bench) {
    b.group("fig13_checkpoint_cell", |g| {
        for kind in [
            MethodKind::Kishu,
            MethodKind::DumpSession,
            MethodKind::CriuIncremental,
        ] {
            g.bench_batched(
                kind.label(),
                || {
                    let mut d = Driver::new(kind);
                    for cl in setup_cells() {
                        d.run_cell(&cl);
                    }
                    d
                },
                |mut d| black_box(d.run_cell(&cell("small.append(9)\n"))),
            );
        }
    });
}

/// Per-method cost of undoing one cell (the Fig 15 inner loop).
fn bench_undo(b: &mut Bench) {
    b.group("fig15_undo", |g| {
        for kind in [
            MethodKind::Kishu,
            MethodKind::DumpSession,
            MethodKind::CriuIncremental,
            MethodKind::ElasticNotebook,
        ] {
            g.bench_batched(
                kind.label(),
                || {
                    let mut d = Driver::new(kind);
                    for cl in setup_cells() {
                        d.run_cell(&cl);
                    }
                    d.run_cell(&cell("small.append(9)\n"));
                    d
                },
                |mut d| black_box(d.restore_to(2).expect("restores")),
            );
        }
    });
}

/// Kishu's checkpoint cost at the two ends of the Fig 18 sweep.
fn bench_covar_share(b: &mut Bench) {
    b.group("fig18_covar_share", |g| {
        for in_list in [1usize, 10] {
            let (setup, modify) = shared_ref_workload(50_000, 10, in_list);
            g.bench_batched(
                &format!("kishu_modify_ckpt/{}pct", in_list * 10),
                || {
                    let mut d = Driver::new(MethodKind::Kishu);
                    for cl in &setup {
                        d.run_cell(cl);
                    }
                    d
                },
                |mut d| black_box(d.run_cell(&modify)),
            );
        }
    });
}

fn main() {
    let mut b = Bench::from_env("time_travel");
    bench_checkpoint_cell(&mut b);
    bench_undo(&mut b);
    bench_covar_share(&mut b);
    b.finish();
}
