//! End-to-end time-travel benchmarks: the per-figure operations measured
//! under Criterion (the `repro` binary regenerates the full tables; these
//! pin the core latencies with statistical rigor).
//!
//! * `fig13_checkpoint_cell/*` — one incremental cell checkpoint per
//!   method on a realistic mid-notebook state.
//! * `fig15_undo/*` — undoing one cell per method.
//! * `fig18_covar_share/*` — Kishu's checkpoint cost at 10% vs 100% of the
//!   state in one co-variable.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use kishu_bench::methods::{Driver, MethodKind};
use kishu_workloads::sweeps::shared_ref_workload;
use kishu_workloads::{cell, Cell};

fn setup_cells() -> Vec<Cell> {
    vec![
        cell("df = read_csv('bench', 20000, 6, 1)\n"),
        cell("model = lib_obj('sk.KMeans', 65536, 2)\nmodel.fit(1)\n"),
        cell("small = [1, 2, 3]\n"),
    ]
}

/// Per-method cost of checkpointing one small-delta cell on a meaningful
/// state (the Fig 13/14 inner loop).
fn bench_checkpoint_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_checkpoint_cell");
    group.sample_size(10);
    for kind in [
        MethodKind::Kishu,
        MethodKind::DumpSession,
        MethodKind::CriuIncremental,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter_batched(
                || {
                    let mut d = Driver::new(kind);
                    for cl in setup_cells() {
                        d.run_cell(&cl);
                    }
                    d
                },
                |mut d| black_box(d.run_cell(&cell("small.append(9)\n"))),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

/// Per-method cost of undoing one cell (the Fig 15 inner loop).
fn bench_undo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_undo");
    group.sample_size(10);
    for kind in [
        MethodKind::Kishu,
        MethodKind::DumpSession,
        MethodKind::CriuIncremental,
        MethodKind::ElasticNotebook,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter_batched(
                || {
                    let mut d = Driver::new(kind);
                    for cl in setup_cells() {
                        d.run_cell(&cl);
                    }
                    d.run_cell(&cell("small.append(9)\n"));
                    d
                },
                |mut d| black_box(d.restore_to(2).expect("restores")),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

/// Kishu's checkpoint cost at the two ends of the Fig 18 sweep.
fn bench_covar_share(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_covar_share");
    group.sample_size(10);
    for in_list in [1usize, 10] {
        group.bench_with_input(
            BenchmarkId::new("kishu_modify_ckpt", format!("{}pct", in_list * 10)),
            &in_list,
            |b, &in_list| {
                let (setup, modify) = shared_ref_workload(50_000, 10, in_list);
                b.iter_batched(
                    || {
                        let mut d = Driver::new(MethodKind::Kishu);
                        for cl in &setup {
                            d.run_cell(cl);
                        }
                        d
                    },
                    |mut d| black_box(d.run_cell(&modify)),
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint_cell, bench_undo, bench_covar_share);
criterion_main!(benches);
