//! Uniform driver over every time-travel method, so experiments run each
//! mechanism through the same loop: execute cell → checkpoint → (later)
//! restore to a version.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kishu::session::{KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_baselines::criu::{CriuFull, CriuIncremental};
use kishu_baselines::det_replay::DetReplay;
use kishu_baselines::dump_session::DumpSession;
use kishu_baselines::elastic::ElasticNotebook;
use kishu_baselines::MethodError;
use kishu_libsim::Registry;
use kishu_minipy::Interp;
use kishu_storage::MemoryStore;
use kishu_workloads::Cell;

/// The evaluated methods, in the paper's plotting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Kishu (ours).
    Kishu,
    /// Kishu with deterministic-cell replay.
    KishuDetReplay,
    /// Full OS-level snapshots.
    CriuFull,
    /// Dirty-page OS-level snapshots.
    CriuIncremental,
    /// Whole-state pickling.
    DumpSession,
    /// Profiled store-vs-recompute replication.
    ElasticNotebook,
}

impl MethodKind {
    /// All methods, plotting order.
    pub const ALL: [MethodKind; 6] = [
        MethodKind::Kishu,
        MethodKind::KishuDetReplay,
        MethodKind::CriuFull,
        MethodKind::CriuIncremental,
        MethodKind::DumpSession,
        MethodKind::ElasticNotebook,
    ];

    /// Display label as in the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Kishu => "Kishu",
            MethodKind::KishuDetReplay => "Kishu+Det-replay",
            MethodKind::CriuFull => "CRIU",
            MethodKind::CriuIncremental => "CRIU-Incremental",
            MethodKind::DumpSession => "DumpSession",
            MethodKind::ElasticNotebook => "ElasticNotebook",
        }
    }
}

/// Per-cell cost of one method.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellCost {
    /// Cell execution time (method-independent work).
    pub cell_time: Duration,
    /// Checkpoint (serialize + write + bookkeeping) time.
    pub ckpt_time: Duration,
    /// Checkpoint bytes written.
    pub ckpt_bytes: u64,
}

/// Cost of one restore.
#[derive(Debug, Clone, Copy, Default)]
pub struct RestoreCost {
    /// Wall time end to end.
    pub time: Duration,
    /// Bytes read.
    pub bytes_read: u64,
}

/// A method driving its own kernel through a notebook.
pub struct Driver {
    kind: MethodKind,
    inner: Inner,
    /// First checkpoint failure, if any (the method keeps executing cells
    /// but stops checkpointing — the Fig 12/13 FAIL marker).
    pub failed: Option<String>,
    versions: usize,
}

enum Inner {
    Kishu {
        session: KishuSession,
        nodes: Vec<NodeId>,
    },
    DetReplay {
        session: DetReplay,
        nodes: Vec<NodeId>,
    },
    External {
        interp: Interp,
        mech: Mech,
    },
}

enum Mech {
    CriuFull(CriuFull),
    CriuInc(CriuIncremental),
    Dump(DumpSession),
    Elastic(ElasticNotebook),
}

impl Driver {
    /// Fresh kernel + method, checkpointing into an in-memory store.
    pub fn new(kind: MethodKind) -> Self {
        let registry = Arc::new(Registry::standard());
        let inner = match kind {
            MethodKind::Kishu => Inner::Kishu {
                session: KishuSession::in_memory(KishuConfig::default()),
                nodes: Vec::new(),
            },
            MethodKind::KishuDetReplay => Inner::DetReplay {
                session: DetReplay::in_memory(KishuConfig::default()),
                nodes: Vec::new(),
            },
            other => {
                let mut interp = Interp::new();
                kishu_libsim::install(&mut interp, registry.clone());
                let store = Box::new(MemoryStore::new());
                let mech = match other {
                    MethodKind::CriuFull => Mech::CriuFull(CriuFull::new(store, registry)),
                    MethodKind::CriuIncremental => {
                        Mech::CriuInc(CriuIncremental::new(store, registry))
                    }
                    MethodKind::DumpSession => Mech::Dump(DumpSession::new(store, registry)),
                    MethodKind::ElasticNotebook => {
                        Mech::Elastic(ElasticNotebook::new(store, registry))
                    }
                    _ => unreachable!("handled above"),
                };
                Inner::External { interp, mech }
            }
        };
        Driver {
            kind,
            inner,
            failed: None,
            versions: 0,
        }
    }

    /// Which method this drives.
    pub fn kind(&self) -> MethodKind {
        self.kind
    }

    /// Number of checkpoints successfully taken.
    pub fn versions(&self) -> usize {
        self.versions
    }

    /// Execute one cell and checkpoint after it. Checkpoint failures mark
    /// the driver failed but do not stop cell execution.
    pub fn run_cell(&mut self, cell: &Cell) -> CellCost {
        match &mut self.inner {
            Inner::Kishu { session, nodes } => {
                let report = session.run_cell(&cell.src).expect("workload cells parse");
                assert!(
                    report.outcome.error.is_none(),
                    "workload cell raised: {:?}",
                    report.outcome.error
                );
                nodes.push(report.node.expect("auto-checkpoint committed"));
                self.versions += 1;
                CellCost {
                    cell_time: report.outcome.wall_time,
                    ckpt_time: report.checkpoint_time + report.tracking_time,
                    ckpt_bytes: report.checkpoint_bytes,
                }
            }
            Inner::DetReplay { session, nodes } => {
                let report = session
                    .run_cell(&cell.src, cell.deterministic)
                    .expect("workload cells parse");
                assert!(report.outcome.error.is_none());
                nodes.push(report.node.expect("auto-checkpoint committed"));
                self.versions += 1;
                CellCost {
                    cell_time: report.outcome.wall_time,
                    ckpt_time: report.checkpoint_time + report.tracking_time,
                    ckpt_bytes: report.checkpoint_bytes,
                }
            }
            Inner::External { interp, mech } => {
                let outcome = interp.run_cell(&cell.src).expect("workload cells parse");
                assert!(outcome.error.is_none(), "{:?}", outcome.error);
                let mut cost = CellCost {
                    cell_time: outcome.wall_time,
                    ..CellCost::default()
                };
                if self.failed.is_none() {
                    let result = match mech {
                        Mech::CriuFull(m) => m.checkpoint(interp),
                        Mech::CriuInc(m) => m.checkpoint(interp),
                        Mech::Dump(m) => m.checkpoint(interp),
                        Mech::Elastic(m) => {
                            m.checkpoint(interp, &cell.src, outcome.wall_time, &outcome.access)
                        }
                    };
                    match result {
                        Ok(stats) => {
                            cost.ckpt_time = stats.time;
                            cost.ckpt_bytes = stats.bytes;
                            self.versions += 1;
                        }
                        Err(e) => {
                            self.failed = Some(e.to_string());
                        }
                    }
                }
                cost
            }
        }
    }

    /// Restore the state as of checkpoint `version` (0-based cell index).
    pub fn restore_to(&mut self, version: usize) -> Result<RestoreCost, MethodError> {
        if self.failed.is_some() {
            return Err(MethodError::Io(format!(
                "method failed earlier: {}",
                self.failed.clone().expect("just checked")
            )));
        }
        match &mut self.inner {
            Inner::Kishu { session, nodes } => {
                let node = *nodes
                    .get(version)
                    .ok_or(MethodError::UnknownVersion(version))?;
                let start = Instant::now();
                let report = session
                    .checkout(node)
                    .map_err(|e| MethodError::Io(e.to_string()))?;
                Ok(RestoreCost {
                    time: start.elapsed(),
                    bytes_read: report.bytes_loaded,
                })
            }
            Inner::DetReplay { session, nodes } => {
                let node = *nodes
                    .get(version)
                    .ok_or(MethodError::UnknownVersion(version))?;
                let start = Instant::now();
                let report = session
                    .checkout(node)
                    .map_err(|e| MethodError::Io(e.to_string()))?;
                Ok(RestoreCost {
                    time: start.elapsed(),
                    bytes_read: report.bytes_loaded,
                })
            }
            Inner::External { interp, mech } => {
                let (fresh, stats) = match mech {
                    Mech::CriuFull(m) => m.restore(version)?,
                    Mech::CriuInc(m) => m.restore(version)?,
                    Mech::Dump(m) => m.restore(version)?,
                    Mech::Elastic(m) => m.restore(version)?,
                };
                *interp = fresh;
                Ok(RestoreCost {
                    time: stats.time,
                    bytes_read: stats.bytes_read,
                })
            }
        }
    }

    /// Evaluate an expression in the live kernel (correctness probes).
    pub fn probe(&mut self, expr: &str) -> Option<String> {
        let interp = match &mut self.inner {
            Inner::Kishu { session, .. } => &mut session.interp,
            Inner::DetReplay { session, .. } => &mut session.session().interp,
            Inner::External { interp, .. } => interp,
        };
        let out = interp.run_cell(&format!("{expr}\n")).ok()?;
        if out.error.is_some() {
            return None;
        }
        out.value_repr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_workloads::cell;

    #[test]
    fn every_driver_runs_and_restores_a_simple_notebook() {
        let cells = vec![
            cell("x = [1, 2, 3]\n"),
            cell("y = sum(x)\n"),
            cell("x.append(4)\n"),
        ];
        for kind in MethodKind::ALL {
            let mut d = Driver::new(kind);
            for c in &cells {
                d.run_cell(c);
            }
            assert!(d.failed.is_none(), "{}: {:?}", kind.label(), d.failed);
            assert_eq!(d.versions(), 3);
            assert_eq!(d.probe("len(x)").as_deref(), Some("4"), "{}", kind.label());
            d.restore_to(1).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert_eq!(d.probe("len(x)").as_deref(), Some("3"), "{}", kind.label());
            assert_eq!(d.probe("y").as_deref(), Some("6"), "{}", kind.label());
        }
    }

    #[test]
    fn criu_drivers_fail_on_off_process_state() {
        let cells = [cell("t = lib_obj('torch.Tensor', 256, 1)\n")];
        for kind in [MethodKind::CriuFull, MethodKind::CriuIncremental] {
            let mut d = Driver::new(kind);
            d.run_cell(&cells[0]);
            assert!(d.failed.is_some(), "{} should fail", kind.label());
            assert!(d.restore_to(0).is_err());
        }
        // Kishu and DumpSession sail through.
        for kind in [MethodKind::Kishu, MethodKind::DumpSession] {
            let mut d = Driver::new(kind);
            d.run_cell(&cells[0]);
            assert!(d.failed.is_none(), "{}", kind.label());
        }
    }

    #[test]
    fn dump_session_fails_on_unserializable_state() {
        let mut d = Driver::new(MethodKind::DumpSession);
        d.run_cell(&cell("g = make_generator()\n"));
        assert!(d.failed.is_some());
        // Kishu tolerates it (fallback recomputation).
        let mut d = Driver::new(MethodKind::Kishu);
        d.run_cell(&cell("g = make_generator()\n"));
        assert!(d.failed.is_none());
    }
}
