//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all [--scale S] [--json FILE]
//! repro table2|fig2|fig4|fig12|table5|fig13|fig14|fig15|fig16|table6|fig17|table7|table8|fig18|fig19|faults
//! ```

use std::io::Write as _;

use kishu_bench::experiments::{checkout, checkpoint, robustness, sweeps, tracking, workload_tables};
use kishu_bench::report::Table;
use kishu_testkit::json::Json;

struct Args {
    targets: Vec<String>,
    scale: f64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut targets = Vec::new();
    let mut scale = 0.3;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--json" => {
                json = Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--help" | "-h" => {
                println!("usage: repro [all|table2|fig2|fig4|fig12|table4|table5|fig13|fig14|fig15|fig16|table6|fig17|table7|table8|fig18|fig19|faults]... [--scale S] [--json FILE]");
                std::process::exit(0);
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Args { targets, scale, json }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let everything = args.targets.iter().any(|t| t == "all");
    let want = |name: &str| everything || args.targets.iter().any(|t| t == name);
    let mut tables: Vec<Table> = Vec::new();
    let scale = args.scale;

    let run = |name: &str, f: &mut dyn FnMut() -> Table, tables: &mut Vec<Table>| {
        if want(name) {
            eprintln!("[repro] running {name} (scale {scale}) ...");
            let start = std::time::Instant::now();
            let t = f();
            eprintln!("[repro] {name} done in {:.1}s", start.elapsed().as_secs_f64());
            println!("{}", t.render());
            tables.push(t);
        }
    };

    run("table2", &mut || workload_tables::table2(scale), &mut tables);
    run("fig2", &mut || workload_tables::fig2(scale), &mut tables);
    run("table7", &mut || workload_tables::table7(scale), &mut tables);
    run("table8", &mut || workload_tables::table8(scale), &mut tables);
    run("fig4", &mut || sweeps::fig4((2000.0 * scale) as usize + 100), &mut tables);
    run("fig12", &mut robustness::fig12, &mut tables);
    run("table4", &mut robustness::table4, &mut tables);
    run("table5", &mut robustness::table5, &mut tables);
    run("faults", &mut || robustness::faults(scale), &mut tables);
    if want("fig13") || want("fig14") {
        eprintln!("[repro] running fig13+fig14 (scale {scale}) ...");
        let start = std::time::Instant::now();
        let grid = checkpoint::run_all(scale);
        eprintln!("[repro] fig13+fig14 done in {:.1}s", start.elapsed().as_secs_f64());
        for t in [checkpoint::fig13(&grid), checkpoint::fig14(&grid)] {
            println!("{}", t.render());
            tables.push(t);
        }
    }
    run("fig15", &mut || checkout::fig15(scale), &mut tables);
    run("fig16", &mut || checkout::fig16(scale), &mut tables);
    run("table6", &mut || tracking::table6(scale), &mut tables);
    run("fig17", &mut || tracking::fig17(scale), &mut tables);
    run(
        "fig18",
        &mut || sweeps::fig18((120_000.0 * scale) as usize + 1_000),
        &mut tables,
    );
    run("fig19", &mut || sweeps::fig19(1000, (scale * 0.5).min(0.2)), &mut tables);

    if tables.is_empty() {
        die("no experiment matched; see --help");
    }
    if let Some(path) = args.json {
        let json = Json::Array(tables.iter().map(Table::to_json).collect()).pretty();
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
        f.write_all(json.as_bytes())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("[repro] wrote {path}");
    }
}
