//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all [--scale S] [--json FILE]
//! repro table2|fig2|fig4|fig12|table5|fig13|fig14|fig15|fig16|table6|fig17|table7|table8|fig18|fig19|faults|pipeline|restore|multi|chunks
//! repro bench [--scale S] [--out FILE]        # bench-gate metrics JSON
//! repro bench-compare BASELINE PR [--tolerance T]
//! repro trace [--scale S] [--out FILE]        # Chrome-trace export of the pipelines
//! repro trace-validate FILE                   # CI smoke: parse + expected spans
//! ```
//!
//! Every experiment honors `KISHU_TRACE=path`: when set, the process-global
//! trace records spans across the session/pipeline/storage stack and a
//! Perfetto-loadable Chrome trace is written to `path` on exit.
//!
//! Outputs land under `target/` by default (`target/repro_output.txt`,
//! `target/repro_results.json`, `target/BENCH_pr.json`) so a repro run
//! never litters the source tree; `--json` / `--out` override the paths.

use std::io::Write as _;

use kishu_bench::experiments::{
    checkout, checkpoint, chunks, multi, pipeline, restore, robustness, sweeps, tracking,
    workload_tables,
};
use kishu_bench::report::Table;
use kishu_testkit::json::Json;

struct Args {
    targets: Vec<String>,
    scale: f64,
    scale_set: bool,
    json: Option<String>,
    out: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut targets = Vec::new();
    let mut scale = 0.3;
    let mut scale_set = false;
    let mut json = None;
    let mut out = None;
    let mut tolerance = 0.25;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
                scale_set = true;
            }
            "--json" => {
                json = Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a number"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [all|table2|fig2|fig4|fig12|table4|table5|fig13|fig14|fig15|fig16|table6|fig17|table7|table8|fig18|fig19|faults|pipeline|restore|multi|chunks]... [--scale S] [--json FILE]\n\
                            repro bench [--scale S] [--out FILE]\n\
                            repro bench-compare BASELINE PR [--tolerance T]\n\
                            repro trace [--scale S] [--out FILE]\n\
                            repro trace-validate FILE\n\
                     KISHU_TRACE=path exports a Chrome trace from any of the above"
                );
                std::process::exit(0);
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Args { targets, scale, scale_set, json, out, tolerance }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Write `content` to `path`, creating parent directories.
fn write_file(path: &str, content: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", parent.display())));
        }
    }
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
    f.write_all(content.as_bytes())
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}

/// Export the process-global trace to the `KISHU_TRACE` path. No-op unless
/// the environment enabled tracing — which is the behavior-freedom
/// invariant: with `KISHU_TRACE` unset, nothing here runs and no session
/// recorded a span.
fn export_global_trace() {
    let trace = kishu_trace::global();
    if !trace.is_enabled() {
        return;
    }
    let Some(path) = kishu_trace::global_path() else { return };
    write_file(&path, &(trace.chrome_json().dump() + "\n"));
    eprintln!(
        "[repro] wrote {path} ({} spans) — load it at ui.perfetto.dev",
        trace.spans().len()
    );
}

/// `repro trace`: run the representative write+read pipeline workloads with
/// tracing force-enabled and export a Perfetto-loadable Chrome trace plus a
/// human-readable summary.
fn run_trace(args: &Args) -> ! {
    let trace = kishu_trace::force_global_enabled();
    let scale = if args.scale_set { args.scale } else { 0.1 };
    eprintln!("[repro] trace (scale {scale}) ...");
    let p = pipeline::run(scale, 4, true);
    let r = restore::run(scale, 4, restore::CACHE_BYTES);
    eprintln!(
        "[repro] traced ckpt {:.2}ms (serialize {:.2}ms, write {:.2}ms); \
         cold restore {:.2}ms (fetch {:.2}ms, verify {:.2}ms, apply {:.2}ms)",
        p.ckpt_wall.as_secs_f64() * 1e3,
        p.serialize_ns as f64 / 1e6,
        p.write_ns as f64 / 1e6,
        r.cold_wall.as_secs_f64() * 1e3,
        r.cold_fetch_ns as f64 / 1e6,
        r.cold_verify_ns as f64 / 1e6,
        r.cold_apply_ns as f64 / 1e6,
    );
    println!("{}", trace.text_summary());
    let path = args
        .out
        .clone()
        .or_else(kishu_trace::global_path)
        .unwrap_or_else(|| "target/trace.json".to_string());
    write_file(&path, &(trace.chrome_json().dump() + "\n"));
    eprintln!(
        "[repro] wrote {path} ({} spans) — load it at ui.perfetto.dev",
        trace.spans().len()
    );
    std::process::exit(0);
}

/// Span names any pipeline-exercising trace export must contain — the
/// write path's classify → serialize/seal → write nest and the read path's
/// fetch → verify/decode → apply nest, plus the storage and pickle leaves.
const EXPECTED_TRACE_SPANS: &[&str] = &[
    "cell.exec",
    "ckpt",
    "ckpt.classify",
    "ckpt.serialize",
    "ckpt.seal",
    "ckpt.write",
    "store.put",
    "pickle.dumps",
    "checkout",
    "checkout.fetch",
    "store.get",
    "checkout.verify",
    "checkout.decode",
    "checkout.apply",
    "pickle.loads",
];

/// `repro trace-validate FILE`: parse a Chrome-trace export and check the
/// pipeline's expected span names are present (the CI trace smoke stage).
fn run_trace_validate(args: &Args) -> ! {
    let [_, path] = &args.targets[..] else {
        die("trace-validate needs exactly one path");
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let json = Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let Some(Json::Array(events)) = json.get("traceEvents") else {
        die(&format!("{path}: no traceEvents array"));
    };
    let names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter_map(|e| match e.get("name") {
            Some(Json::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let missing: Vec<&&str> = EXPECTED_TRACE_SPANS
        .iter()
        .filter(|n| !names.contains(**n))
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "trace-validate: {path} is missing expected spans {missing:?} \
             ({} events, saw {names:?})",
            events.len()
        );
        std::process::exit(1);
    }
    println!(
        "trace-validate: OK ({} events, {} distinct span names)",
        events.len(),
        names.len()
    );
    std::process::exit(0);
}

/// `repro bench`: emit the CI gate's metrics JSON. `KISHU_BENCH_QUICK=1`
/// shrinks the scale for the smoke stage unless `--scale` is explicit.
fn run_bench(args: &Args) -> ! {
    let quick = std::env::var("KISHU_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let scale = if args.scale_set {
        args.scale
    } else if quick {
        0.1
    } else {
        args.scale
    };
    eprintln!("[repro] bench (scale {scale}{}) ...", if quick { ", quick" } else { "" });
    let start = std::time::Instant::now();
    let json = pipeline::bench_json(scale);
    eprintln!("[repro] bench done in {:.1}s", start.elapsed().as_secs_f64());
    let path = args.out.clone().unwrap_or_else(|| "target/BENCH_pr.json".to_string());
    write_file(&path, &(json.pretty() + "\n"));
    eprintln!("[repro] wrote {path}");
    export_global_trace();
    std::process::exit(0);
}

/// `repro bench-compare BASELINE PR`: fail (exit 1) on any metric more than
/// `--tolerance` slower than baseline.
fn run_bench_compare(args: &Args) -> ! {
    let [_, baseline_path, pr_path] = &args.targets[..] else {
        die("bench-compare needs exactly two paths: BASELINE PR");
    };
    let load = |p: &str| -> Json {
        let text = std::fs::read_to_string(p)
            .unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")));
        Json::parse(&text).unwrap_or_else(|e| die(&format!("{p}: {e}")))
    };
    let baseline = load(baseline_path);
    let pr = load(pr_path);
    match pipeline::compare(&baseline, &pr, args.tolerance) {
        Ok(lines) => {
            for l in lines {
                println!("bench-gate: {l}");
            }
            println!("bench-gate: OK (tolerance {:.0}%)", args.tolerance * 100.0);
            std::process::exit(0);
        }
        Err(lines) => {
            for l in lines {
                println!("bench-gate: {l}");
            }
            eprintln!("bench-gate: FAILED");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.targets.iter().any(|t| t == "bench") {
        run_bench(&args);
    }
    if args.targets.first().is_some_and(|t| t == "bench-compare") {
        run_bench_compare(&args);
    }
    if args.targets.first().is_some_and(|t| t == "trace") {
        run_trace(&args);
    }
    if args.targets.first().is_some_and(|t| t == "trace-validate") {
        run_trace_validate(&args);
    }
    let everything = args.targets.iter().any(|t| t == "all");
    let want = |name: &str| everything || args.targets.iter().any(|t| t == name);
    let mut tables: Vec<Table> = Vec::new();
    let scale = args.scale;

    let run = |name: &str, f: &mut dyn FnMut() -> Table, tables: &mut Vec<Table>| {
        if want(name) {
            eprintln!("[repro] running {name} (scale {scale}) ...");
            let start = std::time::Instant::now();
            let t = f();
            eprintln!("[repro] {name} done in {:.1}s", start.elapsed().as_secs_f64());
            println!("{}", t.render());
            tables.push(t);
        }
    };

    run("table2", &mut || workload_tables::table2(scale), &mut tables);
    run("fig2", &mut || workload_tables::fig2(scale), &mut tables);
    run("table7", &mut || workload_tables::table7(scale), &mut tables);
    run("table8", &mut || workload_tables::table8(scale), &mut tables);
    run("fig4", &mut || sweeps::fig4((2000.0 * scale) as usize + 100), &mut tables);
    run("fig12", &mut robustness::fig12, &mut tables);
    run("table4", &mut robustness::table4, &mut tables);
    run("table5", &mut robustness::table5, &mut tables);
    // The write-pipeline table rides along with table5 (both are the
    // "robustness + checkpoint mechanics" artifact group) and also answers
    // to its own target name.
    if want("table5") || want("pipeline") {
        eprintln!("[repro] running pipeline (scale {scale}) ...");
        let start = std::time::Instant::now();
        let t = pipeline::table(scale);
        eprintln!("[repro] pipeline done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", t.render());
        tables.push(t);
    }
    // The read-side sweep rides along with the same artifact group.
    if want("table5") || want("restore") {
        eprintln!("[repro] running restore (scale {scale}) ...");
        let start = std::time::Instant::now();
        let t = restore::table(scale);
        eprintln!("[repro] restore done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", t.render());
        tables.push(t);
    }
    run("faults", &mut || robustness::faults(scale), &mut tables);
    run("multi", &mut || multi::table(scale), &mut tables);
    // The storage-engine-v2 sweep also writes its machine-readable ratios
    // (dedup, compression, v1-vs-v2 reduction) under target/.
    if want("chunks") {
        eprintln!("[repro] running chunks (scale {scale}) ...");
        let start = std::time::Instant::now();
        let t = chunks::table(scale);
        eprintln!("[repro] chunks done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", t.render());
        tables.push(t);
        let path = args.out.clone().unwrap_or_else(|| "target/CHUNKS.json".to_string());
        write_file(&path, &(chunks::chunks_json(scale).pretty() + "\n"));
        eprintln!("[repro] wrote {path}");
    }
    if want("fig13") || want("fig14") {
        eprintln!("[repro] running fig13+fig14 (scale {scale}) ...");
        let start = std::time::Instant::now();
        let grid = checkpoint::run_all(scale);
        eprintln!("[repro] fig13+fig14 done in {:.1}s", start.elapsed().as_secs_f64());
        for t in [checkpoint::fig13(&grid), checkpoint::fig14(&grid)] {
            println!("{}", t.render());
            tables.push(t);
        }
    }
    run("fig15", &mut || checkout::fig15(scale), &mut tables);
    run("fig16", &mut || checkout::fig16(scale), &mut tables);
    run("table6", &mut || tracking::table6(scale), &mut tables);
    run("fig17", &mut || tracking::fig17(scale), &mut tables);
    run(
        "fig18",
        &mut || sweeps::fig18((120_000.0 * scale) as usize + 1_000),
        &mut tables,
    );
    run("fig19", &mut || sweeps::fig19(1000, (scale * 0.5).min(0.2)), &mut tables);

    if tables.is_empty() {
        die("no experiment matched; see --help");
    }
    // Default artifacts under target/ (never the source tree): the rendered
    // tables and their machine-readable form.
    let text: String = tables.iter().map(|t| t.render() + "\n").collect();
    write_file("target/repro_output.txt", &text);
    eprintln!("[repro] wrote target/repro_output.txt");
    let json_path = args
        .json
        .clone()
        .unwrap_or_else(|| "target/repro_results.json".to_string());
    let json = Json::Array(tables.iter().map(Table::to_json).collect()).pretty();
    write_file(&json_path, &json);
    eprintln!("[repro] wrote {json_path}");
    export_global_trace();
}
