//! # kishu-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7) on the
//! synthesized workloads. The `repro` binary drives it:
//!
//! ```text
//! repro all                 # every experiment
//! repro fig13 --scale 0.5   # one experiment at a given workload scale
//! repro table6 --json out.json
//! ```
//!
//! Experiment inventory (module → paper artifact):
//!
//! | module | artifacts |
//! |---|---|
//! | [`experiments::workload_tables`] | Table 2, Table 7, Table 8, Fig 2/25 |
//! | [`experiments::robustness`] | Fig 12, Table 4, Table 5 |
//! | [`experiments::checkpoint`] | Fig 13 (sizes), Fig 14 (times) |
//! | [`experiments::checkout`] | Fig 15 (undo), Fig 16 (branch switch) |
//! | [`experiments::tracking`] | Table 6, Fig 17 |
//! | [`experiments::sweeps`] | Fig 18 (shared referencing), Fig 19 (scalability) |
//!
//! Absolute numbers differ from the paper (simulated kernel, scaled-down
//! data, different storage); the *shapes* — who wins, by what ballpark
//! factor, where the crossovers sit — are the reproduction targets, and
//! EXPERIMENTS.md records both sides.

pub mod experiments;
pub mod methods;
pub mod report;
