//! Checkpoint write-pipeline comparison: serial oracle vs parallel
//! workers, with and without content-addressed dedup.
//!
//! The workload is built to exercise both tentpole behaviours directly:
//!
//! * each *build* cell creates several independent heavy co-variables, so
//!   the per-cell dump batch has real fan-out for the worker pool;
//! * the *repeat* cells re-create earlier cells' exact values — fresh
//!   objects (the conservative detector fires) holding identical bytes
//!   (the dedup index turns the writes into metadata-only operations).
//!
//! The same numbers feed the CI bench gate: [`bench_json`] emits the
//! machine-readable latencies `scripts/bench_gate.sh` compares against
//! `BENCH_baseline.json`, and [`compare`] is the comparator itself (kept
//! here, in-tree and unit-tested, so the shell stage stays a thin wrapper).

use std::time::Duration;

use kishu::session::{KishuConfig, KishuSession};
use kishu_testkit::json::Json;

use crate::report::{fmt_bytes, fmt_duration, Table};

/// One pipeline configuration's totals.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Worker threads used.
    pub workers: usize,
    /// Dedup enabled?
    pub dedup: bool,
    /// Total checkpoint wall time across cells.
    pub ckpt_wall: Duration,
    /// Wall time for three undo/redo round trips at the end of the run.
    pub checkout_wall: Duration,
    /// Logical serialized bytes (dedup hits included).
    pub bytes_logical: u64,
    /// Physical bytes handed to the store.
    pub bytes_written: u64,
    /// Co-variable writes deduplicated away.
    pub blobs_deduped: usize,
    /// Of `ckpt_wall`, nanoseconds in serialize+seal (phase 2; summed from
    /// the per-cell `ckpt.serialize` spans).
    pub serialize_ns: u64,
    /// Of `ckpt_wall`, nanoseconds in sequential store writes (phase 3).
    pub write_ns: u64,
}

/// The build+repeat workload (see module docs). Deterministic: payloads
/// derive from `(size, seed)` literals, so repeat cells repeat bytes.
fn workload_cells(scale: f64) -> Vec<String> {
    let payload = ((524_288.0 * scale) as usize).max(4_096);
    let build = |c: usize| {
        let mut src = String::new();
        for v in 0..4 {
            src.push_str(&format!(
                "m{c}_{v} = lib_obj('sk.GaussianMixture', {payload}, {seed})\n",
                seed = c * 10 + v
            ));
        }
        src
    };
    let mut cells: Vec<String> = (0..6).map(build).collect();
    // Repeat phase: same sources as the first two build cells.
    cells.push(build(0));
    cells.push(build(1));
    cells
}

/// Run the workload under one pipeline configuration.
pub fn run(scale: f64, workers: usize, dedup: bool) -> PipelineRun {
    let config = KishuConfig {
        checkpoint_workers: workers,
        dedup_blobs: dedup,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    let mut first_node = None;
    for cell in workload_cells(scale) {
        let r = s.run_cell(&cell).expect("pipeline workload parses");
        if first_node.is_none() {
            first_node = r.node;
        }
    }
    let m = s.metrics();
    let ckpt_wall = m.total_checkpoint();
    let bytes_logical = m.total_checkpoint_bytes();
    let bytes_written = m.total_bytes_written();
    let blobs_deduped = m.total_blobs_deduped();
    let serialize_ns = m.total_serialize_ns();
    let write_ns = m.total_write_ns();
    // Checkout latency: three undo/redo round trips to the first
    // checkpoint, summed (amortizes timer noise for the CI gate). Derived
    // from the reports' `co_wall_ns` — i.e. from the `checkout` spans — not
    // from a second stopwatch around them.
    let head = s.head();
    let first = first_node.expect("auto checkpoint committed");
    let mut checkout_ns = 0u64;
    for _ in 0..3 {
        checkout_ns += s.checkout(first).expect("undo").co_wall_ns;
        checkout_ns += s.checkout(head).expect("redo").co_wall_ns;
    }
    PipelineRun {
        workers,
        dedup,
        ckpt_wall,
        checkout_wall: Duration::from_nanos(checkout_ns),
        bytes_logical,
        bytes_written,
        blobs_deduped,
        serialize_ns,
        write_ns,
    }
}

/// The pipeline comparison table (printed by `repro table5` and
/// `repro pipeline`).
pub fn table(scale: f64) -> Table {
    let serial = run(scale, 1, true);
    let par = run(scale, 4, true);
    let nodedup = run(scale, 4, false);
    let mut t = Table::new(
        "Pipeline",
        "parallel checkpoint write pipeline vs the serial oracle",
        &[
            "Config",
            "ckpt wall",
            "undo/redo x3",
            "logical bytes",
            "bytes written",
            "deduped",
            "speedup",
        ],
    );
    let base = serial.ckpt_wall.as_secs_f64();
    for r in [&serial, &par, &nodedup] {
        let label = format!(
            "{} worker{}{}",
            r.workers,
            if r.workers == 1 { " (oracle)" } else { "s" },
            if r.dedup { "" } else { ", dedup off" }
        );
        t.row(vec![
            label,
            fmt_duration(r.ckpt_wall),
            fmt_duration(r.checkout_wall),
            fmt_bytes(r.bytes_logical),
            fmt_bytes(r.bytes_written),
            r.blobs_deduped.to_string(),
            format!("{:.2}x", base / r.ckpt_wall.as_secs_f64().max(1e-9)),
        ]);
    }
    t.note(
        "store contents and fault ledgers are byte-identical across worker \
         counts (writes stay on the session thread); dedup makes repeat \
         checkpoints metadata-only",
    );
    t
}

/// Machine-readable bench-gate metrics (lower is better for every entry).
/// Schema: `{"schema":"kishu-bench-v1","scale":S,"metrics":{name:ns}}`.
pub fn bench_json(scale: f64) -> Json {
    let serial = run(scale, 1, true);
    let par = run(scale, 4, true);
    // Read-side latencies from the restore sweep: cold restores at serial
    // and parallel width, and cache-warm round trips — so a regression in
    // the checkout pipeline or the read cache fails the gate like a write
    // regression does.
    let co_serial = super::restore::run(scale, 1, 0);
    let co_par = super::restore::run(scale, 4, 0);
    let co_cached = super::restore::run(scale, 4, super::restore::CACHE_BYTES);
    // Multi-session shared-store numbers ride along report-only: new metric
    // names have no baseline entry, so they cannot fail the gate until the
    // baseline is deliberately refreshed.
    let (multi_metrics, multi_info) = super::multi::bench_fragment(scale);
    // Storage-engine-v2 byte metrics (lower is better, like the latencies):
    // a representation regression — v2 suddenly writing v1-sized logs —
    // gates once the baseline carries these entries.
    let (chunk_metrics, chunk_info) = super::chunks::bench_fragment(scale);
    let mut metric_pairs = vec![
                (
                    "ckpt_serial_ns",
                    Json::Int(serial.ckpt_wall.as_nanos() as i64),
                ),
                (
                    "ckpt_parallel_ns",
                    Json::Int(par.ckpt_wall.as_nanos() as i64),
                ),
                (
                    "checkout_ns",
                    Json::Int(par.checkout_wall.as_nanos() as i64),
                ),
                (
                    "checkout_serial_ns",
                    Json::Int(co_serial.cold_wall.as_nanos() as i64),
                ),
                (
                    "checkout_parallel_ns",
                    Json::Int(co_par.cold_wall.as_nanos() as i64),
                ),
                (
                    "checkout_cached_ns",
                    Json::Int(co_cached.warm_wall.as_nanos() as i64),
                ),
                // Per-phase breakdowns, derived from the same spans that
                // produced the wall totals above (never double-clocked):
                // write side splits serialize vs store-write, read side
                // splits fetch vs verify vs apply.
                ("ckpt_serialize_ns", Json::Int(par.serialize_ns as i64)),
                ("ckpt_write_ns", Json::Int(par.write_ns as i64)),
                ("checkout_fetch_ns", Json::Int(co_par.cold_fetch_ns as i64)),
                (
                    "checkout_verify_ns",
                    Json::Int(co_par.cold_verify_ns as i64),
                ),
                ("checkout_apply_ns", Json::Int(co_par.cold_apply_ns as i64)),
    ];
    metric_pairs.extend(multi_metrics);
    metric_pairs.extend(chunk_metrics);
    Json::obj(vec![
        ("schema", Json::Str("kishu-bench-v1".into())),
        ("scale", Json::Float(scale)),
        ("metrics", Json::obj(metric_pairs)),
        ("multi", multi_info),
        ("chunks", chunk_info),
    ])
}

/// Absolute slack under which a slowdown never gates (nanoseconds). The
/// quick-scale metrics are a few milliseconds; on a shared single-core CI
/// box a concurrent page-cache flush can add that much to *any* wall time,
/// so a percentage alone would fail tiny metrics on pure scheduler noise.
/// A real regression at these scales (losing parallel overlap, losing the
/// cache) costs tens of milliseconds and still trips the gate.
pub const NOISE_FLOOR_NS: f64 = 5_000_000.0;

/// Compare a PR's bench metrics against a baseline. Returns one line per
/// metric; `Err` lists the metrics that regressed beyond `tolerance`
/// (e.g. `0.25` fails anything more than 25% slower than baseline) *and*
/// more than [`NOISE_FLOOR_NS`] in absolute terms.
/// Metrics present on only one side are reported but never fail the gate —
/// a fresh metric has no baseline to regress from.
pub fn compare(baseline: &Json, pr: &Json, tolerance: f64) -> Result<Vec<String>, Vec<String>> {
    let metrics = |j: &Json| -> Vec<(String, f64)> {
        let Some(Json::Object(m)) = j.get("metrics") else {
            return Vec::new();
        };
        m.iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect()
    };
    let base = metrics(baseline);
    let new = metrics(pr);
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (name, pr_ns) in &new {
        match base.iter().find(|(k, _)| k == name) {
            Some((_, base_ns)) if *base_ns > 0.0 => {
                let ratio = pr_ns / base_ns;
                let line = format!(
                    "{name}: {:.2}ms -> {:.2}ms ({:+.1}%)",
                    base_ns / 1e6,
                    pr_ns / 1e6,
                    (ratio - 1.0) * 100.0
                );
                if ratio > 1.0 + tolerance && pr_ns - base_ns > NOISE_FLOOR_NS {
                    regressions.push(format!("{line}  REGRESSION (> {:.0}%)", tolerance * 100.0));
                } else {
                    lines.push(line);
                }
            }
            _ => lines.push(format!("{name}: no baseline (new metric, not gated)")),
        }
    }
    for (name, _) in &base {
        if !new.iter().any(|(k, _)| k == name) {
            // A silently vanished metric would un-gate itself forever: make
            // it loud so `bench_gate.sh` can surface it in the CI summary
            // (it still does not fail the gate — renames and baseline
            // refreshes are legitimate).
            lines.push(format!(
                "WARNING: {name}: present in baseline but missing from PR run \
                 (metric vanished — renamed, dropped, or the run is incomplete)"
            ));
        }
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        regressions.extend(lines);
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny scale keeps the test fast; correctness properties (dedup fires,
    /// parallel beats serial on wall time, identical stored bytes) come
    /// from `tests/parallel_pipeline.rs` — here we check the experiment's
    /// own accounting.
    #[test]
    fn repeat_cells_dedup_and_accounting_is_consistent() {
        let r = run(0.05, 2, true);
        assert!(r.blobs_deduped >= 8, "two repeat cells of 4 covars: {r:?}");
        assert!(r.bytes_written < r.bytes_logical, "{r:?}");
        let off = run(0.05, 2, false);
        assert_eq!(off.blobs_deduped, 0);
        assert_eq!(off.bytes_logical, r.bytes_logical);
        // With truthful put receipts, the dedup-off arm writes the same
        // physical bytes: the store's content-addressed id layer catches
        // the repeats anyway and its receipt says so. Session-level dedup
        // is a metadata optimization (skip the put entirely), visible in
        // `blobs_deduped`, not in physical bytes.
        assert_eq!(off.bytes_written, r.bytes_written);
    }

    #[test]
    fn bench_json_has_the_gated_metrics() {
        let j = bench_json(0.02);
        for key in [
            "ckpt_serial_ns",
            "ckpt_parallel_ns",
            "checkout_ns",
            "checkout_serial_ns",
            "checkout_parallel_ns",
            "checkout_cached_ns",
            "ckpt_serialize_ns",
            "ckpt_write_ns",
            "checkout_fetch_ns",
            "checkout_verify_ns",
            "checkout_apply_ns",
        ] {
            let m = j.get("metrics").and_then(|m| m.get(key)).and_then(Json::as_f64);
            assert!(matches!(m, Some(n) if n > 0.0), "{key} missing");
        }
        // Phase breakdowns are views over the wall totals, never larger.
        let ns = |key: &str| j.get("metrics").and_then(|m| m.get(key)).and_then(Json::as_f64).unwrap();
        assert!(ns("ckpt_serialize_ns") + ns("ckpt_write_ns") <= ns("ckpt_parallel_ns"));
        assert!(
            ns("checkout_fetch_ns") + ns("checkout_verify_ns") + ns("checkout_apply_ns")
                <= ns("checkout_parallel_ns")
        );
    }

    #[test]
    fn vanished_metrics_warn_loudly_without_gating() {
        let mk = |names: &[&str]| {
            Json::obj(vec![(
                "metrics",
                Json::obj(names.iter().map(|n| (*n, Json::Float(50e6))).collect()),
            )])
        };
        let lines = compare(
            &mk(&["ckpt_parallel_ns", "old_metric_ns"]),
            &mk(&["ckpt_parallel_ns"]),
            0.25,
        )
        .expect("a vanished metric must not gate");
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("WARNING:") && l.contains("old_metric_ns")),
            "missing-metric warning absent: {lines:?}"
        );
    }

    #[test]
    fn compare_gates_only_real_regressions() {
        // Nanosecond-realistic magnitudes (tens of ms), well above the
        // noise floor, so the ratio term is what's under test.
        let mk = |ckpt: f64, co: f64| {
            Json::obj(vec![(
                "metrics",
                Json::obj(vec![
                    ("ckpt_parallel_ns", Json::Float(ckpt)),
                    ("checkout_ns", Json::Float(co)),
                ]),
            )])
        };
        // Within tolerance: ok.
        assert!(compare(&mk(100e6, 100e6), &mk(120e6, 95e6), 0.25).is_ok());
        // Past tolerance: the offender is named.
        let err = compare(&mk(100e6, 100e6), &mk(130e6, 95e6), 0.25).unwrap_err();
        assert!(err.iter().any(|l| l.contains("ckpt_parallel_ns") && l.contains("REGRESSION")));
        // New metric with no baseline never fails.
        let pr = Json::obj(vec![(
            "metrics",
            Json::obj(vec![("brand_new_ns", Json::Float(5.0))]),
        )]);
        assert!(compare(&mk(100e6, 100e6), &pr, 0.25).is_ok());
    }

    #[test]
    fn compare_never_gates_sub_noise_floor_deltas() {
        let mk = |ns: f64| {
            Json::obj(vec![(
                "metrics",
                Json::obj(vec![("checkout_cached_ns", Json::Float(ns))]),
            )])
        };
        // +100% but only +3ms: scheduler noise on a tiny metric, not a
        // regression.
        assert!(compare(&mk(3e6), &mk(6e6), 0.25).is_ok());
        // +100% and +20ms: a real regression even on a small-ish metric.
        assert!(compare(&mk(20e6), &mk(40e6), 0.25).is_err());
    }
}
