//! Fig 13 (cumulative incremental checkpoint sizes) and Fig 14 (cumulative
//! checkpoint times): run every notebook under every method, checkpointing
//! after each cell.

use std::time::Duration;

use kishu_workloads::{all_notebooks, NotebookSpec};

use crate::methods::{Driver, MethodKind};
use crate::report::{fmt_bytes, fmt_duration, Table};

/// One (notebook, method) run's checkpoint totals.
#[derive(Debug, Clone)]
pub struct CkptTotals {
    /// Notebook name.
    pub notebook: &'static str,
    /// Method label.
    pub method: &'static str,
    /// Cumulative checkpoint bytes (`None` = the method failed on this
    /// notebook).
    pub bytes: Option<u64>,
    /// Cumulative checkpoint time.
    pub time: Option<Duration>,
    /// Total notebook cell-execution time (method-independent).
    pub cell_time: Duration,
}

/// Run one notebook under one method, checkpointing per cell.
pub fn run_notebook(nb: &NotebookSpec, kind: MethodKind) -> CkptTotals {
    let mut d = Driver::new(kind);
    let mut bytes = 0u64;
    let mut time = Duration::ZERO;
    let mut cell_time = Duration::ZERO;
    for c in &nb.cells {
        let cost = d.run_cell(c);
        bytes += cost.ckpt_bytes;
        time += cost.ckpt_time;
        cell_time += cost.cell_time;
    }
    let failed = d.failed.is_some();
    CkptTotals {
        notebook: nb.name,
        method: kind.label(),
        bytes: (!failed).then_some(bytes),
        time: (!failed).then_some(time),
        cell_time,
    }
}

/// Run everything once; the raw grid behind Figs 13 and 14.
pub fn run_all(scale: f64) -> Vec<CkptTotals> {
    let mut out = Vec::new();
    for nb in all_notebooks(scale) {
        for kind in MethodKind::ALL {
            out.push(run_notebook(&nb, kind));
        }
    }
    out
}

/// Fig 13: cumulative checkpoint storage per notebook × method.
pub fn fig13(grid: &[CkptTotals]) -> Table {
    let mut columns = vec!["Notebook".to_string()];
    columns.extend(MethodKind::ALL.iter().map(|m| m.label().to_string()));
    let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig 13", "cumulative incremental checkpoint storage cost", &cols);
    for nb_rows in grid.chunks(MethodKind::ALL.len()) {
        let mut row = vec![nb_rows[0].notebook.to_string()];
        for r in nb_rows {
            row.push(match r.bytes {
                Some(b) => fmt_bytes(b),
                None => "FAIL".to_string(),
            });
        }
        t.row(row);
    }
    t.note("paper: Kishu consistently smallest (except Det-replay); CRIU largest; CRIU fails on TorchGPU+Ray; DumpSession fails on Qiskit");
    t
}

/// Fig 14: cumulative checkpoint time per notebook × method (plus notebook
/// runtime for the overhead-% claim).
pub fn fig14(grid: &[CkptTotals]) -> Table {
    let mut columns = vec!["Notebook".to_string(), "cell runtime".to_string()];
    columns.extend(MethodKind::ALL.iter().map(|m| m.label().to_string()));
    let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig 14", "cumulative incremental checkpoint time", &cols);
    for nb_rows in grid.chunks(MethodKind::ALL.len()) {
        let mut row = vec![
            nb_rows[0].notebook.to_string(),
            fmt_duration(nb_rows[0].cell_time),
        ];
        for r in nb_rows {
            row.push(match r.time {
                Some(d) => fmt_duration(d),
                None => "FAIL".to_string(),
            });
        }
        t.row(row);
    }
    t.note("paper: Kishu lowest on most notebooks (≤15.5% of runtime); CRIU-Inc occasionally faster but unreliable; EN pays its profiling pass");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_workloads::notebooks;

    #[test]
    fn kishu_beats_full_dumps_on_an_incremental_notebook() {
        let nb = notebooks::hw_lm(0.1);
        let kishu = run_notebook(&nb, MethodKind::Kishu);
        let dump = run_notebook(&nb, MethodKind::DumpSession);
        let criu = run_notebook(&nb, MethodKind::CriuFull);
        let kb = kishu.bytes.expect("kishu never fails");
        let db = dump.bytes.expect("dump handles HW-LM");
        let cb = criu.bytes.expect("criu handles HW-LM");
        assert!(kb < db, "Kishu {kb} should beat DumpSession {db}");
        assert!(db < cb, "DumpSession {db} should beat CRIU {cb}");
    }

    #[test]
    fn criu_fails_exactly_on_the_off_process_notebooks() {
        for nb in all_notebooks(0.02) {
            let r = run_notebook(&nb, MethodKind::CriuIncremental);
            let should_fail = matches!(nb.name, "TorchGPU" | "Ray");
            assert_eq!(
                r.bytes.is_none(),
                should_fail,
                "{}: CRIU-Inc failure mismatch",
                nb.name
            );
        }
    }

    #[test]
    fn dump_session_fails_exactly_on_qiskit() {
        for nb in all_notebooks(0.02) {
            let r = run_notebook(&nb, MethodKind::DumpSession);
            assert_eq!(
                r.bytes.is_none(),
                nb.name == "Qiskit",
                "{}: DumpSession failure mismatch",
                nb.name
            );
        }
    }

    #[test]
    fn det_replay_stores_less_than_kishu() {
        let nb = notebooks::cluster(0.05);
        let kishu = run_notebook(&nb, MethodKind::Kishu);
        let det = run_notebook(&nb, MethodKind::KishuDetReplay);
        assert!(
            det.bytes.expect("det ok") < kishu.bytes.expect("kishu ok"),
            "skipping deterministic cells must save space"
        );
    }
}
