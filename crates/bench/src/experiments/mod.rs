//! Experiment implementations, one module per paper artifact group.

pub mod checkout;
pub mod checkpoint;
pub mod chunks;
pub mod multi;
pub mod pipeline;
pub mod restore;
pub mod robustness;
pub mod sweeps;
pub mod tracking;
pub mod workload_tables;
