//! Storage-engine-v2 sweep: the *mutate-slightly* workload.
//!
//! The notebook pattern the chunk layer exists for: a session holds one
//! large object (a dataframe, a tensor, a long list) and each cell mutates
//! a sliver of it. Blob-level dedup is blind here — every cell's sealed
//! payload differs by a few bytes, so every checkpoint re-writes the whole
//! object. Content-defined chunking turns each of those checkpoints into
//! "the touched chunk + a manifest"; per-chunk compression shrinks what
//! does get written.
//!
//! The experiment runs the identical session workload over two file-backed
//! stores — the v1 representation (chunking off) and v2 (chunking +
//! compression on) — and reports both physical footprints, the reduction
//! ratio, and the chunk/dedup/compression attribution that flowed through
//! the session's [`kishu::session::CellReport`]s. `repro chunks` emits the
//! machine-readable form under `target/CHUNKS.json`, and the headline
//! byte metrics ride the bench gate via [`super::pipeline::bench_json`].

use kishu::session::{KishuConfig, KishuSession};
use kishu_storage::chunk::ChunkConfig;
use kishu_storage::FileStore;
use kishu_testkit::json::Json;

use crate::report::{fmt_bytes, Table};

/// Totals from one arm of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ArmRun {
    /// Logical serialized bytes across all checkpoints.
    pub logical_bytes: u64,
    /// Physical bytes in the store's log (framing included).
    pub physical_bytes: u64,
    /// Physical bytes the session's receipts attributed across cells.
    pub bytes_written: u64,
    /// New chunks stored (0 for the v1 arm).
    pub chunks_written: u64,
    /// Chunk dedup hits (0 for the v1 arm).
    pub chunks_deduped: u64,
    /// Bytes compression saved (0 for the v1 arm).
    pub bytes_compressed: u64,
}

/// Both arms plus the derived ratios.
#[derive(Debug, Clone, Copy)]
pub struct ChunksRun {
    pub v1: ArmRun,
    pub v2: ArmRun,
    /// v1 physical bytes over v2 physical bytes (the headline win; ≥ 1.0
    /// means v2 never loses).
    pub reduction: f64,
    /// Chunk-level dedup ratio from the store ledger (raw referenced bytes
    /// over raw stored bytes).
    pub dedup_ratio: f64,
    /// Compression ratio over stored chunks (raw over stored bytes).
    pub compression_ratio: f64,
}

/// The mutate-slightly cells: one big list, then single-element writes.
///
/// The list must seal to a payload spanning many average-sized chunks
/// (default avg 8 KiB) — a payload of only one or two chunks makes every
/// mutation rewrite most of the object and the sweep measures nothing.
/// ~3 bytes/element sealed, so the floor keeps the payload around 70 KiB.
fn workload_cells(scale: f64) -> Vec<String> {
    let n = ((250_000.0 * scale) as usize).max(24_000);
    let mut cells = vec![format!("big = list(range({n}))\n")];
    for i in 0..12usize {
        // Deterministic scattered indices; each touches one chunk's worth
        // of the sealed payload.
        let idx = (i * 7919) % n;
        cells.push(format!("big[{idx}] = {}\n", i * 31 + 1));
    }
    cells
}

fn run_arm(
    scale: f64,
    dir: &std::path::Path,
    name: &str,
    cfg: ChunkConfig,
) -> (ArmRun, Option<kishu_storage::ChunkStats>) {
    let path = dir.join(format!("chunks-{name}.log"));
    let _ = std::fs::remove_file(&path);
    let store = FileStore::create_with(&path, cfg, true).expect("create bench store");
    let mut s = KishuSession::new(Box::new(store), KishuConfig::default());
    for cell in workload_cells(scale) {
        s.run_cell(&cell).expect("chunks workload parses");
    }
    let m = s.metrics();
    let arm = ArmRun {
        logical_bytes: m.total_checkpoint_bytes(),
        physical_bytes: s.store_stats().physical_bytes,
        bytes_written: m.total_bytes_written(),
        chunks_written: m.total_chunks_written(),
        chunks_deduped: m.total_chunks_deduped(),
        bytes_compressed: m.total_bytes_compressed(),
    };
    let chunk_stats = s.store().chunk_stats();
    let _ = std::fs::remove_file(&path);
    (arm, chunk_stats)
}

/// Run the sweep. Stores live under `target/` (never the source tree).
pub fn run(scale: f64) -> ChunksRun {
    let dir = std::path::Path::new("target");
    let _ = std::fs::create_dir_all(dir);
    let (v2, v2_stats) = run_arm(scale, dir, "v2", ChunkConfig::default());
    let (v1, _) = run_arm(scale, dir, "v1", ChunkConfig::disabled());
    let stats = v2_stats.unwrap_or_default();
    ChunksRun {
        v1,
        v2,
        reduction: if v2.physical_bytes == 0 {
            1.0
        } else {
            v1.physical_bytes as f64 / v2.physical_bytes as f64
        },
        dedup_ratio: stats.dedup_ratio(),
        compression_ratio: stats.compression_ratio(),
    }
}

/// Human-readable table for `repro chunks`.
pub fn table(scale: f64) -> Table {
    let r = run(scale);
    let mut t = Table::new(
        "Chunks",
        "storage engine v2 vs v1 on the mutate-slightly workload",
        &["Arm", "logical", "physical", "attributed", "chunks new", "chunks deduped", "compressed away"],
    );
    for (name, a) in [("v1 (chunking off)", r.v1), ("v2 (chunk+compress)", r.v2)] {
        t.row(vec![
            name.to_string(),
            fmt_bytes(a.logical_bytes),
            fmt_bytes(a.physical_bytes),
            fmt_bytes(a.bytes_written),
            a.chunks_written.to_string(),
            a.chunks_deduped.to_string(),
            fmt_bytes(a.bytes_compressed),
        ]);
    }
    t.note(&format!(
        "physical reduction {:.2}x; chunk dedup ratio {:.2}; compression ratio {:.2} \
         — logical views are byte-identical across arms (tests/chunking_differential.rs)",
        r.reduction, r.dedup_ratio, r.compression_ratio
    ));
    t
}

/// Machine-readable form for `repro chunks --out` (default
/// `target/CHUNKS.json`).
pub fn chunks_json(scale: f64) -> Json {
    let r = run(scale);
    Json::obj(vec![
        ("schema", Json::Str("kishu-chunks-v1".into())),
        ("scale", Json::Float(scale)),
        ("v1_physical_bytes", Json::Int(r.v1.physical_bytes as i64)),
        ("v2_physical_bytes", Json::Int(r.v2.physical_bytes as i64)),
        ("logical_bytes", Json::Int(r.v2.logical_bytes as i64)),
        ("reduction", Json::Float(r.reduction)),
        ("dedup_ratio", Json::Float(r.dedup_ratio)),
        ("compression_ratio", Json::Float(r.compression_ratio)),
        ("chunks_written", Json::Int(r.v2.chunks_written as i64)),
        ("chunks_deduped", Json::Int(r.v2.chunks_deduped as i64)),
        ("bytes_compressed", Json::Int(r.v2.bytes_compressed as i64)),
    ])
}

/// The bench-gate fragment: byte metrics where lower is better, so the
/// existing ratio-plus-noise-floor comparator gates a representation
/// regression (v2 suddenly writing v1-sized logs) like a latency one.
pub fn bench_fragment(scale: f64) -> (Vec<(&'static str, Json)>, Json) {
    let r = run(scale);
    (
        vec![
            ("chunks_v2_physical_bytes", Json::Int(r.v2.physical_bytes as i64)),
            ("chunks_v2_written_bytes", Json::Int(r.v2.bytes_written as i64)),
        ],
        Json::obj(vec![
            ("reduction", Json::Float(r.reduction)),
            ("dedup_ratio", Json::Float(r.dedup_ratio)),
            ("compression_ratio", Json::Float(r.compression_ratio)),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar from the storage-engine-v2 work: on the
    /// large-object-small-mutation sweep, v2 cuts physical bytes by at
    /// least 2x vs v1.
    #[test]
    fn v2_halves_physical_bytes_on_mutate_slightly() {
        let r = run(0.1);
        assert!(
            r.reduction >= 2.0,
            "v2 must reduce physical bytes >= 2x on mutate-slightly: {r:?}"
        );
        assert!(r.v2.chunks_written > 0, "v2 arm never chunked: {r:?}");
        assert!(r.v2.chunks_deduped > 0, "small mutations must chunk-dedup: {r:?}");
        assert_eq!(r.v1.chunks_written, 0, "v1 arm must not chunk: {r:?}");
        // Attribution is truthful: receipts account for (framing included)
        // no more than the log's actual growth.
        assert!(r.v2.bytes_written <= r.v2.physical_bytes, "{r:?}");
    }

    #[test]
    fn chunks_json_has_the_ratio_fields() {
        let j = chunks_json(0.05);
        for key in ["reduction", "dedup_ratio"] {
            let v = j.get(key).and_then(Json::as_f64);
            assert!(matches!(v, Some(x) if x >= 1.0), "{key} missing or < 1: {v:?}");
        }
        // Compression may legitimately sit just under 1.0: each stored
        // chunk carries a one-byte stored-vs-compressed flag, so an
        // incompressible workload pays a tiny, honest overhead.
        let c = j.get("compression_ratio").and_then(Json::as_f64);
        assert!(matches!(c, Some(x) if x > 0.9), "compression_ratio missing or absurd: {c:?}");
        assert!(j.get("v2_physical_bytes").and_then(Json::as_i64).unwrap_or(0) > 0);
    }
}
