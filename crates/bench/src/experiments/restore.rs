//! Checkout read-pipeline sweep: restore latency vs worker count, cold and
//! cache-warm — the read-side companion of [`super::pipeline`].
//!
//! The workload builds several cells of independent heavy co-variables,
//! then time-travels: one *cold* undo/redo round trip (every payload read
//! from the store, CRC-verified, and decode-charged) followed by repeated
//! *warm* round trips over the same pair of states (served from the read
//! cache when it is enabled). The sweep shows the two tentpole effects:
//!
//! * cold restore wall time shrinks with restore workers, because the
//!   per-payload decode charges overlap (store reads stay serial on the
//!   session thread, so reports and fault ledgers are width-independent);
//! * warm round trips collapse to near-zero with the cache on, because a
//!   hit skips the store read, the CRC pass, and the decode charge.
//!
//! [`super::pipeline::bench_json`] feeds the cold serial, cold parallel,
//! and warm cached numbers to the CI bench gate.

use std::time::Duration;

use kishu::session::{KishuConfig, KishuSession};

use crate::report::{fmt_bytes, fmt_duration, Table};

/// Default read-cache capacity for the cache-on configurations.
pub const CACHE_BYTES: u64 = 32 * 1024 * 1024;

/// One restore configuration's measurements.
#[derive(Debug, Clone)]
pub struct RestoreRun {
    /// Restore worker threads used.
    pub workers: usize,
    /// Read-cache capacity (0 = off).
    pub cache_bytes: u64,
    /// Wall time of the cold undo/redo round trip (no prior reads).
    pub cold_wall: Duration,
    /// Wall time of three warm undo/redo round trips after the cold one.
    pub warm_wall: Duration,
    /// Payload bytes decoded during the cold round trip.
    pub bytes_loaded: u64,
    /// Cache-served loads during the warm round trips.
    pub warm_cached: usize,
    /// Loads during the warm round trips (cached or not).
    pub warm_loaded: usize,
    /// Of `cold_wall`, nanoseconds in phase 1 (sequential store reads).
    pub cold_fetch_ns: u64,
    /// Of `cold_wall`, nanoseconds in phase 2 (pooled CRC verify + decode
    /// charge).
    pub cold_verify_ns: u64,
    /// Of `cold_wall`, nanoseconds in phase 3 (sequential deserialize +
    /// namespace apply).
    pub cold_apply_ns: u64,
}

/// Build cells of independent heavy co-variables (fan-out for the worker
/// pool); deterministic payloads derive from `(size, seed)` literals.
fn workload_cells(scale: f64) -> Vec<String> {
    let payload = ((524_288.0 * scale) as usize).max(4_096);
    (0..6)
        .map(|c| {
            let mut src = String::new();
            for v in 0..4 {
                src.push_str(&format!(
                    "r{c}_{v} = lib_obj('sk.GaussianMixture', {payload}, {seed})\n",
                    seed = c * 10 + v
                ));
            }
            src
        })
        .collect()
}

/// Run the time-travel workload under one restore configuration.
pub fn run(scale: f64, workers: usize, cache_bytes: u64) -> RestoreRun {
    let config = KishuConfig {
        checkpoint_workers: 4,
        restore_workers: workers,
        checkout_cache_bytes: cache_bytes,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    let mut first_node = None;
    for cell in workload_cells(scale) {
        let r = s.run_cell(&cell).expect("restore workload parses");
        if first_node.is_none() {
            first_node = r.node;
        }
    }
    let head = s.head();
    let first = first_node.expect("auto checkpoint committed");
    // Cold round trip: the undo removes the later cells' co-variables, the
    // redo loads every one of them back from the store. All wall times are
    // derived from the reports' `co_wall_ns` (the `checkout` spans) — no
    // second stopwatch around the calls.
    let undo = s.checkout(first).expect("cold undo");
    let redo = s.checkout(head).expect("cold redo");
    let cold_wall = Duration::from_nanos(undo.co_wall_ns + redo.co_wall_ns);
    let bytes_loaded = undo.bytes_loaded + redo.bytes_loaded;
    let cold_fetch_ns = undo.fetch_ns + redo.fetch_ns;
    let cold_verify_ns = undo.verify_ns + redo.verify_ns;
    let cold_apply_ns = undo.apply_ns + redo.apply_ns;
    // Warm round trips over the same pair of states.
    let mut warm_cached = 0usize;
    let mut warm_loaded = 0usize;
    let mut warm_ns = 0u64;
    for _ in 0..3 {
        let u = s.checkout(first).expect("warm undo");
        let r = s.checkout(head).expect("warm redo");
        warm_cached += u.blobs_cached + r.blobs_cached;
        warm_loaded += u.loaded.len() + r.loaded.len();
        warm_ns += u.co_wall_ns + r.co_wall_ns;
    }
    RestoreRun {
        workers,
        cache_bytes,
        cold_wall,
        warm_wall: Duration::from_nanos(warm_ns),
        bytes_loaded,
        warm_cached,
        warm_loaded,
        cold_fetch_ns,
        cold_verify_ns,
        cold_apply_ns,
    }
}

/// The restore sweep table (printed by `repro restore`).
pub fn table(scale: f64) -> Table {
    let serial = run(scale, 1, 0);
    let runs = [
        &serial,
        &run(scale, 2, 0),
        &run(scale, 4, 0),
        &run(scale, 8, 0),
        &run(scale, 4, CACHE_BYTES),
    ];
    let mut t = Table::new(
        "Restore",
        "parallel checkout read pipeline vs the serial oracle, cold and cache-warm",
        &[
            "Config",
            "cold undo/redo",
            "warm x3",
            "bytes loaded",
            "cache hits",
            "cold speedup",
        ],
    );
    let base = serial.cold_wall.as_secs_f64();
    for r in runs {
        let label = format!(
            "{} worker{}{}",
            r.workers,
            if r.workers == 1 { " (oracle)" } else { "s" },
            if r.cache_bytes > 0 { ", cache on" } else { "" }
        );
        t.row(vec![
            label,
            fmt_duration(r.cold_wall),
            fmt_duration(r.warm_wall),
            fmt_bytes(r.bytes_loaded),
            format!("{}/{}", r.warm_cached, r.warm_loaded),
            format!("{:.2}x", base / r.cold_wall.as_secs_f64().max(1e-9)),
        ]);
    }
    t.note(
        "checkout reports, namespaces, and fault ledgers are identical \
         across restore worker counts (store reads stay on the session \
         thread); warm round trips with the cache on skip the store read, \
         the CRC pass, and the decode charge",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accounting consistency at a tiny scale; width-independence and cache
    /// transparency come from `tests/parallel_checkout.rs`.
    #[test]
    fn warm_round_trips_hit_the_cache() {
        let r = run(0.05, 2, CACHE_BYTES);
        assert!(r.bytes_loaded > 0, "{r:?}");
        assert!(r.warm_loaded > 0, "{r:?}");
        assert_eq!(r.warm_cached, r.warm_loaded, "all warm loads served by the cache: {r:?}");
        let off = run(0.05, 2, 0);
        assert_eq!(off.warm_cached, 0, "cache off: {off:?}");
        assert_eq!(off.bytes_loaded, r.bytes_loaded, "cache never changes what is loaded");
    }

    /// The parallel cold restore beats the serial oracle: decode charges
    /// overlap across restore workers (they are sleeps, so this holds on
    /// any core count).
    #[test]
    fn parallel_cold_restore_beats_the_serial_oracle() {
        let serial = run(0.2, 1, 0);
        let par = run(0.2, 4, 0);
        assert!(
            par.cold_wall < serial.cold_wall,
            "4-worker cold restore must beat the oracle: {:?} vs {:?}",
            par.cold_wall,
            serial.cold_wall
        );
    }
}
