//! Fig 12 (checkpoint/checkout failures over the 146 classes, with the
//! Table 4 breakdown) and Table 5 (update-detection outcomes).

use std::rc::Rc;

use kishu::vargraph::{VarGraph, VarGraphConfig};
use kishu_libsim::Registry;
use kishu_workloads::cell;

use crate::methods::{Driver, MethodKind};
use crate::report::Table;

/// Fig 12 / Table 4: attempt checkpoint + checkout of a session holding one
/// object of each of the 146 classes, per method; count failures.
pub fn fig12() -> Table {
    let registry = Registry::standard();
    let methods = [
        MethodKind::Kishu,
        MethodKind::ElasticNotebook,
        MethodKind::DumpSession,
        MethodKind::CriuFull,
    ];
    let mut t = Table::new(
        "Fig 12",
        "checkpoint/checkout failures over 146 library classes",
        &["Method", "ckpt failures", "checkout failures", "total failed classes", "example failures"],
    );
    for kind in methods {
        let mut ckpt_fail = 0usize;
        let mut restore_fail = 0usize;
        let mut examples: Vec<&str> = Vec::new();
        for spec in registry.classes() {
            let mut d = Driver::new(kind);
            d.run_cell(&cell(format!("x = lib_obj('{}', 512, 7)\nbase = [1, 2]\n", spec.name)));
            d.run_cell(&cell("marker = 99\n"));
            if d.failed.is_some() {
                ckpt_fail += 1;
                if examples.len() < 3 {
                    examples.push(spec.name);
                }
                continue;
            }
            let restored = d.restore_to(0).is_ok()
                && d.probe("type(x)").as_deref() == Some("'external'")
                && d.probe("marker").is_none();
            if !restored {
                restore_fail += 1;
                if examples.len() < 3 {
                    examples.push(spec.name);
                }
            }
        }
        t.row(vec![
            kind.label().to_string(),
            ckpt_fail.to_string(),
            restore_fail.to_string(),
            (ckpt_fail + restore_fail).to_string(),
            examples.join(", "),
        ]);
    }
    t.note("paper: Kishu 0 failures; CRIU fails 6 (off-process); DumpSession fails 7 (unserializable / won't deserialize)");
    t
}

/// Table 4: the noteworthy classes existing works fail on, with the
/// observed failure per method.
pub fn table4() -> Table {
    let registry = Registry::standard();
    let mut t = Table::new(
        "Table 4",
        "classes Kishu handles that existing works fail on",
        &["Tool", "Failure mode", "Classes"],
    );
    let criu_fails: Vec<&str> = registry
        .classes()
        .iter()
        .filter(|c| c.behavior.off_process)
        .map(|c| c.name)
        .collect();
    let dump_ckpt: Vec<&str> = registry
        .classes()
        .iter()
        .filter(|c| c.behavior.unserializable)
        .map(|c| c.name)
        .collect();
    let dump_load: Vec<&str> = registry
        .classes()
        .iter()
        .filter(|c| c.behavior.deserialize_fails)
        .map(|c| c.name)
        .collect();
    t.row(vec![
        "CRIU".into(),
        "dist. computing / on-device data / pipelining".into(),
        criu_fails.join(", "),
    ]);
    t.row(vec![
        "DumpSession".into(),
        "unserializable data".into(),
        dump_ckpt.join(", "),
    ]);
    t.row(vec![
        "DumpSession".into(),
        "serializable but won't deserialize".into(),
        dump_load.join(", "),
    ]);
    // Verify Kishu really does checkpoint AND checkout every one of them.
    let mut kishu_ok = 0;
    for name in criu_fails.iter().chain(&dump_ckpt).chain(&dump_load) {
        let mut d = Driver::new(MethodKind::Kishu);
        d.run_cell(&cell(format!("x = lib_obj('{name}', 256, 1)\n")));
        d.run_cell(&cell("y = 1\n"));
        if d.failed.is_none()
            && d.restore_to(0).is_ok()
            && d.probe("type(x)").as_deref() == Some("'external'")
        {
            kishu_ok += 1;
        }
    }
    t.note(format!(
        "Kishu handles {kishu_ok}/{} of these classes (paper: all of them)",
        criu_fails.len() + dump_ckpt.len() + dump_load.len()
    ));
    t
}

/// Table 5: update-detection outcome per class — change an attribute and
/// expect a report; change nothing and expect silence (conservative
/// exceptions allowed).
pub fn table5() -> Table {
    let registry = Rc::new(Registry::standard());
    let config = VarGraphConfig {
        registry: registry.clone(),
        hash_arrays: true,
            hash_primitive_lists: false,
    };
    let mut success = 0usize;
    let mut false_positive = 0usize;
    let mut pickle_error = 0usize;
    let mut fail = 0usize;
    let mut nonce = 0u64;

    for spec in registry.classes() {
        let mut interp = kishu_minipy::Interp::new();
        kishu_libsim::install(&mut interp, registry.clone());
        let out = interp
            .run_cell(&format!("x = lib_obj('{}', 256, 3)\n", spec.name))
            .expect("parses");
        assert!(out.error.is_none());
        let root = interp.globals.peek("x").expect("bound");

        // (2) change nothing: does comparison stay silent?
        let g1 = VarGraph::build(&interp.heap, root, &config, &mut nonce);
        let g2 = VarGraph::build(&interp.heap, root, &config, &mut nonce);
        let spurious = g1.differs_from(&g2);

        // (1) change an attribute: is the update reported?
        let out = interp.run_cell("x.key = 'A'\n").expect("parses");
        assert!(out.error.is_none());
        let g3 = VarGraph::build(&interp.heap, root, &config, &mut nonce);
        let detected = g2.differs_from(&g3);

        if !detected {
            fail += 1;
        } else if !spurious {
            success += 1;
        } else if spec.behavior.nondet_pickle() {
            pickle_error += 1;
        } else {
            false_positive += 1;
        }
    }

    let mut t = Table::new(
        "Table 5",
        "summary of Kishu's update detection over 146 classes",
        &["Result", "Description", "Count"],
    );
    t.row(vec![
        "Success".into(),
        "update reported when object changed, silent otherwise".into(),
        success.to_string(),
    ]);
    t.row(vec![
        "False Positive".into(),
        "update reported on access though object unchanged".into(),
        false_positive.to_string(),
    ]);
    t.row(vec![
        "Pickle Error".into(),
        "object can't be deterministically stored; reported updated".into(),
        pickle_error.to_string(),
    ]);
    t.row(vec![
        "Fail".into(),
        "object changed but no update reported".into(),
        fail.to_string(),
    ]);
    t.note("paper: 120 / 14 / 12 / 0");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_kishu_handles_every_listed_class() {
        let t = table4();
        assert!(t.notes[0].contains("13/13"), "{:?}", t.notes);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn table5_counts_match_the_paper_exactly() {
        let t = table5();
        let counts: Vec<&str> = t.rows.iter().map(|r| r[2].as_str()).collect();
        assert_eq!(counts, vec!["120", "14", "12", "0"]);
    }
}
