//! Fig 12 (checkpoint/checkout failures over the 146 classes, with the
//! Table 4 breakdown), Table 5 (update-detection outcomes), and the fault-
//! injection sweep (graceful degradation under storage faults).

use std::collections::BTreeMap;
use std::sync::Arc;

use kishu::session::{KishuConfig, KishuSession};
use kishu::vargraph::{VarGraph, VarGraphConfig};
use kishu::NodeId;
use kishu_libsim::Registry;
use kishu_minipy::repr::repr;
use kishu_storage::{FaultPlan, FaultStore, MemoryStore};
use kishu_workloads::cell;

use crate::methods::{Driver, MethodKind};
use crate::report::Table;

/// Fig 12 / Table 4: attempt checkpoint + checkout of a session holding one
/// object of each of the 146 classes, per method; count failures.
pub fn fig12() -> Table {
    let registry = Registry::standard();
    let methods = [
        MethodKind::Kishu,
        MethodKind::ElasticNotebook,
        MethodKind::DumpSession,
        MethodKind::CriuFull,
    ];
    let mut t = Table::new(
        "Fig 12",
        "checkpoint/checkout failures over 146 library classes",
        &["Method", "ckpt failures", "checkout failures", "total failed classes", "example failures"],
    );
    for kind in methods {
        let mut ckpt_fail = 0usize;
        let mut restore_fail = 0usize;
        let mut examples: Vec<&str> = Vec::new();
        for spec in registry.classes() {
            let mut d = Driver::new(kind);
            d.run_cell(&cell(format!("x = lib_obj('{}', 512, 7)\nbase = [1, 2]\n", spec.name)));
            d.run_cell(&cell("marker = 99\n"));
            if d.failed.is_some() {
                ckpt_fail += 1;
                if examples.len() < 3 {
                    examples.push(spec.name);
                }
                continue;
            }
            let restored = d.restore_to(0).is_ok()
                && d.probe("type(x)").as_deref() == Some("'external'")
                && d.probe("marker").is_none();
            if !restored {
                restore_fail += 1;
                if examples.len() < 3 {
                    examples.push(spec.name);
                }
            }
        }
        t.row(vec![
            kind.label().to_string(),
            ckpt_fail.to_string(),
            restore_fail.to_string(),
            (ckpt_fail + restore_fail).to_string(),
            examples.join(", "),
        ]);
    }
    t.note("paper: Kishu 0 failures; CRIU fails 6 (off-process); DumpSession fails 7 (unserializable / won't deserialize)");
    t
}

/// Table 4: the noteworthy classes existing works fail on, with the
/// observed failure per method.
pub fn table4() -> Table {
    let registry = Registry::standard();
    let mut t = Table::new(
        "Table 4",
        "classes Kishu handles that existing works fail on",
        &["Tool", "Failure mode", "Classes"],
    );
    let criu_fails: Vec<&str> = registry
        .classes()
        .iter()
        .filter(|c| c.behavior.off_process)
        .map(|c| c.name)
        .collect();
    let dump_ckpt: Vec<&str> = registry
        .classes()
        .iter()
        .filter(|c| c.behavior.unserializable)
        .map(|c| c.name)
        .collect();
    let dump_load: Vec<&str> = registry
        .classes()
        .iter()
        .filter(|c| c.behavior.deserialize_fails)
        .map(|c| c.name)
        .collect();
    t.row(vec![
        "CRIU".into(),
        "dist. computing / on-device data / pipelining".into(),
        criu_fails.join(", "),
    ]);
    t.row(vec![
        "DumpSession".into(),
        "unserializable data".into(),
        dump_ckpt.join(", "),
    ]);
    t.row(vec![
        "DumpSession".into(),
        "serializable but won't deserialize".into(),
        dump_load.join(", "),
    ]);
    // Verify Kishu really does checkpoint AND checkout every one of them.
    let mut kishu_ok = 0;
    for name in criu_fails.iter().chain(&dump_ckpt).chain(&dump_load) {
        let mut d = Driver::new(MethodKind::Kishu);
        d.run_cell(&cell(format!("x = lib_obj('{name}', 256, 1)\n")));
        d.run_cell(&cell("y = 1\n"));
        if d.failed.is_none()
            && d.restore_to(0).is_ok()
            && d.probe("type(x)").as_deref() == Some("'external'")
        {
            kishu_ok += 1;
        }
    }
    t.note(format!(
        "Kishu handles {kishu_ok}/{} of these classes (paper: all of them)",
        criu_fails.len() + dump_ckpt.len() + dump_load.len()
    ));
    t
}

/// Table 5: update-detection outcome per class — change an attribute and
/// expect a report; change nothing and expect silence (conservative
/// exceptions allowed).
pub fn table5() -> Table {
    let registry = Arc::new(Registry::standard());
    let config = VarGraphConfig {
        registry: registry.clone(),
        hash_arrays: true,
            hash_primitive_lists: false,
    };
    let mut success = 0usize;
    let mut false_positive = 0usize;
    let mut pickle_error = 0usize;
    let mut fail = 0usize;
    let mut nonce = 0u64;

    for spec in registry.classes() {
        let mut interp = kishu_minipy::Interp::new();
        kishu_libsim::install(&mut interp, registry.clone());
        let out = interp
            .run_cell(&format!("x = lib_obj('{}', 256, 3)\n", spec.name))
            .expect("parses");
        assert!(out.error.is_none());
        let root = interp.globals.peek("x").expect("bound");

        // (2) change nothing: does comparison stay silent?
        let g1 = VarGraph::build(&interp.heap, root, &config, &mut nonce);
        let g2 = VarGraph::build(&interp.heap, root, &config, &mut nonce);
        let spurious = g1.differs_from(&g2);

        // (1) change an attribute: is the update reported?
        let out = interp.run_cell("x.key = 'A'\n").expect("parses");
        assert!(out.error.is_none());
        let g3 = VarGraph::build(&interp.heap, root, &config, &mut nonce);
        let detected = g2.differs_from(&g3);

        if !detected {
            fail += 1;
        } else if !spurious {
            success += 1;
        } else if spec.behavior.nondet_pickle() {
            pickle_error += 1;
        } else {
            false_positive += 1;
        }
    }

    let mut t = Table::new(
        "Table 5",
        "summary of Kishu's update detection over 146 classes",
        &["Result", "Description", "Count"],
    );
    t.row(vec![
        "Success".into(),
        "update reported when object changed, silent otherwise".into(),
        success.to_string(),
    ]);
    t.row(vec![
        "False Positive".into(),
        "update reported on access though object unchanged".into(),
        false_positive.to_string(),
    ]);
    t.row(vec![
        "Pickle Error".into(),
        "object can't be deterministically stored; reported updated".into(),
        pickle_error.to_string(),
    ]);
    t.row(vec![
        "Fail".into(),
        "object changed but no update reported".into(),
        fail.to_string(),
    ]);
    t.note("paper: 120 / 14 / 12 / 0");
    t
}

/// Render every variable of a session namespace (the equivalence oracle for
/// the fault sweep).
fn namespace(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), repr(&s.interp.heap, o)))
        .collect()
}

/// Fault-injection sweep: run the `hw_lm` notebook under a [`FaultStore`]
/// at increasing transient-fault rates (with and without the session's
/// retry policy), time-traveling every few cells, and report how the
/// session degrades — checkouts must all complete with state identical to a
/// fault-free twin; only the counters are allowed to grow.
pub fn faults(scale: f64) -> Table {
    let nb = kishu_workloads::notebooks::hw_lm(scale);
    let seed = kishu_testkit::rng::env_seed(0x5EED);
    let mut t = Table::new(
        "Faults",
        "graceful degradation under injected storage faults (hw_lm notebook)",
        &[
            "fault rate",
            "retries",
            "faults injected",
            "checkouts ok",
            "state matches",
            "blobs dropped",
            "integrity failures",
        ],
    );
    for (rate, retries) in [(0.0, 2), (0.02, 2), (0.05, 2), (0.05, 0), (0.15, 0)] {
        let store = FaultStore::new(Box::new(MemoryStore::new()), FaultPlan::transient(rate), seed);
        let ledger = store.ledger_handle();
        let config = KishuConfig {
            store_retries: retries,
            ..KishuConfig::default()
        };
        let mut faulty = KishuSession::new(Box::new(store), config);
        let mut clean = KishuSession::in_memory(KishuConfig::default());

        let mut dropped = 0usize;
        let mut integrity = 0usize;
        let mut checkouts = 0usize;
        let mut failed_attempts = 0usize;
        let mut matches = true;
        for (i, c) in nb.cells.iter().enumerate() {
            let rf = faulty.run_cell(&c.src).expect("cell parses");
            clean.run_cell(&c.src).expect("cell parses");
            dropped += rf.blobs_dropped;
            if (i + 1) % 4 == 0 {
                let target = NodeId((i as u32).div_ceil(2));
                checkouts += 1;
                // A checkout downed by a transient fault is itself
                // retryable: re-issuing it restores the full target state.
                let mut done = false;
                for _ in 0..3 {
                    match faulty.checkout(target) {
                        Ok(r) => {
                            integrity += r.integrity_failures;
                            done = true;
                            break;
                        }
                        Err(_) => failed_attempts += 1,
                    }
                }
                assert!(done, "checkout of {target:?} failed even with retries");
                clean.checkout(target).expect("fault-free checkout");
                matches &= namespace(&faulty) == namespace(&clean);
            }
        }
        matches &= namespace(&faulty) == namespace(&clean);
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            retries.to_string(),
            ledger.total().to_string(),
            format!("{checkouts} ({failed_attempts} retried)"),
            if matches { "yes" } else { "NO" }.to_string(),
            dropped.to_string(),
            integrity.to_string(),
        ]);
    }
    t.note(format!(
        "seed {seed} (set KISHU_TESTKIT_SEED to replay); every checkout must \
         restore the exact fault-free state, faults surface only as counters"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_never_diverges_and_faults_fire() {
        let t = faults(0.05);
        for row in &t.rows {
            assert_eq!(row[4], "yes", "state diverged under faults: {row:?}");
        }
        // The zero-rate row injects nothing; with the built-in seed, the
        // 15%-no-retry row must both inject faults and show visible
        // degradation (a caller-chosen KISHU_TESTKIT_SEED can legitimately
        // draw a quieter run).
        assert_eq!(t.rows[0][2], "0");
        if std::env::var("KISHU_TESTKIT_SEED").is_err() {
            let last = t.rows.last().expect("rows");
            assert!(last[2].parse::<u64>().expect("count") > 0, "{last:?}");
            let degraded = last[5].parse::<u64>().unwrap() + last[6].parse::<u64>().unwrap();
            assert!(degraded > 0, "no visible degradation at 15% without retries: {last:?}");
        }
    }

    #[test]
    fn table4_kishu_handles_every_listed_class() {
        let t = table4();
        assert!(t.notes[0].contains("13/13"), "{:?}", t.notes);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn table5_counts_match_the_paper_exactly() {
        let t = table5();
        let counts: Vec<&str> = t.rows.iter().map(|r| r[2].as_str()).collect();
        assert_eq!(counts, vec!["120", "14", "12", "0"]);
    }
}
