//! Table 2 (notebook summary), Table 7 (variables vs co-variables),
//! Table 8 (categorization), and Fig 2 / Fig 25 (workload characteristics).

use kishu_workloads::{all_notebooks, stats};

use crate::report::{fmt_bytes, fmt_duration, Table};

/// Table 2: summary of the evaluation notebooks.
pub fn table2(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 2",
        "summary of notebooks for evaluation (synthesized, scaled)",
        &["Notebook", "Topic", "Library", "Cells", "Time", "Data", "Final"],
    );
    for nb in all_notebooks(scale) {
        let trace = stats::characterize(&nb);
        t.row(vec![
            nb.name.to_string(),
            nb.topic.to_string(),
            nb.library.to_string(),
            nb.cell_count().to_string(),
            fmt_duration(trace.total_wall),
            fmt_bytes(trace.final_state_bytes),
            if nb.is_final { "Yes" } else { "No" }.to_string(),
        ]);
    }
    t.note("sizes are scaled-down substitutes; the paper's relative ordering is preserved");
    t
}

/// Table 7: variable vs co-variable counts per notebook.
pub fn table7(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 7",
        "variable vs co-variable count in notebooks",
        &["Notebook", "# vars.", "# Co-vars."],
    );
    for nb in all_notebooks(scale) {
        let trace = stats::characterize(&nb);
        t.row(vec![
            nb.name.to_string(),
            trace.var_count.to_string(),
            trace.covar_count.to_string(),
        ]);
    }
    t.note("states consist of many small co-variables (the Fig 18 'typical case')");
    t
}

/// Table 8: notebook categorization (final vs in-progress traits).
pub fn table8(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 8",
        "notebooks by category and associated traits",
        &["Notebook", "Final", "Hidden States", "Out-of-order Cells"],
    );
    for nb in all_notebooks(scale) {
        t.row(vec![
            nb.name.to_string(),
            if nb.is_final { "Yes" } else { "No" }.to_string(),
            nb.hidden_states.to_string(),
            nb.out_of_order.to_string(),
        ]);
    }
    t
}

/// Fig 2 / Fig 25: incremental access and creation/modification balance.
pub fn fig2(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig 2/25",
        "per-notebook workload characteristics",
        &[
            "Notebook",
            "cells accessing <10% of state",
            "creation share of updated bytes",
        ],
    );
    for nb in all_notebooks(scale) {
        let trace = stats::characterize(&nb);
        t.row(vec![
            nb.name.to_string(),
            format!(
                "{}/{} ({:.0}%)",
                (trace.incremental_cell_fraction(0.10) * trace.cells.len() as f64).round(),
                trace.cells.len(),
                trace.incremental_cell_fraction(0.10) * 100.0
            ),
            format!("{:.0}%", trace.creation_share() * 100.0),
        ]);
    }
    t.note("paper (Sklearn): 40/44 cells access <10%; creation:modification ≈ 45:55");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_all_notebooks() {
        for t in [table2(0.05), table7(0.05), table8(0.05), fig2(0.05)] {
            assert_eq!(t.rows.len(), 8, "{}", t.artifact);
        }
    }

    #[test]
    fn table8_matches_paper_categorization() {
        let t = table8(0.05);
        let finals: Vec<&str> = t
            .rows
            .iter()
            .filter(|r| r[1] == "Yes")
            .map(|r| r[0].as_str())
            .collect();
        assert_eq!(finals, vec!["Cluster", "TPS", "HW-LM", "StoreSales", "TorchGPU"]);
    }
}
