//! Multi-tenant shared-store experiment (`repro multi`).
//!
//! The deployment the [`kishu_storage::SharedStore`] exists for: several
//! notebook sessions working off the *same* datasets, each on its own
//! private store vs all on one shared store. Measured head-to-head:
//!
//! * **physical bytes** — N private stores each hold a full copy of the
//!   common data; the shared store holds it once (store-wide dedup), so
//!   the interesting number is the dedup ratio `logical / physical`;
//! * **aggregate checkpoint throughput** — all sessions' logical bytes
//!   over the interleaved wall time (per-shard ordered writers mean the
//!   sessions don't serialize against one store-wide lock);
//! * **GC** — after every session persists, superseded graph snapshots are
//!   garbage; one collection must reclaim 100% of it (a second pass finds
//!   nothing) while every historical commit of every session still checks
//!   out byte-identically.
//!
//! The isolation story itself (shared store ≡ private store, per session,
//! byte-for-byte) is proven by `tests/multi_tenant.rs`; this experiment
//! reports what that isolation *buys*.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use kishu::session::{KishuConfig, KishuSession};
use kishu_storage::{default_shard_count, GcReport, SharedStore};
use kishu_testkit::json::Json;

use crate::report::{fmt_bytes, fmt_duration, Table};

/// One shared-vs-private comparison's totals.
#[derive(Debug, Clone)]
pub struct MultiRun {
    /// Concurrent sessions (tenants).
    pub sessions: usize,
    /// Shards in the shared store's blob log.
    pub shards: usize,
    /// Wall time for the interleaved run on the shared store.
    pub shared_wall: Duration,
    /// Wall time for the same sessions on private stores.
    pub private_wall: Duration,
    /// Sum of every session's logical payload bytes.
    pub logical_bytes: u64,
    /// Physical payload bytes in the shared store (before GC).
    pub shared_physical: u64,
    /// Sum of the private stores' physical bytes.
    pub private_physical: u64,
    /// `logical / shared physical` — the cross-session dedup win.
    pub dedup_ratio: f64,
    /// Aggregate checkpoint throughput on the shared store (bytes/sec).
    pub throughput_bps: f64,
    /// What the collection reclaimed.
    pub gc: GcReport,
    /// A second collection found nothing: pass one reclaimed 100%.
    pub gc_complete: bool,
    /// Post-GC checkouts that restored byte-identically to pre-GC.
    pub checkouts_verified: usize,
}

/// One session's notebook: a small private preamble, then the shared
/// datasets every session loads identically (the cross-user redundancy),
/// then a private derived value.
fn session_cells(scale: f64, tenant: usize, sessions: usize) -> Vec<String> {
    let payload = ((262_144.0 * scale) as usize).max(4_096);
    let mut cells = vec![format!(
        "mine = lib_obj('pd.DataFrame', {}, {})\n",
        payload / 8,
        1000 + tenant
    )];
    for c in 0..5 {
        cells.push(format!("ds{c} = lib_obj('np.ndarray', {payload}, {c})\n"));
    }
    cells.push(format!("derived = [{tenant}, {sessions}]\n"));
    cells
}

/// Run the comparison at `scale` with `sessions` tenants.
pub fn run(scale: f64, sessions: usize) -> MultiRun {
    let config = KishuConfig::default;
    let scripts: Vec<Vec<String>> =
        (0..sessions).map(|t| session_cells(scale, t, sessions)).collect();
    let names: Vec<String> = (0..sessions).map(|t| format!("tenant-{t}")).collect();

    // Baseline: every session on its own private store.
    let private_t0 = Instant::now();
    let mut private_physical = 0u64;
    for script in &scripts {
        let mut s = KishuSession::in_memory(config());
        for cell in script {
            s.run_cell(cell).expect("workload parses");
        }
        s.persist().expect("persist");
        private_physical += s.store_stats().physical_bytes;
    }
    let private_wall = private_t0.elapsed();

    // Shared store, cells interleaved round-robin across the sessions.
    let store = SharedStore::in_memory(default_shard_count());
    let mut shared: Vec<KishuSession> = names
        .iter()
        .map(|n| KishuSession::on_shared(&store, n, config()).expect("tenant"))
        .collect();
    let shared_t0 = Instant::now();
    let mut nodes: Vec<Vec<kishu::NodeId>> = vec![Vec::new(); sessions];
    let n_cells = scripts[0].len();
    // Cell-major interleave: `i` indexes every session's script at once.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n_cells {
        for (t, s) in shared.iter_mut().enumerate() {
            if let Some(n) = s.run_cell(&scripts[t][i]).expect("workload parses").node {
                nodes[t].push(n);
            }
            if i == 2 {
                // A mid-run persist whose snapshot the final persist
                // supersedes: guaranteed GC fodder.
                s.persist().expect("mid persist");
            }
        }
    }
    for s in shared.iter_mut() {
        s.persist().expect("final persist");
    }
    let shared_wall = shared_t0.elapsed();
    let logical_bytes = store.logical_payload_bytes();
    let shared_physical = store.stats().payload_bytes;
    let dedup_ratio = store.dedup_ratio();

    // Collect, then prove the history is intact and the garbage is gone.
    let mut before: Vec<Vec<BTreeMap<String, String>>> = Vec::new();
    for (t, s) in shared.iter_mut().enumerate() {
        before.push(
            nodes[t]
                .iter()
                .map(|&n| {
                    s.checkout(n).expect("pre-gc checkout");
                    namespace(s)
                })
                .collect(),
        );
    }
    let live: BTreeMap<String, std::collections::BTreeSet<u64>> =
        names.iter().zip(&shared).map(|(n, s)| (n.clone(), s.live_blobs())).collect();
    let gc = store.collect(&live).expect("gc");
    for s in shared.iter_mut() {
        s.invalidate_store_caches();
    }
    let second = store.collect(&live).expect("second gc");
    let gc_complete = second.reclaimed_blobs == 0 && second.reclaimed_payload_bytes == 0;
    let mut checkouts_verified = 0usize;
    for (t, s) in shared.iter_mut().enumerate() {
        for (k, &n) in nodes[t].iter().enumerate() {
            s.checkout(n).expect("post-gc checkout");
            assert_eq!(namespace(s), before[t][k], "post-GC checkout diverged");
            checkouts_verified += 1;
        }
    }

    MultiRun {
        sessions,
        shards: store.shard_count(),
        shared_wall,
        private_wall,
        logical_bytes,
        shared_physical,
        private_physical,
        dedup_ratio,
        throughput_bps: logical_bytes as f64 / shared_wall.as_secs_f64().max(1e-9),
        gc,
        gc_complete,
        checkouts_verified,
    }
}

fn namespace(s: &KishuSession) -> BTreeMap<String, String> {
    s.interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), kishu_minipy::repr::repr(&s.interp.heap, o)))
        .collect()
}

/// The `repro multi` table.
pub fn table(scale: f64) -> Table {
    let r = run(scale, 4);
    let mut t = Table::new(
        "Multi-tenant",
        "shared checkpoint store vs private per-session stores",
        &["Config", "physical bytes", "ckpt wall", "dedup ratio", "agg throughput"],
    );
    t.row(vec![
        format!("{} private stores", r.sessions),
        fmt_bytes(r.private_physical),
        fmt_duration(r.private_wall),
        "1.00x".to_string(),
        format!("{:.1} MB/s", r.logical_bytes as f64 / r.private_wall.as_secs_f64().max(1e-9) / 1e6),
    ]);
    t.row(vec![
        format!("shared, {} shards", r.shards),
        fmt_bytes(r.shared_physical),
        fmt_duration(r.shared_wall),
        format!("{:.2}x", r.dedup_ratio),
        format!("{:.1} MB/s", r.throughput_bps / 1e6),
    ]);
    t.row(vec![
        "shared, post-GC".to_string(),
        fmt_bytes(r.gc.physical_after),
        "-".to_string(),
        format!("reclaimed {}", fmt_bytes(r.gc.reclaimed_payload_bytes)),
        format!(
            "{} checkouts intact{}",
            r.checkouts_verified,
            if r.gc_complete { ", gc complete" } else { ", GC INCOMPLETE" }
        ),
    ]);
    t.note(
        "identical dataset cells across sessions are stored once (store-wide \
         dedup); each session's view stays byte-identical to a private store \
         (tests/multi_tenant.rs); GC reclaims superseded graph snapshots and \
         nothing reachable",
    );
    t
}

/// Bench-JSON fragment: the gate-comparable latency plus report-only
/// shared-store facts (new metrics never fail the gate until the baseline
/// is refreshed; the `multi` object is informational).
pub fn bench_fragment(scale: f64) -> (Vec<(&'static str, Json)>, Json) {
    let r = run(scale, 4);
    let metrics = vec![("multi_interleaved_ns", Json::Int(r.shared_wall.as_nanos() as i64))];
    let info = Json::obj(vec![
        ("sessions", Json::Int(r.sessions as i64)),
        ("shards", Json::Int(r.shards as i64)),
        ("dedup_ratio", Json::Float(r.dedup_ratio)),
        ("logical_bytes", Json::Int(r.logical_bytes as i64)),
        ("shared_physical_bytes", Json::Int(r.shared_physical as i64)),
        ("private_physical_bytes", Json::Int(r.private_physical as i64)),
        ("aggregate_throughput_bps", Json::Float(r.throughput_bps)),
        ("gc", r.gc.to_json()),
        ("gc_complete", Json::Bool(r.gc_complete)),
        ("checkouts_verified", Json::Int(r.checkouts_verified as i64)),
    ]);
    (metrics, info)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_store_beats_the_dedup_acceptance_bar() {
        let r = run(0.02, 4);
        assert!(
            r.dedup_ratio > 1.5,
            "4 sessions on overlapping datasets must dedup > 1.5x, got {:.2}",
            r.dedup_ratio
        );
        assert!(r.shared_physical < r.private_physical);
        assert!(r.gc.reclaimed_blobs > 0, "superseded snapshots are garbage");
        assert!(r.gc_complete, "one GC pass reclaims 100% of the garbage");
        assert!(r.checkouts_verified > 0);
    }

    #[test]
    fn table_and_fragment_render() {
        let t = table(0.02);
        assert!(t.render().contains("shared"));
        let (metrics, info) = bench_fragment(0.02);
        assert!(metrics.iter().any(|(k, _)| *k == "multi_interleaved_ns"));
        assert!(info.get("dedup_ratio").is_some());
        Json::parse(&info.dump()).expect("round trips");
    }
}
