//! Fig 15 (undoing a cell execution) and Fig 16 (switching execution
//! branches): checkout latency per notebook × method.

use kishu_workloads::{all_notebooks, NotebookSpec};

use crate::methods::{Driver, MethodKind};
use crate::report::{fmt_duration, Table};

/// Fig 15: after running a whole notebook with per-cell checkpoints,
/// measure the time to undo the last state-modifying cell (restore to the
/// state before it).
pub fn fig15(scale: f64) -> Table {
    let mut columns = vec!["Notebook".to_string()];
    columns.extend(MethodKind::ALL.iter().map(|m| m.label().to_string()));
    let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig 15", "checkout time for undoing a cell execution", &cols);
    for nb in all_notebooks(scale) {
        let mut row = vec![nb.name.to_string()];
        for kind in MethodKind::ALL {
            row.push(undo_time(&nb, kind));
        }
        t.row(row);
    }
    t.note("paper: Kishu is sub-second and up to 8.18x faster than the next best; CRIU-Inc is slowest (chain reassembly) and kills the kernel");
    t
}

fn undo_time(nb: &NotebookSpec, kind: MethodKind) -> String {
    let mut d = Driver::new(kind);
    for c in &nb.cells {
        d.run_cell(c);
    }
    if d.failed.is_some() {
        return "FAIL".to_string();
    }
    // Undo the last cell: restore the state as of the second-to-last
    // checkpoint.
    let target = nb.cells.len().saturating_sub(2);
    match d.restore_to(target) {
        Ok(cost) => fmt_duration(cost.time),
        Err(_) => "FAIL".to_string(),
    }
}

/// Fig 16: run the notebook, branch off before the first model-training
/// cell, re-run to the end (branch 2), then measure switching back to
/// branch 1's final state.
pub fn fig16(scale: f64) -> Table {
    let mut columns = vec!["Notebook".to_string()];
    columns.extend(MethodKind::ALL.iter().map(|m| m.label().to_string()));
    let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig 16",
        "checkout time for switching to a branched session state",
        &cols,
    );
    for nb in all_notebooks(scale) {
        let mut row = vec![nb.name.to_string()];
        for kind in MethodKind::ALL {
            row.push(branch_switch_time(&nb, kind));
        }
        t.row(row);
    }
    t.note("paper: Kishu sub-second on most notebooks (up to 4.18x faster); Det-replay can be pathological when a fitting chain must be replayed");
    t
}

/// Index of the branch point: the cell before the first training cell.
pub fn branch_point(nb: &NotebookSpec) -> usize {
    nb.cells
        .iter()
        .position(|c| c.src.contains(".fit("))
        .unwrap_or(nb.cells.len() / 2)
        .saturating_sub(1)
}

fn branch_switch_time(nb: &NotebookSpec, kind: MethodKind) -> String {
    let mut d = Driver::new(kind);
    for c in &nb.cells {
        d.run_cell(c);
    }
    if d.failed.is_some() {
        return "FAIL".to_string();
    }
    let branch1_end = nb.cells.len() - 1;
    let fork = branch_point(nb);
    if d.restore_to(fork).is_err() {
        return "FAIL".to_string();
    }
    // Branch 2: re-run the remainder.
    for c in &nb.cells[fork + 1..] {
        d.run_cell(c);
    }
    if d.failed.is_some() {
        return "FAIL".to_string();
    }
    // Switch back to branch 1's final state.
    match d.restore_to(branch1_end) {
        Ok(cost) => fmt_duration(cost.time),
        Err(_) => "FAIL".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_workloads::notebooks;
    use std::time::Duration;

    fn undo_duration(nb: &NotebookSpec, kind: MethodKind) -> Option<Duration> {
        let mut d = Driver::new(kind);
        for c in &nb.cells {
            d.run_cell(c);
        }
        if d.failed.is_some() {
            return None;
        }
        let target = nb.cells.len().saturating_sub(2);
        d.restore_to(target).ok().map(|c| c.time)
    }

    #[test]
    fn kishu_undo_beats_full_restores() {
        // The Sklearn undo case from §7.5.1: the last delta is tiny, so
        // incremental checkout must be much faster than re-loading the
        // whole state.
        let nb = notebooks::sklearn(0.3);
        let kishu = undo_duration(&nb, MethodKind::Kishu).expect("kishu works");
        let dump = undo_duration(&nb, MethodKind::DumpSession).expect("dump works");
        assert!(
            kishu < dump,
            "incremental undo ({kishu:?}) must beat a complete load ({dump:?})"
        );
    }

    #[test]
    fn criu_incremental_restore_reads_the_whole_chain() {
        let nb = notebooks::hw_lm(0.05);
        let mut d = Driver::new(MethodKind::CriuIncremental);
        for c in &nb.cells {
            d.run_cell(c);
        }
        let cost = d.restore_to(nb.cells.len() - 2).expect("restores");
        // The chain is every checkpoint so far; its read volume dwarfs the
        // one-cell delta.
        let mut k = Driver::new(MethodKind::Kishu);
        for c in &nb.cells {
            k.run_cell(c);
        }
        let kcost = k.restore_to(nb.cells.len() - 2).expect("kishu restores");
        assert!(
            cost.bytes_read > 10 * kcost.bytes_read.max(1),
            "criu-inc read {} vs kishu {}",
            cost.bytes_read,
            kcost.bytes_read
        );
    }

    #[test]
    fn branch_switch_restores_branch1_state() {
        let nb = notebooks::cluster(0.05);
        let mut d = Driver::new(MethodKind::Kishu);
        for c in &nb.cells {
            d.run_cell(c);
        }
        let b1 = d.probe("best").expect("bound");
        let fork = branch_point(&nb);
        d.restore_to(fork).expect("fork");
        for c in &nb.cells[fork + 1..] {
            d.run_cell(c);
        }
        d.restore_to(nb.cells.len() - 1).expect("switch back");
        assert_eq!(d.probe("best").as_deref(), Some(b1.as_str()));
    }
}
