//! Table 6 (cumulative delta-tracking overhead) and Fig 17 (per-cell
//! tracking overhead): Kishu vs AblatedKishu (check-all) vs IPyFlow-style
//! instrumentation.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use kishu::session::{KishuConfig, KishuSession};
use kishu_baselines::ipyflow::IpyflowTracker;
use kishu_libsim::Registry;
use kishu_minipy::Interp;
use kishu_workloads::{all_notebooks, NotebookSpec};

use crate::report::{fmt_duration, Table};

/// A single-cell resolution budget above which the IPyFlow baseline is
/// considered hung (the paper's "FAIL on cell 27").
pub const IPYFLOW_CELL_BUDGET: u64 = 80_000;

/// One method's tracking cost on one notebook.
#[derive(Debug, Clone)]
pub struct TrackingRun {
    /// Per-cell (tracking overhead, cell runtime).
    pub cells: Vec<(Duration, Duration)>,
    /// Cell index at which the method failed, if any.
    pub failed_at: Option<usize>,
}

impl TrackingRun {
    /// Total tracking overhead.
    pub fn total(&self) -> Duration {
        self.cells.iter().map(|(t, _)| *t).sum()
    }

    /// Total cell runtime.
    pub fn runtime(&self) -> Duration {
        self.cells.iter().map(|(_, r)| *r).sum()
    }

    /// Overhead as a percentage of notebook runtime.
    pub fn percent(&self) -> f64 {
        let rt = self.runtime().as_secs_f64();
        if rt == 0.0 {
            0.0
        } else {
            100.0 * self.total().as_secs_f64() / rt
        }
    }

    /// Largest per-cell overhead-to-runtime ratio.
    pub fn max_ratio(&self) -> f64 {
        self.cells
            .iter()
            .map(|(t, r)| t.as_secs_f64() / r.as_secs_f64().max(1e-9))
            .fold(0.0, f64::max)
    }
}

/// Run a notebook under Kishu's detector (optionally check-all), measuring
/// tracking time only (no checkpoint writing).
pub fn run_kishu_tracking(nb: &NotebookSpec, check_all: bool) -> TrackingRun {
    let config = KishuConfig {
        check_all,
        auto_checkpoint: false,
        ..KishuConfig::default()
    };
    let mut s = KishuSession::in_memory(config);
    let mut cells = Vec::with_capacity(nb.cells.len());
    for c in &nb.cells {
        let report = s.run_cell(&c.src).expect("workload parses");
        assert!(report.outcome.error.is_none(), "{:?}", report.outcome.error);
        cells.push((report.tracking_time, report.outcome.wall_time));
    }
    TrackingRun {
        cells,
        failed_at: None,
    }
}

/// Run a notebook under the IPyFlow-style tracker.
pub fn run_ipyflow(nb: &NotebookSpec) -> TrackingRun {
    let mut interp = Interp::new();
    kishu_libsim::install(&mut interp, Arc::new(Registry::standard()));
    let tracker = Rc::new(RefCell::new(IpyflowTracker::new(None)));
    interp.add_observer(tracker.clone());
    let mut cells = Vec::with_capacity(nb.cells.len());
    for (i, c) in nb.cells.iter().enumerate() {
        let before_overhead = tracker.borrow().overhead;
        let before_res = tracker.borrow().resolutions;
        let out = interp.run_cell(&c.src).expect("workload parses");
        assert!(out.error.is_none(), "{:?}", out.error);
        let after_overhead = tracker.borrow().overhead;
        let after_res = tracker.borrow().resolutions;
        cells.push((after_overhead - before_overhead, out.wall_time));
        if after_res - before_res > IPYFLOW_CELL_BUDGET {
            // The hybrid tracker's live resolution diverges on this cell
            // (the paper observes an indefinite hang).
            return TrackingRun {
                cells,
                failed_at: Some(i),
            };
        }
    }
    TrackingRun {
        cells,
        failed_at: None,
    }
}

/// Table 6: cumulative tracking overhead per notebook and method.
pub fn table6(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 6",
        "delta tracking time vs baselines (% of notebook runtime)",
        &["Notebook", "IPyFlow", "AblatedKishu (Check all)", "Kishu (Ours)"],
    );
    for nb in all_notebooks(scale) {
        let ipy = run_ipyflow(&nb);
        let ablated = run_kishu_tracking(&nb, true);
        let ours = run_kishu_tracking(&nb, false);
        let render = |r: &TrackingRun| match r.failed_at {
            Some(i) => format!("FAIL on cell {i}"),
            None => format!("{} ({:.3}%)", fmt_duration(r.total()), r.percent()),
        };
        t.row(vec![
            nb.name.to_string(),
            render(&ipy),
            render(&ablated),
            render(&ours),
        ]);
    }
    t.note("paper: Kishu fastest everywhere (≤2.03% of runtime); IPyFlow fails on StoreSales cell 27; check-all blows up as state grows");
    t
}

/// Fig 17: per-cell tracking overhead summary (max and p90 of the
/// overhead/runtime ratio) for the notebooks the paper plots.
pub fn fig17(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig 17",
        "per-cell tracking overhead as x of cell runtime",
        &["Notebook", "Method", "median x", "p90 x", "max x"],
    );
    let selected = ["TPS", "Sklearn", "HW-LM", "Qiskit"];
    for nb in all_notebooks(scale) {
        if !selected.contains(&nb.name) {
            continue;
        }
        let runs = [
            ("IPyFlow", run_ipyflow(&nb)),
            ("AblatedKishu", run_kishu_tracking(&nb, true)),
            ("Kishu", run_kishu_tracking(&nb, false)),
        ];
        for (label, run) in runs {
            let mut ratios: Vec<f64> = run
                .cells
                .iter()
                .map(|(t, r)| t.as_secs_f64() / r.as_secs_f64().max(1e-9))
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pick = |q: f64| ratios[(q * (ratios.len() - 1) as f64) as usize];
            t.row(vec![
                nb.name.to_string(),
                label.to_string(),
                format!("{:.3}x", pick(0.5)),
                format!("{:.3}x", pick(0.9)),
                format!("{:.3}x", ratios.last().copied().unwrap_or(0.0)),
            ]);
        }
    }
    t.note("paper: Kishu stays bounded on long-running cells; check-all grows with live state (up to 4936x on Sklearn cell 42)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_workloads::notebooks;

    #[test]
    fn kishu_tracks_faster_than_check_all_on_a_growing_state() {
        let nb = notebooks::sklearn(0.3);
        let ours = run_kishu_tracking(&nb, false);
        let ablated = run_kishu_tracking(&nb, true);
        assert!(
            ours.total() < ablated.total(),
            "candidate pruning must win: {:?} vs {:?}",
            ours.total(),
            ablated.total()
        );
    }

    #[test]
    fn ipyflow_fails_on_store_sales_cell_27() {
        let nb = notebooks::store_sales(0.2);
        let run = run_ipyflow(&nb);
        assert_eq!(run.failed_at, Some(27), "the complex-control-flow cell");
    }

    #[test]
    fn ipyflow_survives_the_other_notebooks() {
        for name in ["Cluster", "TPS", "HW-LM", "Qiskit"] {
            let nb = all_notebooks(0.2)
                .into_iter()
                .find(|n| n.name == name)
                .expect("exists");
            let run = run_ipyflow(&nb);
            assert!(run.failed_at.is_none(), "{name} unexpectedly failed");
        }
    }
}
