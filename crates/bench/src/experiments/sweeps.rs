//! Fig 18 (performance vs shared referencing) and Fig 19 (scalability to
//! long notebook sessions).

use std::time::Instant;

use kishu::session::{KishuConfig, KishuSession};
use kishu_workloads::sweeps::{long_session, shared_ref_workload};
use kishu_workloads::notebooks;

use crate::methods::{Driver, MethodKind};
use crate::report::{fmt_bytes, fmt_duration, Table};

/// Fig 18: ten equal arrays; a growing prefix of them lives inside one list
/// co-variable; one array inside the list is modified per test cell.
/// Measures Kishu's checkpoint size/time and undo time against DumpSession
/// and CRIU-Incremental as the co-variable's share of the state grows.
pub fn fig18(array_len: usize) -> Table {
    let mut t = Table::new(
        "Fig 18",
        "checkpoint/checkout efficiency vs % of state in the updated list co-variable",
        &[
            "% state in co-var",
            "Kishu ckpt", "Kishu undo",
            "DumpSession ckpt", "DumpSession undo",
            "CRIU-Inc ckpt", "CRIU-Inc undo",
        ],
    );
    for in_list in 1..=10usize {
        let (setup, modify) = shared_ref_workload(array_len, 10, in_list);
        let mut row = vec![format!("{}%", in_list * 10)];
        for kind in [
            MethodKind::Kishu,
            MethodKind::DumpSession,
            MethodKind::CriuIncremental,
        ] {
            let mut d = Driver::new(kind);
            for c in &setup {
                d.run_cell(c);
            }
            let undo_target = d.versions() - 1;
            let cost = d.run_cell(&modify);
            let restore = d.restore_to(undo_target).expect("restore");
            row.push(fmt_bytes(cost.ckpt_bytes));
            row.push(fmt_duration(restore.time));
        }
        t.row(row);
    }
    t.note("paper: Kishu is best while the co-variable is small (the typical case, avg 2.57% per Table 7) and converges to DumpSession at 100%; CRIU-Inc's ckpt stays flat but its restore reads the whole chain");
    t
}

/// Fig 19: re-execute HW-LM / Qiskit cells up to `max_cells` executions,
/// then report Checkpoint Graph size and state-difference computation time
/// for undoing 0..max_cells cells from the final state.
pub fn fig19(max_cells: usize, scale: f64) -> Table {
    let mut t = Table::new(
        "Fig 19",
        "scalability vs number of cell executions",
        &[
            "Notebook", "cells", "graph metadata",
            "state-diff @25%", "state-diff @50%", "state-diff @100%",
        ],
    );
    for base in [notebooks::hw_lm(scale), notebooks::qiskit(scale)] {
        let cells = long_session(&base, max_cells, 42);
        let mut s = KishuSession::in_memory(KishuConfig::default());
        let mut nodes = Vec::with_capacity(cells.len());
        let mut errored = 0usize;
        for c in &cells {
            // Random re-execution can legitimately raise (a real in-progress
            // session does too); the half-executed cell still checkpoints.
            let r = s.run_cell(&c.src).expect("parses");
            if r.outcome.error.is_some() {
                errored += 1;
            }
            nodes.push(r.node.expect("auto-checkpoint committed"));
        }
        let _ = errored;
        let meta = s.graph().metadata_bytes();
        let head = s.head();
        let diff_time = |fraction: f64| {
            let back = ((nodes.len() - 1) as f64 * fraction) as usize;
            let target = nodes[nodes.len() - 1 - back];
            let start = Instant::now();
            let plan = s.graph().diff(head, target);
            let elapsed = start.elapsed();
            let _ = plan;
            fmt_duration(elapsed)
        };
        t.row(vec![
            base.name.to_string(),
            cells.len().to_string(),
            fmt_bytes(meta as u64),
            diff_time(0.25),
            diff_time(0.5),
            diff_time(1.0),
        ]);
    }
    t.note("paper: graph size linear in cells (≤9 MB at 1000); diff time linear in the cell count of the two states (≤81 ms at 1000)");
    t
}

/// The Fig 4 walk-through, as a printable artifact: incremental checkpoint
/// of the mapping cell stores only the one list co-variable, and undoing it
/// loads only that co-variable.
pub fn fig4(n_rows: usize) -> Table {
    let mut t = Table::new(
        "Fig 4",
        "motivating example: text-mining undo at co-variable granularity",
        &["step", "observation"],
    );
    let mut s = KishuSession::in_memory(KishuConfig::default());
    for c in kishu_workloads::sweeps::fig4_text_mining(n_rows) {
        let r = s.run_cell(&c.src).expect("parses");
        assert!(r.outcome.error.is_none());
    }
    // The mapping cell is the last one; its delta is the sad_ls co-variable.
    let metrics = s.metrics().cells.clone();
    let mapping = metrics.last().expect("cells ran");
    let total: u64 = metrics.iter().map(|c| c.checkpoint_bytes).sum();
    t.row(vec![
        "cell 4 incremental checkpoint".into(),
        format!(
            "{} of {} total ({} co-variable(s) in delta)",
            fmt_bytes(mapping.checkpoint_bytes),
            fmt_bytes(total),
            mapping.covars_updated
        ),
    ]);
    let before_mapping = s.graph().node(mapping.node.expect("committed")).parent.expect("has parent");
    let report = s.checkout(before_mapping).expect("undo");
    t.row(vec![
        "undo cell 4".into(),
        format!(
            "loaded {} co-variable(s), {} read, {} identical untouched, in {}",
            report.loaded.len(),
            fmt_bytes(report.bytes_loaded),
            report.identical,
            fmt_duration(report.wall_time)
        ),
    ]);
    let sad = s.run_cell("sad_ls[0]\n").expect("parses");
    t.row(vec![
        "restored value".into(),
        sad.outcome.value_repr.unwrap_or_default(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_kishu_delta_grows_with_covariable_share() {
        // Kishu's checkpoint for the modify cell scales with the
        // co-variable, not the touched array.
        let measure = |in_list: usize| -> u64 {
            let (setup, modify) = shared_ref_workload(20_000, 10, in_list);
            let mut d = Driver::new(MethodKind::Kishu);
            for c in &setup {
                d.run_cell(c);
            }
            d.run_cell(&modify).ckpt_bytes
        };
        let small = measure(1);
        let large = measure(10);
        assert!(
            large > 5 * small,
            "10-array co-variable ({large}) must dwarf 1-array ({small})"
        );
    }

    #[test]
    fn fig18_criu_inc_checkpoint_stays_flat() {
        let measure = |in_list: usize| -> u64 {
            let (setup, modify) = shared_ref_workload(20_000, 10, in_list);
            let mut d = Driver::new(MethodKind::CriuIncremental);
            for c in &setup {
                d.run_cell(c);
            }
            d.run_cell(&modify).ckpt_bytes
        };
        let small = measure(1);
        let large = measure(10);
        assert!(
            large < 3 * small,
            "page-level delta is independent of the co-variable ({small} vs {large})"
        );
    }

    #[test]
    fn fig19_graph_grows_linearly() {
        let base = notebooks::qiskit(0.05);
        let cells = long_session(&base, 300, 1);
        let mut s = KishuSession::in_memory(KishuConfig::default());
        let mut sizes = Vec::new();
        for (i, c) in cells.iter().enumerate() {
            let r = s.run_cell(&c.src).expect("parses");
            assert!(r.outcome.error.is_none());
            if (i + 1) % 100 == 0 {
                sizes.push(s.graph().metadata_bytes());
            }
        }
        let d1 = sizes[1] - sizes[0];
        let d2 = sizes[2] - sizes[1];
        assert!(
            (d2 as f64) < 2.0 * d1 as f64,
            "metadata growth should stay linear: {sizes:?}"
        );
    }

    #[test]
    fn fig4_walkthrough_produces_three_steps() {
        let t = fig4(300);
        assert_eq!(t.rows.len(), 3);
        assert!(
            t.rows[2][1].contains("sad text"),
            "the mapping ('text' -> 'txt') must be undone: {:?}",
            t.rows[2]
        );
    }
}
