//! Plain-text table rendering and JSON output for the `repro` harness.

use std::fmt::Write as _;

use kishu_testkit::json::Json;

/// A rendered experiment: a title, column headers, and rows of cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Paper artifact this regenerates (e.g. `"Fig 13"`).
    pub artifact: String,
    /// What the table shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (stringified values; `FAIL` for failures).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape checks, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(artifact: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            artifact: artifact.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.artifact, self.title);
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            let mut parts = Vec::with_capacity(cells.len());
            for (cell, w) in cells.iter().zip(widths) {
                parts.push(format!("{cell:<w$}"));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.columns, &widths);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// JSON form used by `repro --json` and the checked-in baseline.
    pub fn to_json(&self) -> Json {
        let strings = |xs: &[String]| Json::Array(xs.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj(vec![
            ("artifact", Json::Str(self.artifact.clone())),
            ("title", Json::Str(self.title.clone())),
            ("columns", strings(&self.columns)),
            (
                "rows",
                Json::Array(self.rows.iter().map(|r| strings(r)).collect()),
            ),
            ("notes", strings(&self.notes)),
        ])
    }
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GiB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2} MiB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KiB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

/// Format a duration in engineering units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("Fig X"));
        assert!(s.contains("| long-name | 22"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new("T", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn table_serializes_to_json() {
        let mut t = Table::new("Fig X", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.note("n");
        let json = t.to_json();
        assert_eq!(json.get("artifact").and_then(Json::as_str), Some("Fig X"));
        let rows = json.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 1);
        // Round-trips through the parser.
        let back = Json::parse(&json.dump()).expect("parses");
        assert_eq!(back.dump(), json.dump());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 * 1024 * 1024).contains("MiB"));
        assert!(fmt_duration(std::time::Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(std::time::Duration::from_secs(2)).contains("s"));
    }
}
