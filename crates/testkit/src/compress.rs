//! In-tree LZ-style compressor (replaces `lz4`/`snap`/`zstd` bindings,
//! keeping the build hermetic).
//!
//! The storage engine compresses checkpoint chunks before they hit the
//! blob log. Notebook payloads are highly compressible in exactly the way
//! LZ77 exploits — sealed co-variables are full of repeated structure
//! (array runs, repeated keys, copied sub-objects) — so a greedy
//! match-based scheme with a small fixed window captures most of the win
//! with no tables to ship and no registry dependency.
//!
//! ## Format
//!
//! ```text
//! compressed := varint(raw_len) token*
//! token      := 0x00..=0x7F  followed by (T + 1) literal bytes
//!             | 0x80..=0xFF  followed by distance: u16 (LE, 1-based)
//!                            meaning: copy ((T & 0x7F) + MIN_MATCH) bytes
//!                            from `distance` bytes back in the output
//! ```
//!
//! `varint` is the usual LEB128 (7 bits per byte, high bit = continue).
//! Matches may self-overlap (`distance < length` copies a repeating
//! pattern), which is what makes all-zero payloads collapse to a few
//! bytes. Decompression is fully deterministic and validates that the
//! output length matches the header exactly.
//!
//! The compressor is *canonical*: identical input bytes always produce
//! identical compressed bytes (greedy parse over a deterministic hash
//! chain), which the chunk-dedup layer relies on — it keys chunks by
//! their stored (post-compression) form.

/// Shortest match worth encoding: a match token costs 3 bytes, so
/// anything shorter than 4 is better spent as literals.
const MIN_MATCH: usize = 4;

/// Longest match one token can encode: `(0x7F) + MIN_MATCH`.
const MAX_MATCH: usize = 0x7F + MIN_MATCH;

/// Longest literal run one token can encode.
const MAX_LITERALS: usize = 0x80;

/// Match window: how far back a match distance may reach (u16 limit).
const WINDOW: usize = u16::MAX as usize;

/// Hash-table size for 4-byte-prefix match candidates (power of two).
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Multiplicative hash over the 4-byte little-endian prefix.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return None; // overflow: not a length we ever wrote
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for run in lits.chunks(MAX_LITERALS) {
        out.push((run.len() - 1) as u8);
        out.extend_from_slice(run);
    }
}

/// Compress `input`. The output always decompresses to exactly `input`;
/// it is *not* guaranteed to be smaller (incompressible data grows by the
/// header plus ~1 byte per 128 — callers keep a stored-form fallback).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 10);
    push_varint(&mut out, input.len() as u64);
    if input.len() < MIN_MATCH {
        flush_literals(&mut out, input);
        return out;
    }
    // head[h] = most recent position whose 4-byte prefix hashed to h.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut pos = 0usize;
    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let cand = head[h];
        head[h] = pos;
        let mut matched = 0usize;
        if cand != usize::MAX && pos - cand <= WINDOW {
            let limit = (input.len() - pos).min(MAX_MATCH);
            while matched < limit && input[cand + matched] == input[pos + matched] {
                matched += 1;
            }
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, &input[lit_start..pos]);
            out.push(0x80 | (matched - MIN_MATCH) as u8);
            out.extend_from_slice(&((pos - cand) as u16).to_le_bytes());
            // Index the interior of the match sparsely (every 2nd byte):
            // keeps long runs fast while still catching nearby repeats.
            let end = pos + matched;
            pos += 1;
            while pos < end {
                if pos + MIN_MATCH <= input.len() {
                    head[hash4(&input[pos..])] = pos;
                }
                pos += 2;
            }
            pos = end;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompress bytes produced by [`compress`]. Fails (returns `None`) on
/// any malformed input: truncated stream, distance reaching before the
/// start of output, or an output length that disagrees with the header.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let raw_len = read_varint(input, &mut pos)? as usize;
    // A forged header must not abort the process: the remaining stream can
    // expand at most MAX_MATCH× per token, so anything beyond that bound is
    // malformed, and the preallocation is capped either way.
    if raw_len > (input.len() - pos).saturating_mul(MAX_MATCH).max(1) {
        return None;
    }
    let mut out = Vec::with_capacity(raw_len.min(1 << 22));
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        if token < 0x80 {
            let n = token as usize + 1;
            let run = input.get(pos..pos + n)?;
            out.extend_from_slice(run);
            pos += n;
        } else {
            let len = (token & 0x7F) as usize + MIN_MATCH;
            let dist = input.get(pos..pos + 2).map(|d| u16::from_le_bytes([d[0], d[1]]))?;
            pos += 2;
            let dist = dist as usize;
            if dist == 0 || dist > out.len() {
                return None;
            }
            // Byte-at-a-time copy: self-overlapping matches (dist < len)
            // intentionally re-read bytes this same copy produced.
            let start = out.len() - dist;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() > raw_len {
            return None;
        }
    }
    (out.len() == raw_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "round-trip mismatch ({} bytes)", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn all_zero_payload_collapses() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        // One 3-byte match token covers at most MAX_MATCH output bytes, so
        // the best possible ratio is ~43x; assert we get close to it.
        assert!(c.len() < data.len() / 40, "zeros compressed to {} bytes", c.len());
        assert_eq!(decompress(&c).expect("decompress"), data);
    }

    #[test]
    fn repetitive_structure_compresses() {
        let row = b"{\"key\": 1234, \"values\": [1.0, 2.0, 3.0]}\n";
        let data: Vec<u8> = row.iter().cycle().take(20_000).copied().collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "repetitive data compressed to {}", c.len());
        assert_eq!(decompress(&c).expect("decompress"), data);
    }

    #[test]
    fn incompressible_data_grows_only_slightly() {
        let mut rng = Rng::seed_from_u64(0xDEAD);
        let data: Vec<u8> = (0..10_000).map(|_| rng.next_u64() as u8).collect();
        let c = compress(&data);
        // Worst case: varint header + one token byte per 128 literals.
        assert!(c.len() <= data.len() + data.len() / MAX_LITERALS + 10);
        assert_eq!(decompress(&c).expect("decompress"), data);
    }

    #[test]
    fn compression_is_canonical() {
        let mut rng = Rng::seed_from_u64(7);
        let data: Vec<u8> = (0..5_000).map(|_| (rng.next_u64() % 7) as u8).collect();
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn already_compressed_data_roundtrips() {
        let row: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let once = compress(&row);
        roundtrip(&once); // compressing compressed output must stay lossless
    }

    #[test]
    fn golden_bytes_stay_stable() {
        // Format drift guard: these exact bytes are what today's encoder
        // produces; a change here is a format break and must be deliberate
        // (stored chunks on disk would stop matching their dedup keys).
        assert_eq!(compress(b""), vec![0x00]);
        assert_eq!(compress(b"A"), vec![0x01, 0x00, b'A']);
        // 12 zeros: varint(12), one literal zero, then a self-overlapping
        // match of 11 at distance 1.
        assert_eq!(compress(&[0u8; 12]), vec![0x0C, 0x00, 0x00, 0x80 | 7, 0x01, 0x00]);
    }

    #[test]
    fn malformed_inputs_fail_closed() {
        assert_eq!(decompress(&[]), None, "missing header");
        assert_eq!(decompress(&[0x05]), None, "header promises bytes that never come");
        assert_eq!(decompress(&[0x04, 0x84, 0x01, 0x00]), None, "match before start");
        assert_eq!(decompress(&[0x01, 0x7F, b'x']), None, "truncated literal run");
        let valid = compress(b"hello hello hello hello");
        for cut in 0..valid.len() {
            // Every strict prefix must fail (length check catches them all).
            assert_eq!(decompress(&valid[..cut]), None, "prefix {cut} accepted");
        }
    }

}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;

    /// Adversarial payload families: uniform random bytes, low-entropy
    /// runs, all-zero, and pre-compressed output (already-compressed data
    /// exercises the incompressible path).
    fn payload() -> BoxedStrategy<Vec<u8>> {
        prop_oneof![
            prop::collection::vec(any::<u8>(), 0usize..4096).boxed(),
            prop::collection::vec(0u8..4, 0usize..4096).boxed(),
            (0usize..4096).prop_map(|n| vec![0u8; n]).boxed(),
            prop::collection::vec(any::<u8>(), 0usize..2048)
                .prop_map(|v| crate::compress::compress(&v))
                .boxed(),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip_is_lossless(data in payload()) {
            let c = crate::compress::compress(&data);
            prop_assert_eq!(crate::compress::decompress(&c), Some(data));
        }

        #[test]
        fn zero_and_one_byte_payloads(b in any::<u8>()) {
            for data in [vec![], vec![b]] {
                let c = crate::compress::compress(&data);
                prop_assert_eq!(crate::compress::decompress(&c), Some(data));
            }
        }

        #[test]
        fn decompress_never_panics_on_garbage(
            data in prop::collection::vec(any::<u8>(), 0usize..512)
        ) {
            let _ = crate::compress::decompress(&data); // may be None; must not panic
        }
    }
}
