//! `kishu-testkit` — the workspace's in-tree substitute for external
//! utility crates, keeping the build hermetic (zero registry dependencies,
//! compiles fully offline).
//!
//! Modules:
//!
//! * [`rng`] — deterministic, seedable PRNG (splitmix64 seeding feeding
//!   xoshiro256++) with range/shuffle/gaussian helpers; replaces `rand`.
//! * [`prop`] — a minimal property-testing harness: composable generators,
//!   configurable case counts, seed-reported failures, and greedy input
//!   shrinking, with a `proptest!`-compatible-enough macro surface;
//!   replaces `proptest`.
//! * [`json`] — a small JSON value type with serialize/parse; replaces
//!   `serde_json` for checkpoint-graph persistence and report emission.
//! * [`bench`] — a plain timing harness for `harness = false` benches;
//!   replaces `criterion`.
//! * [`hash`] — XXH64 (bytes, f64-slice, and string variants); shared by
//!   VarGraph array hashing, the checkpoint dedup index, and keyed fault
//!   decisions.
//! * [`pool`] — a scoped-thread worker pool returning results in job
//!   order; replaces `rayon`/`threadpool` for the checkpoint pipeline.
//! * [`compress`] — a canonical LZ77-style compressor with a varint +
//!   literal/match token format; replaces `lz4`/`zstd` bindings for the
//!   storage engine's per-chunk compression.
//!
//! The [`prelude`] mirrors `proptest::prelude` closely enough that porting
//! a suite is a one-line import change.

pub mod bench;
pub mod compress;
pub mod hash;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;

/// Drop-in replacement for `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `proptest::prelude::prop` module alias, so
    /// `prop::collection::vec(..)` keeps working verbatim.
    pub mod prop {
        pub use crate::prop::collection;
    }
}
