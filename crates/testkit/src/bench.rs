//! A plain timing harness for `harness = false` benches; replaces
//! `criterion` with a few hundred lines of std-only code.
//!
//! Usage mirrors the criterion shape loosely:
//!
//! ```no_run
//! use kishu_testkit::bench::Bench;
//!
//! fn main() {
//!     let mut b = Bench::from_env("core_ops");
//!     b.group("hashes", |g| {
//!         let data = vec![0u8; 4096];
//!         g.bench("xxh64/4096", || data.iter().map(|x| *x as u64).sum::<u64>());
//!     });
//!     b.finish();
//! }
//! ```
//!
//! Each benchmark is auto-calibrated to a target measurement time, run for
//! several samples, and reported as median ns/op with min..max spread.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches don't need to reach into `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall-clock time per benchmark measurement phase.
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// Samples taken per benchmark (median is reported).
const SAMPLES: usize = 7;

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// Top-level harness; collects measurements and prints a summary table.
pub struct Bench {
    suite: String,
    filter: Option<String>,
    results: Vec<Measurement>,
    quick: bool,
}

impl Bench {
    /// Build a harness, reading an optional substring filter from argv
    /// (matching `cargo bench -- <filter>`) and `KISHU_BENCH_QUICK=1` for
    /// a fast smoke-run mode (used by CI to keep benches compiling AND
    /// executing without minutes of measurement).
    pub fn from_env(suite: &str) -> Bench {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        let quick = std::env::var("KISHU_BENCH_QUICK").is_ok_and(|v| v == "1");
        eprintln!("[bench] suite {suite} starting{}", if quick { " (quick mode)" } else { "" });
        Bench {
            suite: suite.to_string(),
            filter,
            results: Vec::new(),
            quick,
        }
    }

    /// Run a named group of benchmarks.
    pub fn group(&mut self, name: &str, f: impl FnOnce(&mut Group<'_>)) {
        let mut g = Group { bench: self, name: name.to_string() };
        f(&mut g);
    }

    fn record(&mut self, m: Measurement) {
        eprintln!(
            "[bench] {:<40} {:>12.1} ns/op  ({:.1} .. {:.1}, {} iters/sample)",
            m.id, m.median_ns, m.min_ns, m.max_ns, m.iters
        );
        self.results.push(m);
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Print the summary table. Call at the end of `main`.
    pub fn finish(self) {
        eprintln!("[bench] suite {} finished: {} benchmarks", self.suite, self.results.len());
        println!("suite,benchmark,median_ns,min_ns,max_ns,iters");
        for m in &self.results {
            println!(
                "{},{},{:.1},{:.1},{:.1},{}",
                self.suite, m.id, m.median_ns, m.min_ns, m.max_ns, m.iters
            );
        }
    }
}

/// A named group; `bench` runs one closure-benchmark inside it.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
}

impl Group<'_> {
    /// Measure `f`, whose return value is black-boxed to keep the work
    /// alive through the optimizer.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let id = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.bench.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }

        let (target, samples) = if self.bench.quick {
            (Duration::from_millis(5), 2)
        } else {
            (TARGET_MEASURE, SAMPLES)
        };

        // Calibrate: double iteration counts until one batch takes at
        // least a few percent of the target, then scale up.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target / 20 || iters >= 1 << 40 {
                break (elapsed.as_nanos() as f64 / iters as f64).max(0.1);
            }
            iters *= 2;
        };
        let iters = ((target.as_nanos() as f64 / per_iter_ns).ceil() as u64).max(1);

        let mut per_sample_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            per_sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_sample_ns.sort_by(|a, b| a.total_cmp(b));

        let m = Measurement {
            id,
            median_ns: per_sample_ns[per_sample_ns.len() / 2],
            min_ns: per_sample_ns[0],
            max_ns: *per_sample_ns.last().expect("samples nonempty"),
            iters,
        };
        self.bench.record(m);
    }

    /// Measure `routine` on a fresh `setup()` input each sample, timing
    /// only the routine (the criterion `iter_batched`/`PerIteration`
    /// shape). For operations expensive enough that one run per sample is
    /// a meaningful measurement — restores, checkpoints, whole cells.
    pub fn bench_batched<T, O>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> O,
    ) {
        let id = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.bench.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.bench.quick { 2 } else { 10 };
        let mut per_sample_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            per_sample_ns.push(start.elapsed().as_nanos() as f64);
            std_black_box(out);
        }
        per_sample_ns.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            id,
            median_ns: per_sample_ns[per_sample_ns.len() / 2],
            min_ns: per_sample_ns[0],
            max_ns: *per_sample_ns.last().expect("samples nonempty"),
            iters: 1,
        };
        self.bench.record(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        let mut b = Bench {
            suite: "selftest".into(),
            filter: None,
            results: Vec::new(),
            quick: true,
        };
        b.group("g", |g| {
            g.bench("sum", || (0..100u64).sum::<u64>());
        });
        assert_eq!(b.results().len(), 1);
        let m = &b.results()[0];
        assert_eq!(m.id, "g/sum");
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = Bench {
            suite: "selftest".into(),
            filter: Some("wanted".into()),
            results: Vec::new(),
            quick: true,
        };
        b.group("g", |g| {
            g.bench("unrelated", || 1u32);
            g.bench("wanted_one", || 2u32);
        });
        assert_eq!(b.results().len(), 1);
        assert_eq!(b.results()[0].id, "g/wanted_one");
    }
}
