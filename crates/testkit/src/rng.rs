//! Deterministic PRNG: xoshiro256++ state seeded via splitmix64.
//!
//! Not cryptographic — this exists so workloads, sweeps, and the property
//! harness are reproducible from a single `u64` seed with no external
//! crates. The generators are the reference algorithms from Blackman &
//! Vigna, "Scrambled linear pseudorandom number generators".

/// Advance a splitmix64 state and return the next output. Used for seeding
/// and anywhere a tiny stateless mixer is enough.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator. All draws derive deterministically from the
/// seed passed to [`Rng::seed_from_u64`].
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the full 256-bit state from one `u64` via splitmix64, per the
    /// xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is the one fixed point; splitmix64 cannot emit
        // four zeros in a row, but guard anyway.
        if s == [0; 4] {
            Rng { s: [1, 2, 3, 4] }
        } else {
            Rng { s }
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open range; panics on an empty range.
    pub fn random_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard-normal draw (Box–Muller; one of the pair is discarded to
    /// keep the generator stateless beyond `s`).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.random_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// Split off an independent generator seeded from this one's stream.
    ///
    /// Hands each subsystem (e.g. one fault-injecting store wrapper per
    /// store) its own deterministic substream, so adding draws in one
    /// component cannot perturb the decisions of another.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// The seed a deterministic suite should run with: `KISHU_TESTKIT_SEED`
/// from the environment when set (and parsable), else `default`.
///
/// This is the same variable the property harness prints on failure, so a
/// failing fault-injection run can be replayed exactly by exporting the
/// echoed seed.
pub fn env_seed(default: u64) -> u64 {
    match std::env::var("KISHU_TESTKIT_SEED") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| {
            eprintln!("[kishu-testkit] ignoring unparsable KISHU_TESTKIT_SEED={s:?}");
            default
        }),
        Err(_) => default,
    }
}

/// Types drawable uniformly from a `Range` by [`Rng::random_range`].
pub trait SampleRange: Sized {
    /// Draw one value from `range`.
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut a = Rng::seed_from_u64(21);
        let mut b = Rng::seed_from_u64(21);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..50 {
            assert_eq!(fa.next_u64(), fb.next_u64(), "forks of equal parents agree");
        }
        // Draining the fork does not perturb the parent stream.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn env_seed_falls_back_to_default() {
        // The test runner may or may not have the variable set; only the
        // unset path is asserted hermetically via a scoped remove.
        std::env::remove_var("KISHU_TESTKIT_SEED");
        assert_eq!(env_seed(77), 77);
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
