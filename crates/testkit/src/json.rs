//! Minimal JSON: a value enum, a serializer (compact and pretty), and a
//! recursive-descent parser. Replaces `serde_json` for checkpoint-graph
//! persistence and benchmark report emission.
//!
//! Design notes:
//!
//! * Objects preserve insertion order (`Vec<(String, Json)>`), so emitted
//!   bytes are deterministic — which is what lets the checkpoint blob
//!   format be pinned by a golden-bytes test.
//! * Numbers distinguish integers ([`Json::Int`], full `i64` precision —
//!   blob ids and timestamps must not round-trip through `f64`) from
//!   floats ([`Json::Float`]). Floats always serialize with a `.` or an
//!   exponent so the distinction survives a round trip.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (no fraction/exponent in the source text).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object, in insertion order.
    Object(Vec<(String, Json)>),
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64` (either number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact serialization.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => out.push_str(&format_f64(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, fields.len(), '{', '}', |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Parse from raw bytes (must be UTF-8).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
            offset: e.valid_up_to(),
            msg: "input is not valid UTF-8".into(),
        })?;
        Json::parse(text)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

/// Serialize a float so it always reads back as a float (never bare `1`).
fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional degradation.
        return "null".to_string();
    }
    let s = v.to_string();
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        } else {
            // Integers overflowing i64 degrade to float rather than failing.
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err(format!("invalid number '{text}'"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Int(0)),
            ("-42", Json::Int(-42)),
            ("9223372036854775807", Json::Int(i64::MAX)),
            ("1.5", Json::Float(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).expect(text), value);
            assert_eq!(Json::parse(&value.dump()).expect("reparse"), value);
        }
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let v = Json::Float(3.0);
        assert_eq!(v.dump(), "3.0");
        assert_eq!(Json::parse(&v.dump()).expect("parses"), v);
        let e = Json::Float(1e300);
        assert_eq!(Json::parse(&e.dump()).expect("parses"), e);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj(vec![
            ("name", Json::Str("kishu".into())),
            (
                "versions",
                Json::Array(vec![Json::Int(1), Json::Int(2), Json::Null]),
            ),
            (
                "meta",
                Json::obj(vec![("empty_list", Json::Array(vec![])), ("ok", Json::Bool(true))]),
            ),
        ]);
        for text in [v.dump(), v.pretty()] {
            assert_eq!(Json::parse(&text).expect("parses"), v);
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.dump(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote:\" slash:\\ newline:\n tab:\t nul:\u{1} unicode:héllo 🦀";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.dump()).expect("parses"), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""Aé🦀""#).expect("parses"),
            Json::Str("Aé🦀".into())
        );
    }

    #[test]
    fn errors_carry_position() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "[1 2]"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.offset >= 4, "offset points into the input: {err:?}");
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![
            ("n", Json::Int(7)),
            ("f", Json::Float(0.5)),
            ("s", Json::Str("x".into())),
            ("a", Json::Array(vec![Json::Int(1)])),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_array).map(|a| a.len()), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn pretty_output_shape() {
        let v = Json::obj(vec![("a", Json::Array(vec![Json::Int(1), Json::Int(2)]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }
}
