//! A minimal property-testing harness with a `proptest`-compatible-enough
//! surface that the workspace's suites port with a one-line import change.
//!
//! ## How it works
//!
//! Strategies are *deterministic functions of a draw stream*: every random
//! decision a generator makes is one `u64` pulled from a [`Gen`]. In record
//! mode the draws come from a seeded [`Rng`](crate::rng::Rng) and are
//! written to a tape; in replay mode they come back off a tape (zeros once
//! the tape runs out). That single indirection buys universal, greedy
//! input shrinking for free: when a case fails, the runner mutates the
//! recorded tape — deleting chunks, zeroing entries, halving values — and
//! replays generation, keeping any mutation that still fails. Smaller
//! draws mean structurally smaller inputs (shorter vectors, first
//! `prop_oneof` arms, smaller scalars), so the minimized tape decodes to a
//! minimized test input, across arbitrary combinator stacks, with no
//! per-strategy shrink code.
//!
//! Failures report the reproducing seed; set `KISHU_TESTKIT_SEED=<seed>`
//! to make case 0 of the next run replay exactly the failing case.

use std::cell::Cell as StdCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::rng::Rng;

// ---------------------------------------------------------------------------
// Draw stream
// ---------------------------------------------------------------------------

/// The draw stream handed to strategies. See the module docs.
pub struct Gen {
    rng: Option<Rng>,
    tape: Vec<u64>,
    pos: usize,
    rejected: bool,
    args: Vec<(&'static str, String)>,
}

impl Gen {
    fn record(seed: u64) -> Gen {
        Gen {
            rng: Some(Rng::seed_from_u64(seed)),
            tape: Vec::new(),
            pos: 0,
            rejected: false,
            args: Vec::new(),
        }
    }

    fn replay(tape: Vec<u64>) -> Gen {
        Gen {
            rng: None,
            tape,
            pos: 0,
            rejected: false,
            args: Vec::new(),
        }
    }

    /// Pull the next raw draw.
    pub fn draw(&mut self) -> u64 {
        match &mut self.rng {
            Some(rng) => {
                let v = rng.next_u64();
                self.tape.push(v);
                v
            }
            None => {
                let v = self.tape.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn draw_unit(&mut self) -> f64 {
        (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Mark the case as discarded (a filter could not be satisfied).
    pub fn reject(&mut self) {
        self.rejected = true;
    }

    /// Whether the case has been discarded.
    pub fn is_rejected(&self) -> bool {
        self.rejected
    }

    /// Record a named argument's `Debug` rendering, for failure reports.
    pub fn note_arg<T: fmt::Debug>(&mut self, name: &'static str, value: &T) {
        self.args.push((name, format!("{value:#?}")));
    }

    fn format_args(&self) -> String {
        if self.args.is_empty() {
            return "    (no arguments recorded)".to_string();
        }
        self.args
            .iter()
            .map(|(n, v)| format!("    {n} = {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

// ---------------------------------------------------------------------------
// Errors, results, configuration
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input was discarded (unsatisfiable filter); not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A discard with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; mirrors the `proptest` fields the suites use.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Budget of candidate replays during shrinking.
    pub max_shrink_iters: u32,
    /// Cap on discarded cases before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 2048,
            max_global_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    /// Default configuration with a specific case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of test inputs. Combinators mirror `proptest`'s names.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produce one value from the draw stream.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (retrying a bounded number of times,
    /// then rejecting the whole case).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Build recursive structures: `branch` receives a strategy for the
    /// substructure and returns the composite strategy. `_desired_size`
    /// and `_expected_branch` are accepted for source compatibility; depth
    /// alone bounds recursion here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            inner: Rc::new(RecursiveInner {
                base: self.boxed(),
                branch: Box::new(move |b| branch(b).boxed()),
                depth,
            }),
        }
    }

    /// Type-erase behind a cheap clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        self.0.generate(g)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, g: &mut Gen) -> U {
        (self.f)(self.inner.generate(g))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> S::Value {
        let mut v = self.inner.generate(g);
        for _ in 0..16 {
            if (self.pred)(&v) {
                return v;
            }
            v = self.inner.generate(g);
        }
        if !(self.pred)(&v) {
            let _ = self.reason;
            g.reject();
        }
        v
    }
}

struct RecursiveInner<T> {
    base: BoxedStrategy<T>,
    branch: Box<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    inner: Rc<RecursiveInner<T>>,
}

struct DepthBounded<T> {
    inner: Rc<RecursiveInner<T>>,
    remaining: u32,
}

impl<T: fmt::Debug + 'static> Strategy for DepthBounded<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        // Draw 0 (the shrinking direction) stops recursion immediately.
        if self.remaining == 0 || g.draw().is_multiple_of(4) {
            self.inner.base.generate(g)
        } else {
            let sub = DepthBounded {
                inner: Rc::clone(&self.inner),
                remaining: self.remaining - 1,
            }
            .boxed();
            (self.inner.branch)(sub).generate(g)
        }
    }
}

impl<T: fmt::Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        DepthBounded {
            inner: Rc::clone(&self.inner),
            remaining: self.inner.depth,
        }
        .generate(g)
    }
}

/// Weighted choice between strategies of one value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    /// New choice; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(
            arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
            "prop_oneof! needs at least one arm with nonzero weight"
        );
        OneOf { arms }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = g.draw() % total;
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(g);
            }
            pick -= *w as u64;
        }
        unreachable!("pick < total by construction")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy, via [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draw one arbitrary value.
    fn arbitrary(g: &mut Gen) -> Self;
}

/// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> Self {
                g.draw() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.draw() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(g: &mut Gen) -> Self {
        // Random bit patterns: exercises the full float space (subnormals,
        // huge magnitudes, the occasional NaN/inf — filter if unwanted).
        f64::from_bits(g.draw())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(g: &mut Gen) -> Self {
        f32::from_bits(g.draw() as u32)
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(g: &mut Gen) -> Self {
        (A::arbitrary(g), B::arbitrary(g))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(g: &mut Gen) -> Self {
        (A::arbitrary(g), B::arbitrary(g), C::arbitrary(g))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((g.draw() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + g.draw_unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(g),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// String literals act as generators for a small regex subset:
/// concatenations of `[class]` / literal atoms with `{m}`, `{m,n}`, `?`,
/// `*`, `+` quantifiers — e.g. `"[a-z_][a-z0-9_]{0,6}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, g: &mut Gen) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &elements {
            let n = if lo == hi {
                *lo
            } else {
                lo + (g.draw() % (hi - lo + 1) as u64) as usize
            };
            for _ in 0..n {
                let idx = (g.draw() % chars.len() as u64) as usize;
                out.push(chars[idx]);
            }
        }
        out
    }
}

/// Parse the regex subset into `(alphabet, min, max)` elements.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                assert!(
                    !class.is_empty() && class[0] != '^',
                    "unsupported character class in pattern {pattern:?}"
                );
                let mut set = Vec::new();
                let mut j = 0;
                while j < class.len() {
                    if j + 2 < class.len() && class[j + 1] == '-' {
                        let (a, b) = (class[j] as u32, class[j + 2] as u32);
                        assert!(a <= b, "inverted range in pattern {pattern:?}");
                        set.extend((a..=b).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(class[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '{' | '}' | ']' | '?' | '*' | '+' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex construct '{}' in pattern {pattern:?}", chars[i])
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("quantifier count");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted quantifier in pattern {pattern:?}");
        elements.push((alphabet, lo, hi));
    }
    elements
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{fmt, Gen, Strategy};

    /// Element-count bounds for [`vec`]; converts from the range shapes
    /// the suites use (`1..60`, `0..=5`, exact `n`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + if span > 1 { (g.draw() % span) as usize } else { 0 };
            (0..n).map(|_| self.element.generate(g)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner and shrinker
// ---------------------------------------------------------------------------

fn base_seed_for(name: &str) -> u64 {
    if let Ok(s) = std::env::var("KISHU_TESTKIT_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return seed;
        }
        eprintln!("[kishu-testkit] ignoring unparsable KISHU_TESTKIT_SEED={s:?}");
    }
    // Deterministic per property name, so suites are reproducible run to
    // run but don't all explore the same draw sequences.
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run one attempt, converting panics into failures so `expect`/`assert!`
/// inside properties still shrink and report seeds.
fn run_one<F>(f: &mut F, g: &mut Gen) -> TestCaseResult
where
    F: FnMut(&mut Gen) -> TestCaseResult,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(g)));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test case panicked".to_string());
            Err(TestCaseError::fail(format!("panic: {msg}")))
        }
    }
}

/// Execute a property until `config.cases` cases pass, shrinking and
/// reporting the first failure. This is the engine behind the
/// [`proptest!`](crate::proptest) macro.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut Gen) -> TestCaseResult,
{
    let base_seed = base_seed_for(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let seed = base_seed.wrapping_add(attempt.wrapping_mul(0x9E3779B97F4A7C15));
        attempt += 1;
        let mut g = Gen::record(seed);
        match run_one(&mut f, &mut g) {
            Ok(()) if !g.is_rejected() => passed += 1,
            Ok(()) | Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "[kishu-testkit] property '{name}': too many rejected cases \
                     ({rejected}); loosen the filters"
                );
            }
            Err(TestCaseError::Fail(first_msg)) => {
                let tape = shrink(g.tape, &mut f, config.max_shrink_iters);
                // Replay the minimal tape once more to capture the final
                // arguments and message.
                let mut g = Gen::replay(tape);
                let msg = match run_one(&mut f, &mut g) {
                    Err(TestCaseError::Fail(m)) => m,
                    _ => first_msg, // shrinking artifact; fall back
                };
                panic!(
                    "[kishu-testkit] property '{name}' failed after {passed} passing case(s)\n\
                     minimal failing input:\n{args}\n\
                     {msg}\n\
                     reproduce with: KISHU_TESTKIT_SEED={seed} cargo test {name}",
                    args = g.format_args(),
                );
            }
        }
    }
}

/// Does this tape still fail? (Rejections and passes both count as "no".)
fn tape_fails<F>(tape: &[u64], f: &mut F) -> bool
where
    F: FnMut(&mut Gen) -> TestCaseResult,
{
    let mut g = Gen::replay(tape.to_vec());
    matches!(run_one(f, &mut g), Err(TestCaseError::Fail(_))) && !g.is_rejected()
}

/// Greedy tape shrinking: chunk deletion (delta-debugging style), zeroing,
/// then halving, repeated to a fixpoint or until the budget runs out.
fn shrink<F>(tape: Vec<u64>, f: &mut F, budget: u32) -> Vec<u64>
where
    F: FnMut(&mut Gen) -> TestCaseResult,
{
    let mut best = tape;
    let mut spent = 0u32;
    let try_candidate = |cand: Vec<u64>, best: &mut Vec<u64>, f: &mut F, spent: &mut u32| {
        *spent += 1;
        if tape_fails(&cand, f) {
            *best = cand;
            true
        } else {
            false
        }
    };
    loop {
        let mut improved = false;
        // Pass 1: delete chunks, largest first.
        let mut chunk = (best.len() / 2).max(1);
        while chunk >= 1 && spent < budget {
            let mut start = 0;
            while start < best.len() && spent < budget {
                let mut cand = best.clone();
                cand.drain(start..(start + chunk).min(cand.len()));
                if try_candidate(cand, &mut best, f, &mut spent) {
                    improved = true;
                    // best shrank; retry the same offset
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Pass 2: zero entries (the strongest per-value simplification).
        for i in 0..best.len() {
            if spent >= budget {
                break;
            }
            if best[i] != 0 {
                let mut cand = best.clone();
                cand[i] = 0;
                improved |= try_candidate(cand, &mut best, f, &mut spent);
            }
        }
        // Pass 3: minimize entries by greedy binary descent — subtract
        // decreasing powers of two, keeping any candidate that still
        // fails. Strategies map draws through `value = draw % span`, so
        // the predicate over the raw draw is periodic, not monotone;
        // bisection would stall, but monotone descent homes in on exact
        // failure boundaries (e.g. the smallest failing scalar).
        for i in 0..best.len() {
            if spent >= budget {
                break;
            }
            for k in (0..64).rev() {
                if spent >= budget {
                    break;
                }
                let step = 1u64 << k;
                if best[i] >= step {
                    let mut cand = best.clone();
                    cand[i] -= step;
                    improved |= try_candidate(cand, &mut best, f, &mut spent);
                }
            }
        }
        if !improved || spent >= budget {
            return best;
        }
    }
}

// Thread-local used only by the harness's own meta-tests below.
thread_local! {
    static META_COUNTER: StdCell<u64> = const { StdCell::new(0) };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// `proptest!`-style test block: an optional
/// `#![proptest_config(..)]` header, then `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::prop::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::prop::run_cases(&__config, stringify!($name), |__g| {
                    $(
                        let $arg = $crate::prop::Strategy::generate(&($strat), __g);
                        __g.note_arg(stringify!($arg), &$arg);
                    )+
                    if __g.is_rejected() {
                        return ::std::result::Result::Err(
                            $crate::prop::TestCaseError::reject("generator filter unsatisfied"),
                        );
                    }
                    #[allow(unused_mut)]
                    let mut __body = move || -> $crate::prop::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )*
    };
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::prop::OneOf::new(vec![
            $(($weight as u32, $crate::prop::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::OneOf::new(vec![
            $((1u32, $crate::prop::Strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` that fails the property (with shrinking) instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::prop::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
            __l, __r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: {:?}\n{}",
            __l, format!($($fmt)*)
        );
    }};
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn record_then_replay_is_identical() {
        let strat = collection::vec(0usize..100, 1..20);
        let mut g1 = Gen::record(42);
        let v1 = strat.generate(&mut g1);
        let mut g2 = Gen::replay(g1.tape.clone());
        let v2 = strat.generate(&mut g2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn empty_tape_generates_minimal_values() {
        let mut g = Gen::replay(Vec::new());
        assert_eq!((3usize..10).generate(&mut g), 3);
        assert_eq!(collection::vec(0u8..9, 2..7).generate(&mut g).len(), 2);
        let choice = prop_oneof![Just(1u8), Just(2u8), Just(3u8)].generate(&mut g);
        assert_eq!(choice, 1, "draw 0 picks the first arm");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::record(7);
        for _ in 0..500 {
            let v = (10i64..20).generate(&mut g);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.0).generate(&mut g);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut g = Gen::record(3);
        for _ in 0..200 {
            let s = "[a-z_][a-z0-9_]{0,6}".generate(&mut g);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let first = s.chars().next().expect("nonempty");
            assert!(first.is_ascii_lowercase() || first == '_', "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
            let printable = "[ -~]{0,12}".generate(&mut g);
            assert!(printable.len() <= 12);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)), "{printable:?}");
        }
    }

    #[test]
    fn filter_rejects_unsatisfiable_predicates() {
        let strat = (0u8..10).prop_filter("impossible", |v| *v > 100);
        let mut g = Gen::record(1);
        let _ = strat.generate(&mut g);
        assert!(g.is_rejected());
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut g = Gen::record(5);
        let hits = (0..1000).filter(|_| strat.generate(&mut g)).count();
        assert!((800..1000).contains(&hits), "{hits} of 1000");
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut g = Gen::record(11);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut g);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursive arm is actually exercised");
    }

    #[test]
    fn failing_property_shrinks_to_the_boundary() {
        // Property: all values < 500. Failing inputs are 500..=999;
        // shrinking should land exactly on the boundary value 500.
        let config = ProptestConfig::with_cases(200);
        let result = std::panic::catch_unwind(|| {
            run_cases(&config, "meta_boundary", |g| {
                let v = (0u32..1000).generate(g);
                g.note_arg("v", &v);
                if v >= 500 {
                    return Err(TestCaseError::fail(format!("{v} too big")));
                }
                Ok(())
            });
        });
        let msg = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic message is a String"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("v = 500"), "shrunk to the boundary:\n{msg}");
        assert!(msg.contains("KISHU_TESTKIT_SEED="), "seed is reported:\n{msg}");
    }

    #[test]
    fn shrinking_minimizes_vectors() {
        // Property: no vector contains a value >= 50. The minimal failing
        // input is the one-element vector [50].
        let config = ProptestConfig::with_cases(100);
        let result = std::panic::catch_unwind(|| {
            run_cases(&config, "meta_vec_shrink", |g| {
                let v = collection::vec(0u8..100, 1..20).generate(g);
                g.note_arg("v", &v);
                if v.iter().any(|x| *x >= 50) {
                    return Err(TestCaseError::fail("contains a big element"));
                }
                Ok(())
            });
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().expect("String"),
            Ok(()) => panic!("property should have failed"),
        };
        // The vec prints in {:#?} multiline form: "[\n        50,\n    ]".
        let ones: Vec<&str> = msg.matches(char::is_numeric).collect();
        assert!(!ones.is_empty());
        assert!(
            msg.contains("50") && !msg.contains("51"),
            "minimal witness is exactly the boundary:\n{msg}"
        );
    }

    #[test]
    fn panics_inside_properties_are_reported_with_seed() {
        let config = ProptestConfig::with_cases(10);
        let result = std::panic::catch_unwind(|| {
            run_cases(&config, "meta_panics", |g| {
                let v = (0u32..10).generate(g);
                g.note_arg("v", &v);
                assert!(v > 100, "plain assert fires");
                Ok(())
            });
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().expect("String"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("panic:"), "{msg}");
        assert!(msg.contains("KISHU_TESTKIT_SEED="), "{msg}");
    }

    #[test]
    fn passing_properties_run_the_configured_case_count() {
        META_COUNTER.with(|c| c.set(0));
        run_cases(&ProptestConfig::with_cases(37), "meta_counts", |g| {
            let _ = (0u8..10).generate(g);
            META_COUNTER.with(|c| c.set(c.get() + 1));
            Ok(())
        });
        assert_eq!(META_COUNTER.with(|c| c.get()), 37);
    }

    // The macro surface itself, exactly as the ported suites use it.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_surface_works(
            xs in collection::vec(0usize..50, 1..10),
            flag in any::<bool>(),
            label in "[a-z]{1,5}",
        ) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(label.len(), 0, "pattern has min length 1: {:?}", label);
        }
    }

    proptest! {
        #[test]
        fn macro_defaults_to_256_cases(v in any::<u64>()) {
            prop_assert_eq!(v, v);
        }
    }
}
