//! XXH64 — the extremely fast non-cryptographic hash the paper cites for
//! array-likes (§6.2), implemented in-repo per the workspace dependency
//! policy. Reference: <https://github.com/Cyan4973/xxHash> (XXH64 spec).
//!
//! Lives in the testkit (rather than kishu-core, where it started) because
//! the storage layer also needs it: the checkpoint write pipeline keys its
//! content-addressed dedup index by XXH64 of the sealed payload, and the
//! fault injector derives per-operation fault decisions from a content key
//! so they are independent of thread interleaving. `kishu::xxh64`
//! re-exports everything here, so existing imports keep working.

const PRIME1: u64 = 0x9E3779B185EBCA87;
const PRIME2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME3: u64 = 0x165667B19E3779F9;
const PRIME4: u64 = 0x85EBCA77C2B2AE63;
const PRIME5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME2))
        .rotate_left(31)
        .wrapping_mul(PRIME1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(PRIME1).wrapping_add(PRIME4)
}

#[inline]
fn read_u64(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(bytes: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"))
}

/// XXH64 of `bytes` with the given `seed`.
pub fn xxh64(bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len();
    let mut h: u64;
    let mut i = 0usize;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        while i + 32 <= len {
            v1 = round(v1, read_u64(bytes, i));
            v2 = round(v2, read_u64(bytes, i + 8));
            v3 = round(v3, read_u64(bytes, i + 16));
            v4 = round(v4, read_u64(bytes, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME5);
    }
    h = h.wrapping_add(len as u64);
    while i + 8 <= len {
        h = (h ^ round(0, read_u64(bytes, i)))
            .rotate_left(27)
            .wrapping_mul(PRIME1)
            .wrapping_add(PRIME4);
        i += 8;
    }
    if i + 4 <= len {
        h = (h ^ (read_u32(bytes, i) as u64).wrapping_mul(PRIME1))
            .rotate_left(23)
            .wrapping_mul(PRIME2)
            .wrapping_add(PRIME3);
        i += 4;
    }
    while i < len {
        h = (h ^ (bytes[i] as u64).wrapping_mul(PRIME5))
            .rotate_left(11)
            .wrapping_mul(PRIME1);
        i += 1;
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 32;
    h
}

/// XXH64 over an `f64` slice — the array fast path used by VarGraph nodes.
///
/// Streams 32-byte stripes (4 floats) straight from the values with **no
/// intermediate byte buffer**: on a little-endian stream, reading a `u64`
/// from an `f64`'s bytes is exactly `f64::to_bits`, so the float slice can
/// be consumed as the XXH64 lane inputs directly. This is what makes the
/// fast path actually fast on megabyte arrays (a buffer copy would cost
/// more than the hash itself).
pub fn xxh64_f64s(values: &[f64], seed: u64) -> u64 {
    let len = values.len() * 8;
    let mut h: u64;
    let mut chunks = values.chunks_exact(4);
    if values.len() >= 4 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        for c in chunks.by_ref() {
            v1 = round(v1, c[0].to_bits());
            v2 = round(v2, c[1].to_bits());
            v3 = round(v3, c[2].to_bits());
            v4 = round(v4, c[3].to_bits());
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME5);
    }
    h = h.wrapping_add(len as u64);
    // The tail is always whole 8-byte lanes (f64s), never 4- or 1-byte
    // fragments.
    for v in chunks.remainder() {
        h = (h ^ round(0, v.to_bits()))
            .rotate_left(27)
            .wrapping_mul(PRIME1)
            .wrapping_add(PRIME4);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 32;
    h
}

/// XXH64 of a string.
pub fn xxh64_str(s: &str, seed: u64) -> u64 {
    xxh64(s.as_bytes(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Canonical XXH64 test vectors.
        assert_eq!(xxh64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(xxh64(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC2CF5AD770999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xFBCEA83C8A378BF1
        );
    }

    #[test]
    fn seeds_change_the_hash() {
        assert_ne!(xxh64(b"data", 0), xxh64(b"data", 1));
    }

    #[test]
    fn all_length_branches_covered() {
        // Exercise <4, 4..8, 8..32, and >=32 byte paths.
        for len in [0usize, 3, 5, 9, 31, 32, 33, 100] {
            let data: Vec<u8> = (0..len as u8).collect();
            let h1 = xxh64(&data, 7);
            let h2 = xxh64(&data, 7);
            assert_eq!(h1, h2);
            if len > 0 {
                let mut flipped = data.clone();
                flipped[len / 2] ^= 0x80;
                assert_ne!(xxh64(&flipped, 7), h1, "len {len}");
            }
        }
    }

    #[test]
    fn f64_hash_detects_single_element_change() {
        let mut values = vec![0.5; 1000];
        let base = xxh64_f64s(&values, 0);
        values[777] = 0.5000001;
        assert_ne!(xxh64_f64s(&values, 0), base);
    }
}

#[cfg(test)]
mod f64_equivalence {
    use super::*;
    use crate::prelude::*;

    proptest! {
        /// The streaming f64 variant must agree exactly with hashing the
        /// little-endian byte serialization (the reference definition).
        #[test]
        fn streaming_matches_byte_reference(
            values in prop::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 0..64),
            seed in any::<u64>(),
        ) {
            let mut bytes = Vec::with_capacity(values.len() * 8);
            for v in &values {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            prop_assert_eq!(xxh64_f64s(&values, seed), xxh64(&bytes, seed));
        }
    }
}
