//! A small `std::thread` worker pool for fan-out/fan-in batches.
//!
//! Both checkpoint pipelines ride on this pool: the write side fans
//! co-variable serialization and CRC sealing out over OS threads, and the
//! checkout read side fans out CRC verification and the simulated decode
//! charge of fetched payloads. Per the workspace dependency policy the pool
//! lives here rather than in a registry crate (`rayon`, `threadpool`).
//!
//! The design is deliberately minimal: [`run`] executes one *batch* of
//! jobs on scoped threads and returns their results **in job order**, so
//! callers get deterministic output regardless of which worker ran which
//! job or in what order they finished. Scoped threads mean jobs may borrow
//! from the caller's stack (the session hands out `&Heap` references), and
//! the batch fully joins before `run` returns — no detached state, no
//! channels to drain, and a panicking job propagates to the caller like it
//! would have serially.
//!
//! Jobs are pulled from a shared cursor (work stealing at item
//! granularity), so a batch of mixed-size jobs load-balances without any
//! up-front partitioning.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Index of the pool worker this thread is, when it is one. Set once at
    /// worker-thread start by [`run`]; `None` on every other thread
    /// (including the caller running an inline batch).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The 0-based index of the pool worker executing the current thread, or
/// `None` when called off a pool worker (the session thread, an inline
/// `workers <= 1` batch, or any unrelated thread). Tracing layers use this
/// for thread attribution of spans recorded inside fan-out jobs.
pub fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// Run every job in `jobs`, using up to `workers` OS threads, and return
/// the results in job order.
///
/// * `workers <= 1` (or a batch of one job) runs everything inline on the
///   calling thread — byte-for-byte the serial path, with no thread spawn.
/// * Otherwise `min(workers, jobs.len())` scoped threads are spawned; each
///   repeatedly claims the next unclaimed job index and stores its result
///   into that slot.
///
/// A panicking job aborts the batch: remaining jobs may or may not run, and
/// the panic resurfaces on the calling thread when the scope joins.
pub fn run<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|w| {
                let (slots, results, cursor) = (&slots, &results, &cursor);
                scope.spawn(move || {
                    WORKER_INDEX.with(|idx| idx.set(Some(w)));
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = slots[i]
                            .lock()
                            .expect("pool job slot poisoned")
                            .take()
                            .expect("pool job claimed twice");
                        let out = job();
                        *results[i].lock().expect("pool result slot poisoned") = Some(out);
                    }
                })
            })
            .collect();
        // Join explicitly so a job's panic resurfaces with its original
        // payload rather than the scope's generic "a scoped thread panicked".
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool result slot poisoned")
                .expect("pool job produced no result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4, 9] {
            let jobs: Vec<_> = (0..37u64).map(|i| move || i * i).collect();
            let out = run(workers, jobs);
            assert_eq!(out, (0..37u64).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_batches_run_inline() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run(8, none).is_empty());
        let tid = std::thread::current().id();
        let out = run(8, vec![move || std::thread::current().id() == tid]);
        assert_eq!(out, vec![true], "a one-job batch must not spawn");
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = &counter;
                move || c.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let mut out = run(4, jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>(), "each job saw a distinct count");
    }

    #[test]
    fn jobs_can_borrow_from_the_caller() {
        // The whole point of scoped threads: the session lends &Heap.
        let data: Vec<u64> = (0..64).collect();
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let d = &data;
                move || d[i * 8..(i + 1) * 8].iter().sum::<u64>()
            })
            .collect();
        let out = run(3, jobs);
        assert_eq!(out.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn parallel_sleeps_overlap() {
        // Sanity that the pool actually runs jobs concurrently: 4 sleeps of
        // 30ms must complete well under the 120ms serial floor.
        let jobs: Vec<_> = (0..4)
            .map(|_| || std::thread::sleep(std::time::Duration::from_millis(30)))
            .collect();
        let start = std::time::Instant::now();
        run(4, jobs);
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "sleeps did not overlap: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn worker_index_is_visible_inside_jobs_and_nowhere_else() {
        assert_eq!(current_worker(), None, "caller thread is not a worker");
        // Inline path: jobs run on the caller, so no worker index.
        let inline = run(1, vec![current_worker, current_worker]);
        assert_eq!(inline, vec![None, None]);
        // Parallel path: every job sees Some(w) with w < worker count.
        let jobs: Vec<_> = (0..32).map(|_| current_worker).collect();
        let seen = run(4, jobs);
        assert!(
            seen.iter().all(|w| matches!(w, Some(w) if *w < 4)),
            "jobs off the pool saw no index: {seen:?}"
        );
        assert_eq!(current_worker(), None, "index must not leak to the caller");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_panics_propagate() {
        let jobs: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("boom")),
            Box::new(|| {}),
        ];
        run(2, jobs);
    }
}
