//! The simulated object heap.
//!
//! All notebook state lives here. Objects are allocated into slots (slot
//! indices are never reused, so an [`ObjId`] stays unambiguous for a whole
//! session even across garbage collections) and are backed by extents in the
//! paged address space. Every in-place mutation goes through
//! [`Heap::modify`], which dirties the touched pages and advances the
//! heap-wide mutation clock — giving both the OS-level baselines (dirty
//! pages) and Kishu's delta detector (addresses, structure) something
//! faithful to observe.

use std::collections::HashSet;

use crate::object::{ObjId, ObjKind};
use crate::pages::{Extent, PageAllocator};

/// One live object: its kind plus bookkeeping.
#[derive(Debug)]
struct Slot {
    kind: ObjKind,
    extent: Extent,
    mutated_at: u64,
}

/// Aggregate heap statistics (drives Table 2-style workload summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Number of live objects.
    pub live_objects: usize,
    /// Sum of live objects' shallow sizes in bytes.
    pub live_bytes: u64,
    /// Total objects ever allocated.
    pub total_allocated: u64,
}

/// The heap of a simulated notebook kernel process.
#[derive(Debug)]
pub struct Heap {
    slots: Vec<Option<Slot>>,
    allocator: PageAllocator,
    clock: u64,
    total_allocated: u64,
    next_token: u64,
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Fresh, empty heap (a just-started kernel).
    pub fn new() -> Self {
        Heap {
            slots: Vec::new(),
            allocator: PageAllocator::new(),
            clock: 0,
            total_allocated: 0,
            next_token: 1,
        }
    }

    /// Allocate a new object. Returns its handle; its simulated address is
    /// assigned by the page allocator and never changes unless the object's
    /// backing buffer outgrows its extent (mirroring CPython reallocating a
    /// list's element array).
    pub fn alloc(&mut self, kind: ObjKind) -> ObjId {
        // Allocators round requests up to size classes; the slack lets
        // small containers grow a little in place (as CPython lists do)
        // instead of relocating on the first append.
        let size = kind.shallow_size() as u64;
        let extent = self.allocator.alloc(size + (size / 8).clamp(8, 512));
        self.clock += 1;
        self.total_allocated += 1;
        let slot = Slot {
            kind,
            extent,
            mutated_at: self.clock,
        };
        self.slots.push(Some(slot));
        ObjId((self.slots.len() - 1) as u32)
    }

    /// Fresh token for generator identity.
    pub fn fresh_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn slot(&self, id: ObjId) -> &Slot {
        self.slots[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("use of collected object {id}"))
    }

    /// Whether the handle refers to a live (non-collected) object.
    pub fn is_live(&self, id: ObjId) -> bool {
        self.slots
            .get(id.index())
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// Read an object's kind. Panics on a collected handle (a caller bug:
    /// the interpreter and Kishu only retain handles rooted in the
    /// namespace).
    #[inline]
    pub fn kind(&self, id: ObjId) -> &ObjKind {
        &self.slot(id).kind
    }

    /// The object's simulated memory address (CPython `id()` analogue).
    #[inline]
    pub fn addr(&self, id: ObjId) -> u64 {
        self.slot(id).extent.addr
    }

    /// Mutation-clock value of the object's last in-place modification.
    pub fn mutated_at(&self, id: ObjId) -> u64 {
        self.slot(id).mutated_at
    }

    /// Current value of the heap-wide mutation clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Reference edges out of `id` (empty for leaves and opaque objects).
    pub fn children(&self, id: ObjId) -> Vec<ObjId> {
        self.slot(id).kind.children()
    }

    /// Mutate an object in place. Dirties the pages backing it, advances the
    /// mutation clock, and reallocates the backing extent if the object
    /// outgrew it (which changes the object's address — observable by
    /// VarGraph comparison, as the growth is a genuine update).
    pub fn modify<R>(&mut self, id: ObjId, f: impl FnOnce(&mut ObjKind) -> R) -> R {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.slots[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("mutation of collected object {id}"));
        let out = f(&mut slot.kind);
        slot.mutated_at = clock;
        let needed = slot.kind.shallow_size() as u64;
        if needed > slot.extent.len {
            let old = slot.extent;
            // Double to amortize repeated growth, as CPython's list does.
            let new_ext = self.allocator.alloc(needed.saturating_mul(2));
            self.allocator.free(old);
            let slot = self.slots[id.index()].as_mut().expect("slot just accessed");
            slot.extent = new_ext;
            // Pages shared with surviving objects must stay live.
            self.remark_live_pages();
        } else {
            let ext = slot.extent;
            self.allocator.touch(ext);
        }
        out
    }

    /// Replace an object's kind wholesale (used by checkout when restoring a
    /// co-variable's objects in place). Same dirty/realloc semantics as
    /// [`Self::modify`].
    pub fn replace(&mut self, id: ObjId, kind: ObjKind) {
        self.modify(id, |k| *k = kind);
    }

    /// All objects reachable from `root` by following reference edges,
    /// including `root` itself, in BFS order. Does not descend into opaque
    /// objects (they have no edges).
    pub fn reachable_from(&self, root: ObjId) -> Vec<ObjId> {
        let mut seen: HashSet<ObjId> = HashSet::new();
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(root);
        queue.push_back(root);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for child in self.children(id) {
                if seen.insert(child) {
                    queue.push_back(child);
                }
            }
        }
        order
    }

    /// All objects reachable from *any* of `roots`, each visited once, in
    /// BFS order from the roots jointly. One traversal with a shared seen
    /// set — callers checking a property over a whole root set (e.g. the
    /// checkpoint blocklist scan) must use this rather than unioning
    /// per-root [`Self::reachable_from`] calls, which revisits every shared
    /// substructure once per root that reaches it.
    pub fn reachable_from_all(&self, roots: &[ObjId]) -> Vec<ObjId> {
        let mut seen: HashSet<ObjId> = HashSet::new();
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for &root in roots {
            if seen.insert(root) {
                queue.push_back(root);
            }
        }
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for child in self.children(id) {
                if seen.insert(child) {
                    queue.push_back(child);
                }
            }
        }
        order
    }

    /// Sum of shallow sizes of everything reachable from the given roots
    /// (shared objects counted once).
    pub fn deep_size(&self, roots: impl IntoIterator<Item = ObjId>) -> u64 {
        let mut seen: HashSet<ObjId> = HashSet::new();
        let mut total = 0u64;
        for root in roots {
            for id in self.reachable_from(root) {
                if seen.insert(id) {
                    total += self.kind(id).shallow_size() as u64;
                }
            }
        }
        total
    }

    /// Mark-and-sweep garbage collection from the given roots. Returns the
    /// number of collected objects. Slot indices of collected objects are
    /// *not* reused, so stale `ObjId`s can never silently alias a new object.
    pub fn collect_garbage(&mut self, roots: impl IntoIterator<Item = ObjId>) -> usize {
        let mut live: HashSet<ObjId> = HashSet::new();
        let mut queue: Vec<ObjId> = Vec::new();
        for r in roots {
            if live.insert(r) {
                queue.push(r);
            }
        }
        while let Some(id) = queue.pop() {
            for child in self.children(id) {
                if live.insert(child) {
                    queue.push(child);
                }
            }
        }
        let mut collected = 0;
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if let Some(s) = slot {
                if !live.contains(&ObjId(idx as u32)) {
                    self.allocator.free(s.extent);
                    *slot = None;
                    collected += 1;
                }
            }
        }
        if collected > 0 {
            self.remark_live_pages();
        }
        collected
    }

    fn remark_live_pages(&mut self) {
        // Freeing extents may have dropped pages that other live extents
        // still overlap (small objects share pages); re-assert them.
        let extents: Vec<Extent> = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.extent)
            .collect();
        for e in extents {
            self.allocator.mark_live(e);
        }
    }

    /// Pages dirtied since the last [`Self::clear_dirty_pages`]. Consumed by
    /// the CRIU-Incremental baseline.
    pub fn dirty_pages(&self) -> Vec<u64> {
        self.allocator.dirty_pages()
    }

    /// All pages backing live objects. Consumed by the full-snapshot CRIU
    /// baseline.
    pub fn live_pages(&self) -> Vec<u64> {
        self.allocator.live_pages()
    }

    /// Reset dirty-page tracking (after a snapshot is taken).
    pub fn clear_dirty_pages(&mut self) {
        self.allocator.clear_dirty();
    }

    /// Objects whose extent overlaps any of the given pages — what an
    /// OS-level incremental snapshot implicitly copies.
    pub fn objects_on_pages(&self, pages: &[u64]) -> Vec<ObjId> {
        let page_set: HashSet<u64> = pages.iter().copied().collect();
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let s = slot.as_ref()?;
                s.extent
                    .pages()
                    .any(|p| page_set.contains(&p))
                    .then_some(ObjId(idx as u32))
            })
            .collect()
    }

    /// Iterator over all live object handles.
    pub fn live_objects(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, s)| s.as_ref().map(|_| ObjId(idx as u32)))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HeapStats {
        let mut live_objects = 0;
        let mut live_bytes = 0;
        for s in self.slots.iter().flatten() {
            live_objects += 1;
            live_bytes += s.kind.shallow_size() as u64;
        }
        HeapStats {
            live_objects,
            live_bytes,
            total_allocated: self.total_allocated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of_ints(heap: &mut Heap, values: &[i64]) -> ObjId {
        let items: Vec<ObjId> = values.iter().map(|v| heap.alloc(ObjKind::Int(*v))).collect();
        heap.alloc(ObjKind::List(items))
    }

    #[test]
    fn alloc_and_read_roundtrip() {
        let mut heap = Heap::new();
        let id = heap.alloc(ObjKind::Int(42));
        assert_eq!(heap.kind(id), &ObjKind::Int(42));
        assert!(heap.is_live(id));
    }

    #[test]
    fn addresses_are_distinct_and_stable() {
        let mut heap = Heap::new();
        let a = heap.alloc(ObjKind::Int(1));
        let b = heap.alloc(ObjKind::Int(1));
        assert_ne!(heap.addr(a), heap.addr(b));
        let before = heap.addr(a);
        heap.modify(a, |k| *k = ObjKind::Int(2));
        assert_eq!(heap.addr(a), before); // in-place update keeps the address
    }

    #[test]
    fn growth_reallocates_address() {
        let mut heap = Heap::new();
        let ls = heap.alloc(ObjKind::List(Vec::new()));
        let before = heap.addr(ls);
        let elems: Vec<ObjId> = (0..128).map(|i| heap.alloc(ObjKind::Int(i))).collect();
        heap.modify(ls, |k| {
            if let ObjKind::List(items) = k {
                items.extend(elems);
            }
        });
        assert_ne!(heap.addr(ls), before); // outgrew the extent
    }

    #[test]
    fn modify_dirties_pages() {
        let mut heap = Heap::new();
        let arr = heap.alloc(ObjKind::NdArray(vec![0.0; 10]));
        heap.clear_dirty_pages();
        assert!(heap.dirty_pages().is_empty());
        heap.modify(arr, |k| {
            if let ObjKind::NdArray(v) = k {
                v[3] = 1.0;
            }
        });
        assert!(!heap.dirty_pages().is_empty());
    }

    #[test]
    fn reachability_follows_references_and_dedups() {
        let mut heap = Heap::new();
        let shared = heap.alloc(ObjKind::Str("b".into()));
        let ls = heap.alloc(ObjKind::List(vec![shared, shared]));
        let reach = heap.reachable_from(ls);
        assert_eq!(reach.len(), 2); // list + shared string once
        assert!(reach.contains(&shared));
    }

    #[test]
    fn union_reachability_visits_shared_structure_once() {
        let mut heap = Heap::new();
        let shared = heap.alloc(ObjKind::Str("s".into()));
        let a = heap.alloc(ObjKind::List(vec![shared]));
        let b = heap.alloc(ObjKind::List(vec![shared]));
        let union = heap.reachable_from_all(&[a, b, a]);
        assert_eq!(union.len(), 3, "a, b, and shared exactly once each");
        // Same membership as unioning the per-root traversals.
        let mut per_root: Vec<ObjId> = heap
            .reachable_from(a)
            .into_iter()
            .chain(heap.reachable_from(b))
            .collect();
        per_root.sort_unstable();
        per_root.dedup();
        let mut got = union.clone();
        got.sort_unstable();
        assert_eq!(got, per_root);
        assert!(heap.reachable_from_all(&[]).is_empty());
    }

    #[test]
    fn reachability_handles_cycles() {
        let mut heap = Heap::new();
        let inner = heap.alloc(ObjKind::List(Vec::new()));
        let outer = heap.alloc(ObjKind::List(vec![inner]));
        heap.modify(inner, |k| {
            if let ObjKind::List(items) = k {
                items.push(outer);
            }
        });
        let reach = heap.reachable_from(outer);
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn gc_collects_unreachable_and_preserves_roots() {
        let mut heap = Heap::new();
        let keep = list_of_ints(&mut heap, &[1, 2, 3]);
        let drop_me = list_of_ints(&mut heap, &[4, 5, 6]);
        let collected = heap.collect_garbage([keep]);
        assert_eq!(collected, 4); // dropped list + its 3 ints
        assert!(heap.is_live(keep));
        assert!(!heap.is_live(drop_me));
        // Roots' children survived.
        for c in heap.children(keep) {
            assert!(heap.is_live(c));
        }
    }

    #[test]
    #[should_panic(expected = "use of collected object")]
    fn dead_handle_panics() {
        let mut heap = Heap::new();
        let dead = heap.alloc(ObjKind::Int(9));
        heap.collect_garbage(std::iter::empty());
        let _ = heap.kind(dead);
    }

    #[test]
    fn stats_track_live_state() {
        let mut heap = Heap::new();
        let a = list_of_ints(&mut heap, &[1, 2]);
        let before = heap.stats();
        assert_eq!(before.live_objects, 3);
        heap.collect_garbage([a]);
        assert_eq!(heap.stats().live_objects, 3);
        heap.collect_garbage(std::iter::empty());
        assert_eq!(heap.stats().live_objects, 0);
        assert_eq!(heap.stats().total_allocated, 3);
    }

    #[test]
    fn deep_size_counts_shared_once() {
        let mut heap = Heap::new();
        let shared = heap.alloc(ObjKind::NdArray(vec![0.0; 100]));
        let l1 = heap.alloc(ObjKind::List(vec![shared]));
        let l2 = heap.alloc(ObjKind::List(vec![shared]));
        let both = heap.deep_size([l1, l2]);
        let one = heap.deep_size([l1]);
        assert!(both < 2 * one);
    }

    #[test]
    fn objects_on_pages_finds_overlapping() {
        let mut heap = Heap::new();
        let big = heap.alloc(ObjKind::NdArray(vec![0.0; 2048])); // ~16 KiB, several pages
        let pages = heap.live_pages();
        let objs = heap.objects_on_pages(&pages);
        assert!(objs.contains(&big));
    }
}
