//! The patched global namespace.
//!
//! Jupyter cells interact with the session state through the kernel's global
//! namespace (`user_ns`). Kishu patches its accessor, setter, and deletion
//! methods (§4.3, Fig 8) to learn which variable names each cell touched —
//! the sole input Lemma 1 needs to prove a co-variable *surely wasn't*
//! updated. This module is that namespace: a name→object binding table whose
//! every access is recorded into the current [`AccessRecord`] while tracking
//! is armed.

use std::collections::{BTreeMap, BTreeSet};

use crate::object::ObjId;

/// The set of variable names a single cell execution got, set, or deleted.
///
/// `accessed()` (the union) is what the delta detector intersects with
/// co-variable membership; the individual sets additionally feed the
/// workload-characterization experiments (Fig 2's creation/modification
/// split).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessRecord {
    /// Names read (`x`, `f(x)`, `x.attr`, `x[i]`, ...).
    pub gets: BTreeSet<String>,
    /// Names (re)bound (`x = ...`), including first definitions.
    pub sets: BTreeSet<String>,
    /// Names removed (`del x`).
    pub dels: BTreeSet<String>,
}

impl AccessRecord {
    /// Union of all names touched in any way — Definition 3's "accessed".
    pub fn accessed(&self) -> BTreeSet<String> {
        let mut all = self.gets.clone();
        all.extend(self.sets.iter().cloned());
        all.extend(self.dels.iter().cloned());
        all
    }

    /// Whether nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.gets.is_empty() && self.sets.is_empty() && self.dels.is_empty()
    }
}

/// The global namespace of a simulated notebook session, with Kishu's access
/// patch built in.
///
/// Bindings are kept in a sorted map so iteration (state snapshots, pickling
/// order, co-variable enumeration) is deterministic across runs.
#[derive(Debug, Default)]
pub struct Namespace {
    bindings: BTreeMap<String, ObjId>,
    tracking: bool,
    record: AccessRecord,
}

impl Namespace {
    /// Empty namespace with tracking disarmed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm access tracking and clear the current record. Called by Kishu's
    /// `pre_run_cell` hook.
    pub fn begin_tracking(&mut self) {
        self.tracking = true;
        self.record = AccessRecord::default();
    }

    /// Disarm tracking and take the record of the cell that just ran. Called
    /// by Kishu's `post_run_cell` hook.
    pub fn end_tracking(&mut self) -> AccessRecord {
        self.tracking = false;
        std::mem::take(&mut self.record)
    }

    /// Whether tracking is currently armed.
    pub fn is_tracking(&self) -> bool {
        self.tracking
    }

    /// Look a name up, recording the get. Returns `None` for unbound names
    /// (the interpreter turns that into a `NameError`).
    pub fn get(&mut self, name: &str) -> Option<ObjId> {
        if self.tracking {
            self.record.gets.insert(name.to_string());
        }
        self.bindings.get(name).copied()
    }

    /// Look a name up *without* recording an access. Kishu's own machinery
    /// (VarGraph regeneration, checkout) uses this so that observation never
    /// perturbs the measurement.
    pub fn peek(&self, name: &str) -> Option<ObjId> {
        self.bindings.get(name).copied()
    }

    /// Bind a name, recording the set. Returns the previously bound object,
    /// if any.
    pub fn set(&mut self, name: &str, obj: ObjId) -> Option<ObjId> {
        if self.tracking {
            self.record.sets.insert(name.to_string());
        }
        self.bindings.insert(name.to_string(), obj)
    }

    /// Bind a name without recording (checkout restoring state).
    pub fn set_untracked(&mut self, name: &str, obj: ObjId) -> Option<ObjId> {
        self.bindings.insert(name.to_string(), obj)
    }

    /// Delete a name, recording the deletion. Returns the unbound object.
    pub fn delete(&mut self, name: &str) -> Option<ObjId> {
        if self.tracking {
            self.record.dels.insert(name.to_string());
        }
        self.bindings.remove(name)
    }

    /// Delete a name without recording (checkout removing divergent
    /// variables).
    pub fn delete_untracked(&mut self, name: &str) -> Option<ObjId> {
        self.bindings.remove(name)
    }

    /// Whether a name is currently bound (no access recorded).
    pub fn contains(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }

    /// All current `(name, object)` bindings in sorted order (no access
    /// recorded).
    pub fn bindings(&self) -> impl Iterator<Item = (&str, ObjId)> + '_ {
        self.bindings.iter().map(|(n, o)| (n.as_str(), *o))
    }

    /// All bound names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.bindings.keys().cloned().collect()
    }

    /// All bound objects (GC roots).
    pub fn roots(&self) -> Vec<ObjId> {
        self.bindings.values().copied().collect()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_accesses_are_recorded() {
        let mut ns = Namespace::new();
        ns.set_untracked("a", ObjId(1));
        ns.begin_tracking();
        let _ = ns.get("a");
        ns.set("b", ObjId(2));
        ns.delete("a");
        let rec = ns.end_tracking();
        assert!(rec.gets.contains("a"));
        assert!(rec.sets.contains("b"));
        assert!(rec.dels.contains("a"));
        assert_eq!(
            rec.accessed(),
            ["a", "b"].iter().map(|s| s.to_string()).collect()
        );
    }

    #[test]
    fn untracked_accesses_are_invisible() {
        let mut ns = Namespace::new();
        ns.begin_tracking();
        ns.set_untracked("x", ObjId(1));
        let _ = ns.peek("x");
        ns.delete_untracked("x");
        let rec = ns.end_tracking();
        assert!(rec.is_empty());
    }

    #[test]
    fn missing_names_are_still_recorded_as_gets() {
        // Reading an unbound name is an access attempt; the cell may then
        // bind it. Recording it keeps Lemma 1 conservative.
        let mut ns = Namespace::new();
        ns.begin_tracking();
        assert!(ns.get("ghost").is_none());
        let rec = ns.end_tracking();
        assert!(rec.gets.contains("ghost"));
    }

    #[test]
    fn tracking_is_scoped_to_a_cell() {
        let mut ns = Namespace::new();
        ns.set("pre", ObjId(7)); // not tracking yet
        ns.begin_tracking();
        let rec = ns.end_tracking();
        assert!(rec.is_empty());
        ns.set("post", ObjId(8)); // tracking disarmed again
        ns.begin_tracking();
        assert!(ns.end_tracking().is_empty());
    }

    #[test]
    fn bindings_iterate_sorted() {
        let mut ns = Namespace::new();
        ns.set_untracked("zeta", ObjId(1));
        ns.set_untracked("alpha", ObjId(2));
        let names: Vec<&str> = ns.bindings().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn rebinding_returns_previous() {
        let mut ns = Namespace::new();
        assert_eq!(ns.set("x", ObjId(1)), None);
        assert_eq!(ns.set("x", ObjId(2)), Some(ObjId(1)));
        assert_eq!(ns.peek("x"), Some(ObjId(2)));
        assert_eq!(ns.delete("x"), Some(ObjId(2)));
        assert_eq!(ns.delete("x"), None);
    }
}
