//! Object model of the simulated kernel.
//!
//! Mirrors CPython's object model closely enough for Kishu's algorithms to be
//! meaningful: every value is a heap object with a stable identity (its
//! simulated memory address, the analogue of CPython `id()`), and containers
//! hold *references* to other objects, never inline copies. Shared references
//! — the thing co-variables exist to preserve — arise exactly as in Python:
//! by binding the same object behind two reachable paths.

use std::fmt;

/// Handle to an object in a [`crate::Heap`]. Indexes the heap's slot table.
///
/// An `ObjId` is only meaningful together with the heap that issued it.
/// Identity of `ObjId`s is object identity: two variables share state iff the
/// same `ObjId` is reachable from both (the paper's Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Raw slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Identifier of a simulated data-science library class (see `kishu-libsim`).
///
/// External objects (`ObjKind::External`) carry a `ClassId`; the class
/// registry supplies behavioural flags (serializable? dynamically generated
/// reachables? off-process?) that drive the Fig 12 / Table 4 / Table 5
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

/// The kind (type + payload) of a heap object.
///
/// Variants are chosen to cover the shapes the paper's workloads exercise:
/// primitives, Python containers, array-likes (NumPy-style buffers),
/// dataframe-likes, user-defined instances with attributes, functions
/// (pickled by source, as cloudpickle does), opaque generators (the canonical
/// unserializable/untraversable object, §4.2), and `External` library objects
/// whose behaviour is described by the class registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjKind {
    /// Python `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer. Not interned: every literal allocates a fresh object,
    /// so identity sharing only arises from genuine reference assignment.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Immutable string.
    Str(String),
    /// Mutable ordered list of references.
    List(Vec<ObjId>),
    /// Immutable tuple of references.
    Tuple(Vec<ObjId>),
    /// Insertion-ordered dictionary; both keys and values are references.
    Dict(Vec<(ObjId, ObjId)>),
    /// Unordered set of references (stored in insertion order).
    Set(Vec<ObjId>),
    /// Contiguous numeric buffer (NumPy `ndarray` analogue). A leaf for
    /// reachability purposes, but its element pages can be dirtied in place
    /// (`arr[i] += 1`) — the case §4.3's Remark calls out.
    NdArray(Vec<f64>),
    /// Labelled 1-D column (pandas `Series` analogue): a name plus a
    /// reference to the backing values object (NdArray or List).
    Series {
        /// Column label.
        name: String,
        /// Backing values (usually `NdArray` or `List`).
        values: ObjId,
    },
    /// Column-oriented table (pandas `DataFrame` analogue): ordered
    /// `(column name, column object)` pairs.
    DataFrame(Vec<(String, ObjId)>),
    /// User-defined instance with attribute dictionary (`obj.foo = ...`).
    Instance {
        /// Class name as written in the notebook (informational).
        class_name: String,
        /// Attribute slots, insertion-ordered.
        attrs: Vec<(String, ObjId)>,
    },
    /// A minipy function. Serialized by source text (the cloudpickle
    /// strategy); calling it re-parses/caches in the interpreter.
    Function {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Full `def` source text (basis for pickling and body lookup).
        source: String,
    },
    /// An opaque generator/iterator. Not traversable (no referencing
    /// instructions) and not serializable — Kishu must assume it updated on
    /// access and restore it by fallback recomputation (§4.2, §5.1).
    Generator {
        /// Distinguishes generator instances.
        token: u64,
    },
    /// An instance of a simulated library class. `attrs` are ordinary
    /// reachable references; `payload` is the class-internal buffer the
    /// reduction protocol serializes; `epoch` is bumped on in-place updates
    /// so update detection has something to observe.
    External {
        /// Which simulated library class this is.
        class: ClassId,
        /// Reachable attribute references.
        attrs: Vec<(String, ObjId)>,
        /// Opaque class-internal bytes (weights, buffers, ...).
        payload: Vec<u8>,
        /// In-place modification counter.
        epoch: u64,
    },
}

impl ObjKind {
    /// Short stable type tag, the analogue of `type(x).__name__`. VarGraph
    /// nodes store this (a type change at the same address is an update).
    pub fn type_tag(&self) -> &'static str {
        match self {
            ObjKind::None => "NoneType",
            ObjKind::Bool(_) => "bool",
            ObjKind::Int(_) => "int",
            ObjKind::Float(_) => "float",
            ObjKind::Str(_) => "str",
            ObjKind::List(_) => "list",
            ObjKind::Tuple(_) => "tuple",
            ObjKind::Dict(_) => "dict",
            ObjKind::Set(_) => "set",
            ObjKind::NdArray(_) => "ndarray",
            ObjKind::Series { .. } => "Series",
            ObjKind::DataFrame(_) => "DataFrame",
            ObjKind::Instance { .. } => "instance",
            ObjKind::Function { .. } => "function",
            ObjKind::Generator { .. } => "generator",
            ObjKind::External { .. } => "external",
        }
    }

    /// Whether this object is an immutable primitive (a VarGraph *value*
    /// leaf rather than a pointer node).
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            ObjKind::None | ObjKind::Bool(_) | ObjKind::Int(_) | ObjKind::Float(_) | ObjKind::Str(_)
        )
    }

    /// Whether reachability traversal can descend into this object. Opaque
    /// objects (generators) lack referencing instructions; Kishu treats them
    /// conservatively as updated whenever accessed (§4.2).
    pub fn is_traversable(&self) -> bool {
        !matches!(self, ObjKind::Generator { .. })
    }

    /// Reference edges to child objects, in deterministic order. This is the
    /// reachability relation of Definition 1 (subscript, class member,
    /// attribution all collapse to these edges).
    pub fn children(&self) -> Vec<ObjId> {
        match self {
            ObjKind::List(items) | ObjKind::Tuple(items) | ObjKind::Set(items) => items.clone(),
            ObjKind::Dict(pairs) => pairs.iter().flat_map(|(k, v)| [*k, *v]).collect(),
            ObjKind::Series { values, .. } => vec![*values],
            ObjKind::DataFrame(cols) => cols.iter().map(|(_, c)| *c).collect(),
            ObjKind::Instance { attrs, .. } | ObjKind::External { attrs, .. } => {
                attrs.iter().map(|(_, v)| *v).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Approximate in-memory footprint in bytes, modelled on CPython
    /// `sys.getsizeof` shapes. Drives page allocation, checkpoint size
    /// accounting, and the workload "state size" statistics (Table 2).
    pub fn shallow_size(&self) -> usize {
        match self {
            ObjKind::None => 16,
            ObjKind::Bool(_) => 28,
            ObjKind::Int(_) => 28,
            ObjKind::Float(_) => 24,
            ObjKind::Str(s) => 49 + s.len(),
            ObjKind::List(items) => 56 + 8 * items.len(),
            ObjKind::Tuple(items) => 40 + 8 * items.len(),
            ObjKind::Set(items) => 216 + 8 * items.len(),
            ObjKind::Dict(pairs) => 64 + 16 * pairs.len(),
            ObjKind::NdArray(values) => 112 + 8 * values.len(),
            ObjKind::Series { name, .. } => 120 + name.len(),
            ObjKind::DataFrame(cols) => {
                128 + cols.iter().map(|(n, _)| 16 + n.len()).sum::<usize>()
            }
            ObjKind::Instance { attrs, .. } => 48 + 16 * attrs.len(),
            ObjKind::Function { source, .. } => 120 + source.len(),
            ObjKind::Generator { .. } => 112,
            ObjKind::External { attrs, payload, .. } => 64 + 16 * attrs.len() + payload.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_leaves() {
        assert!(ObjKind::Int(3).is_primitive());
        assert!(ObjKind::Str("x".into()).is_primitive());
        assert!(!ObjKind::List(vec![]).is_primitive());
        assert!(ObjKind::Int(3).children().is_empty());
    }

    #[test]
    fn generators_are_opaque() {
        assert!(!ObjKind::Generator { token: 7 }.is_traversable());
        assert!(ObjKind::List(vec![]).is_traversable());
    }

    #[test]
    fn dict_children_include_keys_and_values() {
        let kind = ObjKind::Dict(vec![(ObjId(1), ObjId(2)), (ObjId(3), ObjId(4))]);
        assert_eq!(kind.children(), vec![ObjId(1), ObjId(2), ObjId(3), ObjId(4)]);
    }

    #[test]
    fn sizes_scale_with_contents() {
        let small = ObjKind::NdArray(vec![0.0; 10]).shallow_size();
        let big = ObjKind::NdArray(vec![0.0; 1000]).shallow_size();
        assert!(big > small);
        assert_eq!(big - small, 8 * 990);
    }

    #[test]
    fn type_tags_are_stable() {
        assert_eq!(ObjKind::DataFrame(vec![]).type_tag(), "DataFrame");
        assert_eq!(ObjKind::None.type_tag(), "NoneType");
    }
}
