//! Simulated real-world latencies.
//!
//! The simulated kernel executes synthetic work (CSV parses, model fits)
//! orders of magnitude faster than the real operations the paper's
//! notebooks perform, which would distort every time-based comparison: a
//! store-vs-recompute optimizer (ElasticNotebook) would always choose
//! "recompute", and checkout-versus-rerun trade-offs (Kishu+Det-replay)
//! would collapse. This module charges wall-clock costs calibrated to
//! commodity hardware so the *ratios* the paper measures stay meaningful:
//!
//! * CSV parsing at ~50 MB/s (pandas-ish);
//! * model training at ~10 MB/s of model state produced (a stand-in for
//!   fit time growing with model size);
//! * killing and restarting a notebook kernel process at ~100 ms (what
//!   CRIU restores require, §2.3/§7.5).
//!
//! Charges below 20 µs are skipped (sleep syscall granularity).

use std::time::Duration;

/// Simulated CSV parse bandwidth (bytes/second).
pub const CSV_PARSE_BPS: u64 = 50 * 1024 * 1024;

/// Simulated model-training throughput (bytes of model state per second).
pub const TRAIN_BPS: u64 = 10 * 1024 * 1024;

/// Simulated in-place model/dataset update throughput (bytes/second).
pub const UPDATE_BPS: u64 = 100 * 1024 * 1024;

/// Simulated object-graph serialization throughput (bytes of pickle
/// produced per second) — the CPU-bound walk+encode cost every
/// checkpointing method pays at dump time. Calibrated to `pickle`-ing
/// library state (model weights, dataframes) on commodity hardware;
/// deliberately faster than [`TRAIN_BPS`] (recomputing state always costs
/// more than serializing it) and slower than a raw `memcpy`. The same rate
/// is charged on deserialize (`loads`), uniformly for every method — a
/// full-state restore pays for the whole state, an incremental one only
/// for its delta. Kishu's parallel restore pipeline charges each cold
/// payload on a worker thread instead (so decode sleeps overlap across
/// blobs) and skips the charge on a read-cache hit — the "memory-speed
/// undo/redo" the checkout cache exists for.
pub const PICKLE_BPS: u64 = 64 * 1024 * 1024;

/// Simulated cost of killing and restarting a kernel process.
pub const KERNEL_RESTART: Duration = Duration::from_millis(100);

/// Sleep for `bytes / bytes_per_sec`, skipping negligible charges.
pub fn charge_bytes(bytes: u64, bytes_per_sec: u64) {
    let nanos = (bytes as u128 * 1_000_000_000) / bytes_per_sec.max(1) as u128;
    if nanos >= 20_000 {
        std::thread::sleep(Duration::from_nanos(nanos as u64));
    }
}

/// Sleep for a fixed charge.
pub fn charge(duration: Duration) {
    std::thread::sleep(duration);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn negligible_charges_are_skipped() {
        let start = Instant::now();
        for _ in 0..1000 {
            charge_bytes(64, CSV_PARSE_BPS); // ~1ns each: skipped
        }
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn large_charges_sleep_proportionally() {
        let start = Instant::now();
        charge_bytes(5 * 1024 * 1024, CSV_PARSE_BPS); // 5 MB @ 50 MB/s = 100 ms
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(90), "{elapsed:?}");
    }
}
