//! Simulated paged virtual address space.
//!
//! The CRIU baselines (§2.3, §7) checkpoint the notebook *process image* at
//! memory-page granularity. To compare against them honestly we give the
//! simulated kernel a virtual address space: every heap object occupies a
//! byte extent, extents are carved out of 4 KiB pages by a bump allocator,
//! and in-place mutations dirty the pages they overlap. Because allocation is
//! strictly sequential in time, interleaved construction of two lists
//! fragments both across shared pages — exactly the effect Fig 4 uses to
//! motivate co-variable granularity over page granularity.

use std::collections::BTreeSet;

/// Size of one simulated memory page in bytes (matches x86-64 small pages).
pub const PAGE_SIZE: u64 = 4096;

/// A contiguous byte extent in the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Start address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Extent {
    /// Page numbers overlapped by this extent.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        let first = self.addr / PAGE_SIZE;
        let last = if self.len == 0 {
            first
        } else {
            (self.addr + self.len - 1) / PAGE_SIZE
        };
        first..=last
    }
}

/// Monotone bump allocator over the simulated address space, with dirty-page
/// tracking.
///
/// Addresses are never reused, so an address observed in a VarGraph uniquely
/// identifies one allocation for the whole session (CPython can reuse `id()`s
/// after GC; the paper's update detection is conservative about that, and our
/// monotone choice simply removes the non-determinism from experiments).
#[derive(Debug, Default)]
pub struct PageAllocator {
    next: u64,
    dirty: BTreeSet<u64>,
    /// Pages that currently back at least one live allocation.
    live: BTreeSet<u64>,
}

impl PageAllocator {
    /// New allocator with an empty address space. The first allocation is
    /// placed above the null page.
    pub fn new() -> Self {
        PageAllocator {
            next: PAGE_SIZE,
            dirty: BTreeSet::new(),
            live: BTreeSet::new(),
        }
    }

    /// Allocate `len` bytes. The new extent's pages are marked live and
    /// dirty (freshly written memory is dirty w.r.t. any prior snapshot).
    pub fn alloc(&mut self, len: u64) -> Extent {
        let ext = Extent {
            addr: self.next,
            len: len.max(1),
        };
        self.next += len.max(1);
        for p in ext.pages() {
            self.live.insert(p);
            self.dirty.insert(p);
        }
        ext
    }

    /// Release an extent's pages from the live set (pages still shared with
    /// other live extents are kept live by re-registration; see
    /// [`Self::mark_live`]).
    pub fn free(&mut self, ext: Extent) {
        for p in ext.pages() {
            self.live.remove(&p);
        }
    }

    /// Re-assert that an extent's pages are live. The heap calls this for all
    /// surviving objects after a garbage-collection sweep so that pages
    /// shared between a freed extent and a live one remain in the image.
    pub fn mark_live(&mut self, ext: Extent) {
        for p in ext.pages() {
            self.live.insert(p);
        }
    }

    /// Mark every page of an extent dirty (an in-place mutation wrote to it).
    pub fn touch(&mut self, ext: Extent) {
        for p in ext.pages() {
            self.dirty.insert(p);
        }
    }

    /// Pages dirtied since the last [`Self::clear_dirty`], restricted to
    /// live pages. This is what an incremental OS-level snapshot copies.
    pub fn dirty_pages(&self) -> Vec<u64> {
        self.dirty.intersection(&self.live).copied().collect()
    }

    /// All live pages — what a full OS-level snapshot copies.
    pub fn live_pages(&self) -> Vec<u64> {
        self.live.iter().copied().collect()
    }

    /// Forget dirty state (called after taking a snapshot).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Total bytes handed out so far (address-space high-water mark).
    pub fn allocated_bytes(&self) -> u64 {
        self.next.saturating_sub(PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_map_to_pages() {
        let e = Extent { addr: 4000, len: 200 };
        let pages: Vec<u64> = e.pages().collect();
        assert_eq!(pages, vec![0, 1]); // straddles the 4096 boundary
    }

    #[test]
    fn zero_length_extent_occupies_its_page() {
        let e = Extent { addr: 8192, len: 0 };
        assert_eq!(e.pages().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn alloc_is_monotone_and_dirties() {
        let mut a = PageAllocator::new();
        let e1 = a.alloc(100);
        let e2 = a.alloc(100);
        assert!(e2.addr > e1.addr);
        assert!(!a.dirty_pages().is_empty());
        a.clear_dirty();
        assert!(a.dirty_pages().is_empty());
        a.touch(e1);
        assert_eq!(a.dirty_pages().len(), 1);
    }

    #[test]
    fn interleaved_allocation_fragments_across_pages() {
        // Two "lists" built by alternating small allocations end up sharing
        // pages — touching all elements of one list dirties pages that also
        // hold the other list's elements (the Fig 4 motivating effect).
        let mut a = PageAllocator::new();
        let mut list1 = Vec::new();
        let mut list2 = Vec::new();
        for _ in 0..200 {
            list1.push(a.alloc(60));
            list2.push(a.alloc(60));
        }
        a.clear_dirty();
        for e in &list1 {
            a.touch(*e);
        }
        let dirty: BTreeSet<u64> = a.dirty_pages().into_iter().collect();
        // Almost every page of list2 is also dirty because of interleaving.
        let list2_pages: BTreeSet<u64> = list2.iter().flat_map(|e| e.pages()).collect();
        let overlap = dirty.intersection(&list2_pages).count();
        assert!(overlap as f64 > 0.8 * list2_pages.len() as f64);
    }

    #[test]
    fn free_removes_pages_from_live_set() {
        let mut a = PageAllocator::new();
        let e = a.alloc(PAGE_SIZE * 2);
        let live_before = a.live_pages().len();
        a.free(e);
        assert!(a.live_pages().len() < live_before);
    }

    #[test]
    fn dirty_restricted_to_live() {
        let mut a = PageAllocator::new();
        let e = a.alloc(PAGE_SIZE * 4); // occupies whole pages exclusively
        a.clear_dirty();
        a.touch(e);
        a.free(e);
        assert!(a.dirty_pages().is_empty());
    }
}
