//! # kishu-kernel — a simulated computational-notebook kernel
//!
//! Kishu (the paper) runs inside a CPython/Jupyter kernel: it observes a heap
//! of interconnected Python objects reachable from a global namespace, and it
//! patches that namespace to learn which variables each cell execution
//! touched. This crate is the Rust substitute for that substrate. It provides:
//!
//! * a typed **object heap** ([`Heap`]) whose objects carry stable simulated
//!   memory addresses and reference edges to other objects (subscript,
//!   member, and attribute reachability, §4.1 of the paper);
//! * a **paged virtual address space** ([`pages::PageAllocator`]) with
//!   fragmenting allocation and dirty-page tracking, which is what the
//!   CRIU-style OS-level baselines snapshot;
//! * a **patched global namespace** ([`Namespace`]) that records every
//!   get/set/delete of a variable name during a cell execution — the
//!   information Lemma 1 needs to prune co-variable update candidates.
//!
//! Everything higher up (the minipy interpreter, the pickle protocol, Kishu
//! itself, and every baseline) is built against this crate and nothing else,
//! so the whole reproduction shares one notion of "the session state".

pub mod heap;
pub mod namespace;
pub mod object;
pub mod pages;
pub mod simcost;

pub use heap::{Heap, HeapStats};
pub use namespace::{AccessRecord, Namespace};
pub use object::{ClassId, ObjId, ObjKind};
pub use pages::{PageAllocator, PAGE_SIZE};
