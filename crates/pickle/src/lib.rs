//! # kishu-pickle — memoized object-graph serialization with reductions
//!
//! Kishu stores and restores co-variables as *bytestrings* of their whole
//! connected component (§6.1): Python's pickle protocol walks the object
//! graph, memoizes every object so shared references and cycles are encoded
//! once and re-linked on load, and delegates library classes to their
//! `__reduce__` instructions. This crate is that protocol for the simulated
//! kernel:
//!
//! * [`dumps`] serializes any set of root objects from a heap into one
//!   self-contained blob, preserving sharing and cycles via a memo table;
//! * [`loads`] reconstructs the graph into a (possibly different) heap and
//!   returns the new root handles;
//! * [`Reducer`] is the `__reduce__` analogue: simulated library classes
//!   (`ObjKind::External`) are serialized through it, which is where the
//!   Fig 12 / Table 4 failure modes live (unserializable classes raise at
//!   dump time, deserialization failures raise at load time, and silent
//!   pickle errors corrupt the payload without raising — §6.2).
//!
//! The format round-trips byte-exactly: `dumps(loads(dumps(x))) ==
//! dumps(x)`, which is the "exact restoration" guarantee Kishu's Remark in
//! §5.3 relies on (verified by property tests).

pub mod chain;
pub mod error;
pub mod reader;
pub mod reduce;
pub mod varint;
pub mod writer;

pub use chain::ChainReducer;
pub use error::PickleError;
pub use reduce::{NoopReducer, Reducer};

use kishu_kernel::{Heap, ObjId};

/// Serialize the graphs reachable from `roots` into one blob.
///
/// Shared objects (within and across roots) are encoded once; the decoded
/// graph has the same shape. Fails with [`PickleError::Unserializable`] when
/// the closure contains an opaque object (generator) or a class whose
/// reduction refuses.
pub fn dumps(heap: &Heap, roots: &[ObjId], reducer: &dyn Reducer) -> Result<Vec<u8>, PickleError> {
    // The span reaches the session's trace through the thread-current
    // context (set by the enclosing session span, or `worker_scope` on a
    // pool worker); no handle is threaded through this API.
    let mut sp = kishu_trace::current_span("pickle.dumps");
    let blob = writer::Writer::new(heap, reducer).dump(roots)?;
    sp.arg("bytes", blob.len());
    // Charge the simulated serialization latency (see `simcost`): the
    // synthetic encoder is orders of magnitude faster than pickling real
    // library state, which would make every dump look free and erase the
    // serialization/store trade-offs the measurements compare. Charged
    // uniformly for every method; per-blob charges sleep on the calling
    // thread, so the parallel checkpoint pipeline genuinely overlaps them.
    kishu_kernel::simcost::charge_bytes(blob.len() as u64, kishu_kernel::simcost::PICKLE_BPS);
    Ok(blob)
}

/// Reconstruct a blob produced by [`dumps`] into `heap`, returning the new
/// root handles in the same order they were passed to `dumps`.
///
/// Like [`dumps`], the simulated decode latency is charged here, uniformly
/// for every method — a full-state restore (DumpSession) pays for the whole
/// state, an incremental one (Kishu) only for its delta. Charging happens
/// even when decoding later fails partway: the walk until the failure is
/// real work, and charging up front keeps the cost independent of where a
/// corrupt blob happens to break.
pub fn loads(heap: &mut Heap, bytes: &[u8], reducer: &dyn Reducer) -> Result<Vec<ObjId>, PickleError> {
    let mut sp = kishu_trace::current_span("pickle.loads");
    sp.arg("bytes", bytes.len());
    kishu_kernel::simcost::charge_bytes(bytes.len() as u64, kishu_kernel::simcost::PICKLE_BPS);
    reader::Reader::new(bytes, reducer).load(heap)
}

/// [`loads`] without the simulated decode charge, for callers that already
/// charged it elsewhere: the parallel checkout pipeline charges each cold
/// payload on a worker thread (so decode sleeps overlap across blobs) and
/// legitimately skips the charge on a read-cache hit (the decoded-warm
/// payload is the thing the cache models). Everything else must call
/// [`loads`].
pub fn loads_precharged(
    heap: &mut Heap,
    bytes: &[u8],
    reducer: &dyn Reducer,
) -> Result<Vec<ObjId>, PickleError> {
    let mut sp = kishu_trace::current_span("pickle.loads");
    sp.arg("bytes", bytes.len());
    sp.arg("precharged", true);
    reader::Reader::new(bytes, reducer).load(heap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_kernel::{Heap, ObjKind};

    fn roundtrip(heap: &mut Heap, roots: &[ObjId]) -> Vec<ObjId> {
        let blob = dumps(heap, roots, &NoopReducer).expect("dumps");
        loads(heap, &blob, &NoopReducer).expect("loads")
    }

    #[test]
    fn primitives_roundtrip() {
        let mut heap = Heap::new();
        let ids = vec![
            heap.alloc(ObjKind::None),
            heap.alloc(ObjKind::Bool(true)),
            heap.alloc(ObjKind::Int(-42)),
            heap.alloc(ObjKind::Float(2.75)),
            heap.alloc(ObjKind::Str("hello".into())),
        ];
        let back = roundtrip(&mut heap, &ids);
        for (a, b) in ids.iter().zip(&back) {
            assert_eq!(heap.kind(*a), heap.kind(*b));
            assert_ne!(a, b, "loads must allocate fresh objects");
        }
    }

    #[test]
    fn shared_references_are_preserved() {
        let mut heap = Heap::new();
        let shared = heap.alloc(ObjKind::Str("b".into()));
        let l1 = heap.alloc(ObjKind::List(vec![shared]));
        let l2 = heap.alloc(ObjKind::List(vec![shared]));
        let back = roundtrip(&mut heap, &[l1, l2]);
        let c1 = heap.children(back[0])[0];
        let c2 = heap.children(back[1])[0];
        assert_eq!(c1, c2, "sharing must survive the roundtrip");
    }

    #[test]
    fn cycles_are_preserved() {
        let mut heap = Heap::new();
        let ls = heap.alloc(ObjKind::List(vec![]));
        heap.modify(ls, |k| {
            if let ObjKind::List(items) = k {
                items.push(ls);
            }
        });
        let back = roundtrip(&mut heap, &[ls]);
        assert_eq!(heap.children(back[0]), vec![back[0]]);
    }

    #[test]
    fn nested_structures_keep_sharing() {
        let mut heap = Heap::new();
        let k = heap.alloc(ObjKind::Str("key".into()));
        let arr = heap.alloc(ObjKind::NdArray(vec![1.0, 2.0, 3.0]));
        let inner = heap.alloc(ObjKind::Dict(vec![(k, arr)]));
        let ser = heap.alloc(ObjKind::Series {
            name: "col".into(),
            values: arr,
        });
        let df = heap.alloc(ObjKind::DataFrame(vec![("a".into(), arr)]));
        let tup = heap.alloc(ObjKind::Tuple(vec![inner, ser, df]));
        let back = roundtrip(&mut heap, &[tup]);
        let children = heap.children(back[0]);
        let ser_arr = heap.children(children[1])[0];
        let df_arr = heap.children(children[2])[0];
        assert_eq!(ser_arr, df_arr, "array shared between Series and DataFrame");
    }

    #[test]
    fn generators_are_unserializable() {
        let mut heap = Heap::new();
        let g = heap.alloc(ObjKind::Generator { token: 1 });
        let ls = heap.alloc(ObjKind::List(vec![g]));
        let err = dumps(&heap, &[ls], &NoopReducer).expect_err("must fail");
        assert!(matches!(err, PickleError::Unserializable { .. }));
    }

    #[test]
    fn byte_exact_restorability() {
        // dumps(loads(dumps(x))) == dumps(x): the §5.3 exactness remark.
        let mut heap = Heap::new();
        let s = heap.alloc(ObjKind::Str("x".into()));
        let ls = heap.alloc(ObjKind::List(vec![s, s]));
        let blob1 = dumps(&heap, &[ls], &NoopReducer).expect("dumps");
        let back = loads(&mut heap, &blob1, &NoopReducer).expect("loads");
        let blob2 = dumps(&heap, &back, &NoopReducer).expect("dumps again");
        assert_eq!(blob1, blob2);
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let mut heap = Heap::new();
        let v = heap.alloc(ObjKind::Int(5));
        let mut blob = dumps(&heap, &[v], &NoopReducer).expect("dumps");
        blob[0] ^= 0xFF; // smash the magic
        assert!(matches!(
            loads(&mut heap, &blob, &NoopReducer),
            Err(PickleError::Corrupt { .. })
        ));
        let good = dumps(&heap, &[v], &NoopReducer).expect("dumps");
        assert!(loads(&mut heap, &good[..2], &NoopReducer).is_err());
    }

    #[test]
    fn functions_pickle_by_source() {
        let mut heap = Heap::new();
        let f = heap.alloc(ObjKind::Function {
            name: "f".into(),
            params: vec!["x".into()],
            source: "def f(x):\n    return x\n".into(),
        });
        let back = roundtrip(&mut heap, &[f]);
        assert_eq!(heap.kind(back[0]), heap.kind(f));
    }
}
