//! The reduction protocol (`__reduce__` analogue) for library classes.
//!
//! Built-in kinds know how to serialize themselves; `ObjKind::External`
//! objects delegate to a [`Reducer`]. The reducer decides whether the class
//! can be stored at all (dump-time failures), whether it can be rebuilt
//! (load-time failures), and whether its round trip is silently wrong
//! (§6.2's silent pickle errors). `kishu-libsim` implements a registry-backed
//! reducer with the paper's 146 classes; [`NoopReducer`] treats every class
//! as perfectly serializable.

use kishu_kernel::ClassId;

use crate::error::PickleError;

/// Serialization instructions for external (library) classes.
pub trait Reducer {
    /// Produce the storable byte representation of a class payload, or
    /// refuse ([`PickleError::Unserializable`]). The default stores the
    /// payload verbatim.
    fn reduce(&self, class: ClassId, payload: &[u8]) -> Result<Vec<u8>, PickleError> {
        let _ = class;
        Ok(payload.to_vec())
    }

    /// Rebuild a class payload from its stored bytes, or refuse
    /// ([`PickleError::DeserializeFailed`]). A *silently erroneous* class
    /// returns `Ok` with wrong bytes — the caller cannot tell.
    fn rebuild(&self, class: ClassId, stored: &[u8]) -> Result<Vec<u8>, PickleError> {
        let _ = class;
        Ok(stored.to_vec())
    }
}

/// A reducer that treats every class as cleanly serializable. Used by tests
/// and by baselines that don't model class-specific behaviour.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopReducer;

impl Reducer for NoopReducer {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_reducer_is_identity() {
        let r = NoopReducer;
        let payload = vec![1, 2, 3];
        let stored = r.reduce(ClassId(5), &payload).expect("reduce");
        assert_eq!(stored, payload);
        let back = r.rebuild(ClassId(5), &stored).expect("rebuild");
        assert_eq!(back, payload);
    }
}
