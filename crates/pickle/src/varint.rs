//! LEB128 variable-length integers and zigzag encoding, used throughout the
//! pickle format for lengths and integer payloads.

/// Append an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Zigzag-map a signed integer to unsigned.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Read an unsigned LEB128 varint from `bytes` starting at `*pos`,
/// advancing `*pos`. Returns `None` on truncation or overlong encoding.
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        result |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
}

/// Read a zigzag-encoded signed varint.
pub fn read_i64(bytes: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(bytes, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_u64(&buf[..buf.len() - 1], &mut pos), None);
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kishu_testkit::prelude::*;

    proptest! {
        #[test]
        fn u64_roundtrips(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos), Some(v));
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn i64_roundtrips(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }

        #[test]
        fn zigzag_bijection(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
