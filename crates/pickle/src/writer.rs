//! The pickle encoder.
//!
//! Pre-order walk of the object graph from the roots. Every object is
//! memoized on first encounter (before its children are encoded, so cycles
//! terminate); later encounters emit a back-reference. The byte stream is
//! fully deterministic given the graph shape, which is what makes Kishu's
//! "same bytestring before and after checkout" guarantee testable.

use std::collections::HashMap;

use kishu_kernel::{Heap, ObjId, ObjKind};

use crate::error::PickleError;
use crate::reduce::Reducer;
use crate::varint::{write_i64, write_u64};

/// Format magic (version 1).
pub const MAGIC: &[u8; 4] = b"KPK1";

/// Maximum nesting depth the encoder will follow.
pub const MAX_DEPTH: usize = 512;

/// Object tags of the wire format. Kept in one place so the reader and
/// writer cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// Back-reference to an already-encoded object.
    Ref = 0,
    /// `None`.
    None = 1,
    /// `True`.
    True = 2,
    /// `False`.
    False = 3,
    /// Signed integer.
    Int = 4,
    /// 64-bit float.
    Float = 5,
    /// UTF-8 string.
    Str = 6,
    /// List.
    List = 7,
    /// Tuple.
    Tuple = 8,
    /// Set.
    Set = 9,
    /// Dict.
    Dict = 10,
    /// Numeric array.
    NdArray = 11,
    /// Series.
    Series = 12,
    /// DataFrame.
    DataFrame = 13,
    /// Instance.
    Instance = 14,
    /// Function (by source).
    Function = 15,
    /// External class via reduction.
    External = 16,
}

impl Tag {
    /// Parse a tag byte.
    pub fn from_byte(b: u8) -> Option<Tag> {
        Some(match b {
            0 => Tag::Ref,
            1 => Tag::None,
            2 => Tag::True,
            3 => Tag::False,
            4 => Tag::Int,
            5 => Tag::Float,
            6 => Tag::Str,
            7 => Tag::List,
            8 => Tag::Tuple,
            9 => Tag::Set,
            10 => Tag::Dict,
            11 => Tag::NdArray,
            12 => Tag::Series,
            13 => Tag::DataFrame,
            14 => Tag::Instance,
            15 => Tag::Function,
            16 => Tag::External,
            _ => return None,
        })
    }
}

/// Streaming encoder over one heap.
pub struct Writer<'a> {
    heap: &'a Heap,
    reducer: &'a dyn Reducer,
    memo: HashMap<ObjId, u64>,
    out: Vec<u8>,
}

impl<'a> Writer<'a> {
    /// New encoder borrowing the heap and reduction instructions.
    pub fn new(heap: &'a Heap, reducer: &'a dyn Reducer) -> Self {
        Writer {
            heap,
            reducer,
            memo: HashMap::new(),
            out: Vec::new(),
        }
    }

    /// Encode the given roots into one blob.
    pub fn dump(mut self, roots: &[ObjId]) -> Result<Vec<u8>, PickleError> {
        self.out.extend_from_slice(MAGIC);
        write_u64(&mut self.out, roots.len() as u64);
        for root in roots {
            self.encode(*root, 0)?;
        }
        Ok(self.out)
    }

    fn write_str(&mut self, s: &str) {
        write_u64(&mut self.out, s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn encode(&mut self, id: ObjId, depth: usize) -> Result<(), PickleError> {
        if depth > MAX_DEPTH {
            return Err(PickleError::TooDeep);
        }
        if let Some(idx) = self.memo.get(&id) {
            self.out.push(Tag::Ref as u8);
            write_u64(&mut self.out, *idx);
            return Ok(());
        }
        let idx = self.memo.len() as u64;
        self.memo.insert(id, idx);
        match self.heap.kind(id) {
            ObjKind::None => self.out.push(Tag::None as u8),
            ObjKind::Bool(true) => self.out.push(Tag::True as u8),
            ObjKind::Bool(false) => self.out.push(Tag::False as u8),
            ObjKind::Int(v) => {
                self.out.push(Tag::Int as u8);
                write_i64(&mut self.out, *v);
            }
            ObjKind::Float(v) => {
                self.out.push(Tag::Float as u8);
                self.out.extend_from_slice(&v.to_le_bytes());
            }
            ObjKind::Str(s) => {
                let s = s.clone();
                self.out.push(Tag::Str as u8);
                self.write_str(&s);
            }
            ObjKind::List(items) | ObjKind::Tuple(items) | ObjKind::Set(items) => {
                let tag = match self.heap.kind(id) {
                    ObjKind::List(_) => Tag::List,
                    ObjKind::Tuple(_) => Tag::Tuple,
                    _ => Tag::Set,
                };
                let items = items.clone();
                self.out.push(tag as u8);
                write_u64(&mut self.out, items.len() as u64);
                for item in items {
                    self.encode(item, depth + 1)?;
                }
            }
            ObjKind::Dict(pairs) => {
                let pairs = pairs.clone();
                self.out.push(Tag::Dict as u8);
                write_u64(&mut self.out, pairs.len() as u64);
                for (k, v) in pairs {
                    self.encode(k, depth + 1)?;
                    self.encode(v, depth + 1)?;
                }
            }
            ObjKind::NdArray(values) => {
                let values = values.clone();
                self.out.push(Tag::NdArray as u8);
                write_u64(&mut self.out, values.len() as u64);
                for v in values {
                    self.out.extend_from_slice(&v.to_le_bytes());
                }
            }
            ObjKind::Series { name, values } => {
                let (name, values) = (name.clone(), *values);
                self.out.push(Tag::Series as u8);
                self.write_str(&name);
                self.encode(values, depth + 1)?;
            }
            ObjKind::DataFrame(cols) => {
                let cols = cols.clone();
                self.out.push(Tag::DataFrame as u8);
                write_u64(&mut self.out, cols.len() as u64);
                for (name, col) in cols {
                    self.write_str(&name);
                    self.encode(col, depth + 1)?;
                }
            }
            ObjKind::Instance { class_name, attrs } => {
                let (class_name, attrs) = (class_name.clone(), attrs.clone());
                self.out.push(Tag::Instance as u8);
                self.write_str(&class_name);
                write_u64(&mut self.out, attrs.len() as u64);
                for (name, v) in attrs {
                    self.write_str(&name);
                    self.encode(v, depth + 1)?;
                }
            }
            ObjKind::Function {
                name,
                params,
                source,
            } => {
                let (name, params, source) = (name.clone(), params.clone(), source.clone());
                self.out.push(Tag::Function as u8);
                self.write_str(&name);
                write_u64(&mut self.out, params.len() as u64);
                for p in &params {
                    self.write_str(p);
                }
                self.write_str(&source);
            }
            ObjKind::Generator { .. } => {
                return Err(PickleError::Unserializable {
                    type_tag: "generator".to_string(),
                });
            }
            ObjKind::External {
                class,
                attrs,
                payload,
                epoch,
            } => {
                let (class, attrs, payload, epoch) =
                    (*class, attrs.clone(), payload.clone(), *epoch);
                let reduced = self.reducer.reduce(class, &payload)?;
                self.out.push(Tag::External as u8);
                write_u64(&mut self.out, class.0 as u64);
                write_u64(&mut self.out, epoch);
                write_u64(&mut self.out, reduced.len() as u64);
                self.out.extend_from_slice(&reduced);
                write_u64(&mut self.out, attrs.len() as u64);
                for (name, v) in attrs {
                    self.write_str(&name);
                    self.encode(v, depth + 1)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::NoopReducer;

    #[test]
    fn tags_roundtrip_bytes() {
        for b in 0..=16u8 {
            let t = Tag::from_byte(b).expect("valid tag");
            assert_eq!(t as u8, b);
        }
        assert!(Tag::from_byte(17).is_none());
        assert!(Tag::from_byte(255).is_none());
    }

    #[test]
    fn deterministic_encoding() {
        let mut heap = Heap::new();
        let a = heap.alloc(ObjKind::Int(1));
        let ls = heap.alloc(ObjKind::List(vec![a, a]));
        let b1 = Writer::new(&heap, &NoopReducer).dump(&[ls]).expect("dump");
        let b2 = Writer::new(&heap, &NoopReducer).dump(&[ls]).expect("dump");
        assert_eq!(b1, b2);
    }

    #[test]
    fn shared_object_encoded_once() {
        let mut heap = Heap::new();
        let big = heap.alloc(ObjKind::NdArray(vec![0.0; 1000]));
        let one = Writer::new(&heap, &NoopReducer).dump(&[big]).expect("dump");
        let ls = heap.alloc(ObjKind::List(vec![big, big, big]));
        let three = Writer::new(&heap, &NoopReducer).dump(&[ls]).expect("dump");
        // Three references share one encoding: far smaller than 3 copies.
        assert!(three.len() < one.len() + 64);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut heap = Heap::new();
        let mut inner = heap.alloc(ObjKind::List(vec![]));
        for _ in 0..(MAX_DEPTH + 10) {
            inner = heap.alloc(ObjKind::List(vec![inner]));
        }
        assert_eq!(
            Writer::new(&heap, &NoopReducer).dump(&[inner]),
            Err(PickleError::TooDeep)
        );
    }
}
