//! Serializer chaining (§6.1): "Kishu will try CloudPickle first, then use
//! Dill as a fallback for co-variables that CloudPickle fails on."
//!
//! Per-co-variable storage makes serializers composable: each co-variable
//! is one independent blob, so a class one library cannot reduce can simply
//! be handled by the next. [`ChainReducer`] implements that policy over any
//! two [`Reducer`]s and counts how often the fallback fired.

use std::cell::Cell;

use kishu_kernel::ClassId;

use crate::error::PickleError;
use crate::reduce::Reducer;

/// Tries a primary reducer and falls back to a secondary on
/// [`PickleError::Unserializable`]. Rebuild consults the same order, so a
/// blob written by the fallback loads through the fallback (both reducers
/// must agree on the payload encoding, as CloudPickle and Dill agree on the
/// pickle wire format).
pub struct ChainReducer<P, F> {
    primary: P,
    fallback: F,
    fallback_hits: Cell<u64>,
}

impl<P: Reducer, F: Reducer> ChainReducer<P, F> {
    /// Chain `primary` before `fallback`.
    pub fn new(primary: P, fallback: F) -> Self {
        ChainReducer {
            primary,
            fallback,
            fallback_hits: Cell::new(0),
        }
    }

    /// How many reductions the primary refused and the fallback served.
    pub fn fallback_hits(&self) -> u64 {
        self.fallback_hits.get()
    }
}

impl<P: Reducer, F: Reducer> Reducer for ChainReducer<P, F> {
    fn reduce(&self, class: ClassId, payload: &[u8]) -> Result<Vec<u8>, PickleError> {
        match self.primary.reduce(class, payload) {
            Err(PickleError::Unserializable { .. }) => {
                self.fallback_hits.set(self.fallback_hits.get() + 1);
                self.fallback.reduce(class, payload)
            }
            other => other,
        }
    }

    fn rebuild(&self, class: ClassId, stored: &[u8]) -> Result<Vec<u8>, PickleError> {
        match self.primary.rebuild(class, stored) {
            Err(PickleError::DeserializeFailed { .. }) => self.fallback.rebuild(class, stored),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::NoopReducer;
    use crate::{dumps, loads};
    use kishu_kernel::{Heap, ObjKind};

    /// A "CloudPickle": refuses odd class ids.
    struct Picky;
    impl Reducer for Picky {
        fn reduce(&self, class: ClassId, payload: &[u8]) -> Result<Vec<u8>, PickleError> {
            if class.0 % 2 == 1 {
                return Err(PickleError::Unserializable {
                    type_tag: format!("class {}", class.0),
                });
            }
            Ok(payload.to_vec())
        }
    }

    fn external(heap: &mut Heap, class: u16) -> kishu_kernel::ObjId {
        heap.alloc(ObjKind::External {
            class: ClassId(class),
            attrs: Vec::new(),
            payload: vec![7; 16],
            epoch: 0,
        })
    }

    #[test]
    fn fallback_serves_what_the_primary_refuses() {
        let chain = ChainReducer::new(Picky, NoopReducer);
        let mut heap = Heap::new();
        let even = external(&mut heap, 2);
        let odd = external(&mut heap, 3);
        // Even: primary handles it, no fallback hit.
        let blob = dumps(&heap, &[even], &chain).expect("primary path");
        assert_eq!(chain.fallback_hits(), 0);
        loads(&mut heap, &blob, &chain).expect("loads");
        // Odd: primary refuses, fallback saves the day.
        let blob = dumps(&heap, &[odd], &chain).expect("fallback path");
        assert_eq!(chain.fallback_hits(), 1);
        let back = loads(&mut heap, &blob, &chain).expect("loads");
        assert_eq!(heap.kind(back[0]), heap.kind(odd));
    }

    #[test]
    fn chain_of_two_picky_reducers_still_fails() {
        let chain = ChainReducer::new(Picky, Picky);
        let mut heap = Heap::new();
        let odd = external(&mut heap, 5);
        assert!(matches!(
            dumps(&heap, &[odd], &chain),
            Err(PickleError::Unserializable { .. })
        ));
        assert_eq!(chain.fallback_hits(), 1, "the fallback was consulted");
    }

}
