//! Serialization error taxonomy.

use std::fmt;

/// Errors raised while pickling or unpickling an object graph. The variants
/// map one-to-one onto the failure classes the paper's evaluation
/// distinguishes (Fig 12, Table 4, §6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PickleError {
    /// The closure contains an object that has no serialization
    /// instructions (a generator, a live hash, `pl.LazyFrame`, ...). Raised
    /// at *dump* time; Kishu responds by skipping storage and relying on
    /// fallback recomputation (§5.1).
    Unserializable {
        /// Type tag or class name of the offending object.
        type_tag: String,
    },
    /// The blob was written fine but the class refuses to rebuild
    /// (`bokeh.figure`'s deserialize failure). Raised at *load* time.
    DeserializeFailed {
        /// Class name or reason.
        reason: String,
    },
    /// The byte stream is malformed (truncation, bad magic, bad memo ref).
    Corrupt {
        /// Byte offset where decoding failed.
        offset: usize,
        /// What went wrong.
        reason: String,
    },
    /// Structural limits exceeded (pathological nesting depth).
    TooDeep,
}

impl fmt::Display for PickleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PickleError::Unserializable { type_tag } => {
                write!(f, "cannot pickle object of type `{type_tag}`")
            }
            PickleError::DeserializeFailed { reason } => {
                write!(f, "failed to deserialize: {reason}")
            }
            PickleError::Corrupt { offset, reason } => {
                write!(f, "corrupt pickle stream at byte {offset}: {reason}")
            }
            PickleError::TooDeep => write!(f, "object graph exceeds nesting-depth limit"),
        }
    }
}

impl std::error::Error for PickleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PickleError::Unserializable { type_tag: "generator".into() };
        assert!(e.to_string().contains("generator"));
        let e = PickleError::Corrupt { offset: 7, reason: "bad tag".into() };
        assert!(e.to_string().contains("byte 7"));
    }
}
