//! The pickle decoder.
//!
//! Mirrors the writer's pre-order memoization: when a container tag is read,
//! an empty object is allocated and memoized *before* its children are
//! decoded, so back-references (including cycles) resolve to the right
//! handle; the container is then filled in place.

use kishu_kernel::{ClassId, Heap, ObjId, ObjKind};

use crate::error::PickleError;
use crate::reduce::Reducer;
use crate::varint::{read_i64, read_u64};
use crate::writer::{Tag, MAGIC, MAX_DEPTH};

/// Streaming decoder for one blob.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    reducer: &'a dyn Reducer,
    memo: Vec<ObjId>,
}

impl<'a> Reader<'a> {
    /// New decoder over a blob.
    pub fn new(bytes: &'a [u8], reducer: &'a dyn Reducer) -> Self {
        Reader {
            bytes,
            pos: 0,
            reducer,
            memo: Vec::new(),
        }
    }

    /// Decode the blob into `heap`, returning the root handles.
    pub fn load(mut self, heap: &mut Heap) -> Result<Vec<ObjId>, PickleError> {
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(self.corrupt("bad magic"));
        }
        let count = self.u64()? as usize;
        if count > self.bytes.len() {
            return Err(self.corrupt("implausible root count"));
        }
        let mut roots = Vec::with_capacity(count);
        for _ in 0..count {
            roots.push(self.decode(heap, 0)?);
        }
        Ok(roots)
    }

    fn corrupt(&self, reason: &str) -> PickleError {
        PickleError::Corrupt {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PickleError> {
        if self.pos + n > self.bytes.len() {
            return Err(PickleError::Corrupt {
                offset: self.pos,
                reason: "unexpected end of stream".to_string(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, PickleError> {
        read_u64(self.bytes, &mut self.pos).ok_or_else(|| PickleError::Corrupt {
            offset: self.pos,
            reason: "bad varint".to_string(),
        })
    }

    fn i64(&mut self) -> Result<i64, PickleError> {
        read_i64(self.bytes, &mut self.pos).ok_or_else(|| PickleError::Corrupt {
            offset: self.pos,
            reason: "bad varint".to_string(),
        })
    }

    fn f64(&mut self) -> Result<f64, PickleError> {
        let raw = self.take(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(f64::from_le_bytes(bytes))
    }

    fn string(&mut self) -> Result<String, PickleError> {
        let len = self.u64()? as usize;
        if len > self.bytes.len() {
            return Err(self.corrupt("implausible string length"));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| PickleError::Corrupt {
            offset: self.pos,
            reason: "invalid utf-8".to_string(),
        })
    }

    fn decode(&mut self, heap: &mut Heap, depth: usize) -> Result<ObjId, PickleError> {
        if depth > MAX_DEPTH {
            return Err(PickleError::TooDeep);
        }
        let tag_byte = self.take(1)?[0];
        let tag = Tag::from_byte(tag_byte).ok_or_else(|| PickleError::Corrupt {
            offset: self.pos,
            reason: format!("unknown tag {tag_byte}"),
        })?;
        match tag {
            Tag::Ref => {
                let idx = self.u64()? as usize;
                self.memo.get(idx).copied().ok_or_else(|| PickleError::Corrupt {
                    offset: self.pos,
                    reason: format!("dangling memo reference {idx}"),
                })
            }
            Tag::None => self.leaf(heap, ObjKind::None),
            Tag::True => self.leaf(heap, ObjKind::Bool(true)),
            Tag::False => self.leaf(heap, ObjKind::Bool(false)),
            Tag::Int => {
                let v = self.i64()?;
                self.leaf(heap, ObjKind::Int(v))
            }
            Tag::Float => {
                let v = self.f64()?;
                self.leaf(heap, ObjKind::Float(v))
            }
            Tag::Str => {
                let s = self.string()?;
                self.leaf(heap, ObjKind::Str(s))
            }
            Tag::List => self.container(heap, depth, ContainerKind::List),
            Tag::Tuple => self.container(heap, depth, ContainerKind::Tuple),
            Tag::Set => self.container(heap, depth, ContainerKind::Set),
            Tag::Dict => {
                let count = self.u64()? as usize;
                if count > self.bytes.len() {
                    return Err(self.corrupt("implausible dict size"));
                }
                let id = heap.alloc(ObjKind::Dict(Vec::new()));
                self.memo.push(id);
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let k = self.decode(heap, depth + 1)?;
                    let v = self.decode(heap, depth + 1)?;
                    pairs.push((k, v));
                }
                heap.replace(id, ObjKind::Dict(pairs));
                Ok(id)
            }
            Tag::NdArray => {
                let count = self.u64()? as usize;
                if count.saturating_mul(8) > self.bytes.len() {
                    return Err(self.corrupt("implausible array size"));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(self.f64()?);
                }
                self.leaf(heap, ObjKind::NdArray(values))
            }
            Tag::Series => {
                let name = self.string()?;
                let placeholder = heap.alloc(ObjKind::None);
                let id = heap.alloc(ObjKind::Series {
                    name: name.clone(),
                    values: placeholder,
                });
                self.memo.push(id);
                let values = self.decode(heap, depth + 1)?;
                heap.replace(id, ObjKind::Series { name, values });
                Ok(id)
            }
            Tag::DataFrame => {
                let count = self.u64()? as usize;
                if count > self.bytes.len() {
                    return Err(self.corrupt("implausible column count"));
                }
                let id = heap.alloc(ObjKind::DataFrame(Vec::new()));
                self.memo.push(id);
                let mut cols = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = self.string()?;
                    let col = self.decode(heap, depth + 1)?;
                    cols.push((name, col));
                }
                heap.replace(id, ObjKind::DataFrame(cols));
                Ok(id)
            }
            Tag::Instance => {
                let class_name = self.string()?;
                let count = self.u64()? as usize;
                if count > self.bytes.len() {
                    return Err(self.corrupt("implausible attr count"));
                }
                let id = heap.alloc(ObjKind::Instance {
                    class_name: class_name.clone(),
                    attrs: Vec::new(),
                });
                self.memo.push(id);
                let mut attrs = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = self.string()?;
                    let v = self.decode(heap, depth + 1)?;
                    attrs.push((name, v));
                }
                heap.replace(id, ObjKind::Instance { class_name, attrs });
                Ok(id)
            }
            Tag::Function => {
                let name = self.string()?;
                let count = self.u64()? as usize;
                if count > self.bytes.len() {
                    return Err(self.corrupt("implausible param count"));
                }
                let mut params = Vec::with_capacity(count);
                for _ in 0..count {
                    params.push(self.string()?);
                }
                let source = self.string()?;
                self.leaf(
                    heap,
                    ObjKind::Function {
                        name,
                        params,
                        source,
                    },
                )
            }
            Tag::External => {
                let class = ClassId(self.u64()? as u16);
                let epoch = self.u64()?;
                let len = self.u64()? as usize;
                if len > self.bytes.len() {
                    return Err(self.corrupt("implausible payload length"));
                }
                let stored = self.take(len)?.to_vec();
                let payload = self.reducer.rebuild(class, &stored)?;
                let id = heap.alloc(ObjKind::External {
                    class,
                    attrs: Vec::new(),
                    payload,
                    epoch,
                });
                self.memo.push(id);
                let count = self.u64()? as usize;
                if count > self.bytes.len() {
                    return Err(self.corrupt("implausible attr count"));
                }
                let mut attrs = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = self.string()?;
                    let v = self.decode(heap, depth + 1)?;
                    attrs.push((name, v));
                }
                heap.modify(id, |k| {
                    if let ObjKind::External { attrs: a, .. } = k {
                        *a = attrs;
                    }
                });
                Ok(id)
            }
        }
    }

    fn leaf(&mut self, heap: &mut Heap, kind: ObjKind) -> Result<ObjId, PickleError> {
        let id = heap.alloc(kind);
        self.memo.push(id);
        Ok(id)
    }

    fn container(
        &mut self,
        heap: &mut Heap,
        depth: usize,
        which: ContainerKind,
    ) -> Result<ObjId, PickleError> {
        let count = self.u64()? as usize;
        if count > self.bytes.len() {
            return Err(self.corrupt("implausible container size"));
        }
        let id = heap.alloc(which.empty());
        self.memo.push(id);
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(self.decode(heap, depth + 1)?);
        }
        heap.replace(id, which.filled(items));
        Ok(id)
    }
}

#[derive(Clone, Copy)]
enum ContainerKind {
    List,
    Tuple,
    Set,
}

impl ContainerKind {
    fn empty(self) -> ObjKind {
        self.filled(Vec::new())
    }

    fn filled(self, items: Vec<ObjId>) -> ObjKind {
        match self {
            ContainerKind::List => ObjKind::List(items),
            ContainerKind::Tuple => ObjKind::Tuple(items),
            ContainerKind::Set => ObjKind::Set(items),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reduce::NoopReducer;
    use crate::{dumps, loads};
    use kishu_testkit::prelude::*;

    /// A recipe for building a random object graph deterministically.
    #[derive(Debug, Clone)]
    enum Recipe {
        Int(i64),
        Float(f64),
        Str(String),
        Bool(bool),
        None,
        List(Vec<Recipe>),
        Dict(Vec<(String, Recipe)>),
        Array(Vec<f64>),
    }

    fn recipe_strategy() -> impl Strategy<Value = Recipe> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(Recipe::Int),
            any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Recipe::Float),
            "[a-z]{0,12}".prop_map(Recipe::Str),
            any::<bool>().prop_map(Recipe::Bool),
            Just(Recipe::None),
            prop::collection::vec(any::<f64>().prop_filter("finite", |f| f.is_finite()), 0..20)
                .prop_map(Recipe::Array),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..8).prop_map(Recipe::List),
                prop::collection::vec(("[a-z]{1,6}", inner), 0..6).prop_map(Recipe::Dict),
            ]
        })
    }

    fn build(heap: &mut Heap, r: &Recipe) -> ObjId {
        match r {
            Recipe::Int(v) => heap.alloc(ObjKind::Int(*v)),
            Recipe::Float(v) => heap.alloc(ObjKind::Float(*v)),
            Recipe::Str(s) => heap.alloc(ObjKind::Str(s.clone())),
            Recipe::Bool(b) => heap.alloc(ObjKind::Bool(*b)),
            Recipe::None => heap.alloc(ObjKind::None),
            Recipe::Array(vs) => heap.alloc(ObjKind::NdArray(vs.clone())),
            Recipe::List(items) => {
                let ids: Vec<ObjId> = items.iter().map(|i| build(heap, i)).collect();
                heap.alloc(ObjKind::List(ids))
            }
            Recipe::Dict(pairs) => {
                let ps: Vec<(ObjId, ObjId)> = pairs
                    .iter()
                    .map(|(k, v)| {
                        let kid = heap.alloc(ObjKind::Str(k.clone()));
                        let vid = build(heap, v);
                        (kid, vid)
                    })
                    .collect();
                heap.alloc(ObjKind::Dict(ps))
            }
        }
    }

    /// Structural equality of two decoded graphs (ignoring ObjIds).
    fn structurally_equal(heap: &Heap, a: ObjId, b: ObjId) -> bool {
        match (heap.kind(a), heap.kind(b)) {
            (ka, kb) if ka.is_primitive() && kb.is_primitive() => ka == kb,
            (ObjKind::NdArray(x), ObjKind::NdArray(y)) => x == y,
            (ObjKind::List(x), ObjKind::List(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|(i, j)| structurally_equal(heap, *i, *j))
            }
            (ObjKind::Dict(x), ObjKind::Dict(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|((kx, vx), (ky, vy))| {
                        structurally_equal(heap, *kx, *ky) && structurally_equal(heap, *vx, *vy)
                    })
            }
            _ => false,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn arbitrary_graphs_roundtrip(recipe in recipe_strategy()) {
            let mut heap = Heap::new();
            let root = build(&mut heap, &recipe);
            let blob = dumps(&heap, &[root], &NoopReducer).expect("dumps");
            let back = loads(&mut heap, &blob, &NoopReducer).expect("loads");
            prop_assert!(structurally_equal(&heap, root, back[0]));
        }

        #[test]
        fn redump_is_byte_identical(recipe in recipe_strategy()) {
            let mut heap = Heap::new();
            let root = build(&mut heap, &recipe);
            let blob1 = dumps(&heap, &[root], &NoopReducer).expect("dumps");
            let back = loads(&mut heap, &blob1, &NoopReducer).expect("loads");
            let blob2 = dumps(&heap, &back, &NoopReducer).expect("redump");
            prop_assert_eq!(blob1, blob2);
        }

        #[test]
        fn decoder_never_panics_on_corruption(
            recipe in recipe_strategy(),
            flip in any::<(usize, u8)>(),
        ) {
            let mut heap = Heap::new();
            let root = build(&mut heap, &recipe);
            let mut blob = dumps(&heap, &[root], &NoopReducer).expect("dumps");
            if !blob.is_empty() {
                let idx = flip.0 % blob.len();
                blob[idx] ^= flip.1 | 1;
            }
            // Must either decode to something or return an error — no panic.
            let _ = loads(&mut heap, &blob, &NoopReducer);
        }

        #[test]
        fn decoder_never_panics_on_truncation(recipe in recipe_strategy(), cut in any::<usize>()) {
            let mut heap = Heap::new();
            let root = build(&mut heap, &recipe);
            let blob = dumps(&heap, &[root], &NoopReducer).expect("dumps");
            let cut = cut % (blob.len() + 1);
            let _ = loads(&mut heap, &blob[..cut], &NoopReducer);
        }
    }
}
