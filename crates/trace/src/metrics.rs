//! Named counters and log₂-bucketed histograms, snapshotable as JSON.
//!
//! Metric values are `u64` — byte counts, nanoseconds, event counts.
//! Histograms use power-of-two buckets (bucket *i* covers `[2^(i-1),
//! 2^i)`, bucket 0 is exactly zero), which spans the full `u64` range in
//! 65 fixed slots: plenty of resolution for "where do blob sizes /
//! latencies cluster" without configuring bounds per metric.

use std::collections::BTreeMap;

use kishu_testkit::json::Json;

/// A log₂-bucketed histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts zero samples; `buckets[i]` (i ≥ 1) counts
    /// samples in `[2^(i-1), 2^i)`.
    pub buckets: [u64; 65],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample seen (`u64::MAX` before any sample).
    pub min: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// The bucket index for a value: 0 for 0, else `65 - leading_zeros`
    /// — i.e. one more than the position of the highest set bit.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// JSON snapshot: count/sum/min/max plus the non-empty buckets as
    /// `[[floor, count], …]` (deterministic: ascending floors).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                Json::Array(vec![
                    Json::Int(Self::bucket_floor(i) as i64),
                    Json::Int(*c as i64),
                ])
            })
            .collect();
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            (
                "min",
                Json::Int(if self.count == 0 { 0 } else { self.min as i64 }),
            ),
            ("max", Json::Int(self.max as i64)),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

/// The registry: named counters and histograms, iterated in name order so
/// every snapshot serializes deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Add `delta` to the named counter (created at zero on first use).
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Record a histogram sample (histogram created on first use).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// The named counter's value, if it was ever touched.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named histogram, if it was ever touched.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// No metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// JSON snapshot: `{"counters":{...},"histograms":{...}}`, keys in
    /// name order.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two_exactly() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every bucket's floor maps back into that bucket, and floor-1
        // maps strictly below it.
        for i in 1..=64usize {
            let floor = Histogram::bucket_floor(i);
            assert_eq!(Histogram::bucket_index(floor), i, "floor of bucket {i}");
            assert!(Histogram::bucket_index(floor - 1) < i, "below bucket {i}");
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 5, 4096] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 4103);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 4096);
        assert_eq!(h.mean(), 820);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 2); // the two ones
        assert_eq!(h.buckets[3], 1); // 5 in [4,8)
        assert_eq!(h.buckets[13], 1); // 4096 in [4096,8192)
    }

    #[test]
    fn json_snapshot_is_deterministic_and_sparse() {
        let mut m = MetricsRegistry::default();
        m.counter("zebra", 1);
        m.counter("apple", 2);
        m.observe("lat", 3);
        m.observe("lat", 1000);
        let dump = m.to_json().dump();
        // BTreeMap ordering: apple before zebra regardless of insert order.
        assert!(dump.find("apple").unwrap() < dump.find("zebra").unwrap());
        let j = m.to_json();
        let h = j.get("histograms").and_then(|h| h.get("lat")).unwrap();
        assert_eq!(h.get("count").and_then(Json::as_i64), Some(2));
        // Only 2 non-empty buckets serialized out of 65.
        let Some(Json::Array(b)) = h.get("buckets") else {
            panic!("buckets array")
        };
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn empty_histogram_snapshot_is_sane() {
        let h = Histogram::default();
        let j = h.to_json();
        assert_eq!(j.get("min").and_then(Json::as_i64), Some(0));
        assert_eq!(j.get("max").and_then(Json::as_i64), Some(0));
        assert_eq!(h.mean(), 0);
    }
}
