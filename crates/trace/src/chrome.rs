//! Exporters: Chrome `trace_event` JSON and a human text summary.
//!
//! Both are pure functions over `(&[SpanRecord], metrics)` so the byte
//! format is golden-testable without clocks (mirroring the
//! CheckpointGraph blob-format golden test). The Chrome output follows
//! the JSON Object Format of the Trace Event spec — an object with a
//! `traceEvents` array — and loads directly in `chrome://tracing` and
//! Perfetto: `"M"` metadata events name the threads (`session`,
//! `worker-N`), `"X"` complete events carry each span with microsecond
//! `ts`/`dur`; nesting is rendered from timestamp containment per `tid`,
//! which our LIFO span discipline guarantees.

use kishu_testkit::json::Json;

use crate::{MetricsRegistry, SpanRecord};

/// Display name for a `tid` (0 = session thread, `w+1` = pool worker w).
pub fn thread_name(tid: u32) -> String {
    if tid == 0 {
        "session".to_string()
    } else {
        format!("worker-{}", tid - 1)
    }
}

/// Build the Chrome `trace_event` document. `metrics` (a
/// [`MetricsRegistry::to_json`] snapshot) rides along under `otherData`.
/// Deterministic: events appear as metadata (ascending tid) then spans in
/// input order; `ts`/`dur` are microseconds (`ns / 1000`).
pub fn chrome_json(spans: &[SpanRecord], metrics: &Json) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(tid as i64)),
            (
                "args",
                Json::obj(vec![("name", Json::Str(thread_name(tid)))]),
            ),
        ]));
    }
    for s in spans {
        let mut args: Vec<(String, Json)> = vec![("id".to_string(), Json::Int(s.id as i64))];
        if let Some(p) = s.parent {
            args.push(("parent".to_string(), Json::Int(p as i64)));
        }
        for (k, v) in &s.args {
            args.push((k.clone(), Json::Str(v.clone())));
        }
        events.push(Json::obj(vec![
            ("name", Json::Str(s.name.clone())),
            ("cat", Json::Str("kishu".into())),
            ("ph", Json::Str("X".into())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(s.tid as i64)),
            ("ts", Json::Float(s.start_ns as f64 / 1000.0)),
            ("dur", Json::Float(s.dur_ns as f64 / 1000.0)),
            ("args", Json::Object(args)),
        ]));
    }
    Json::obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        ("otherData", metrics.clone()),
        ("traceEvents", Json::Array(events)),
    ])
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Human-readable summary: per-span-name aggregates (sorted by total
/// time, descending; name breaks ties), then counters, then histograms.
pub fn text_summary(spans: &[SpanRecord], metrics: &MetricsRegistry) -> String {
    use std::collections::BTreeMap;
    // name -> (count, total, min, max)
    let mut agg: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = agg.entry(&s.name).or_insert((0, 0, u64::MAX, 0));
        e.0 += 1;
        e.1 += s.dur_ns;
        e.2 = e.2.min(s.dur_ns);
        e.3 = e.3.max(s.dur_ns);
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
    let mut out = String::new();
    out.push_str(&format!("spans: {} recorded\n", spans.len()));
    out.push_str(&format!(
        "{:<24} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
        "name", "count", "total", "mean", "min", "max"
    ));
    for (name, (count, total, min, max)) in rows {
        out.push_str(&format!(
            "{:<24} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            name,
            count,
            fmt_ns(total),
            fmt_ns(total / count.max(1)),
            fmt_ns(min),
            fmt_ns(max)
        ));
    }
    let counters: Vec<_> = metrics.counters().collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in counters {
            out.push_str(&format!("  {name:<24} {v}\n"));
        }
    }
    let histograms: Vec<_> = metrics.histograms().collect();
    if !histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in histograms {
            out.push_str(&format!(
                "  {name:<24} count={} mean={} min={} max={}\n",
                h.count,
                h.mean(),
                if h.count == 0 { 0 } else { h.min },
                h.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "ckpt".into(),
                start_ns: 1_000,
                dur_ns: 8_000,
                tid: 0,
                args: vec![],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "ckpt.seal".into(),
                start_ns: 2_500,
                dur_ns: 4_000,
                tid: 1,
                args: vec![("bytes".into(), "64".into())],
            },
        ]
    }

    /// Golden bytes: the exporter's output format is an interchange
    /// format (Perfetto reads it), so pin it exactly — any change to
    /// field order, float formatting, or event shape must be deliberate.
    #[test]
    fn golden_bytes_pin_the_chrome_trace_format() {
        let doc = chrome_json(&sample_spans(), &MetricsRegistry::default().to_json());
        let expected = concat!(
            r#"{"displayTimeUnit":"ms","#,
            r#""otherData":{"counters":{},"histograms":{}},"#,
            r#""traceEvents":["#,
            r#"{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"session"}},"#,
            r#"{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"worker-0"}},"#,
            r#"{"name":"ckpt","cat":"kishu","ph":"X","pid":1,"tid":0,"ts":1.0,"dur":8.0,"#,
            r#""args":{"id":1}},"#,
            r#"{"name":"ckpt.seal","cat":"kishu","ph":"X","pid":1,"tid":1,"ts":2.5,"dur":4.0,"#,
            r#""args":{"id":2,"parent":1,"bytes":"64"}}"#,
            r#"]}"#,
        );
        assert_eq!(doc.dump(), expected);
        // And the document round-trips through the parser.
        let back = Json::parse(&doc.dump()).expect("chrome json parses");
        let Some(Json::Array(ev)) = back.get("traceEvents") else {
            panic!("traceEvents array");
        };
        assert_eq!(ev.len(), 4);
    }

    #[test]
    fn text_summary_aggregates_by_name() {
        let mut metrics = MetricsRegistry::default();
        metrics.counter("blob.dedup_hits", 3);
        metrics.observe("blob.bytes", 64);
        let text = text_summary(&sample_spans(), &metrics);
        assert!(text.contains("spans: 2 recorded"), "{text}");
        assert!(text.contains("ckpt.seal"), "{text}");
        assert!(text.contains("blob.dedup_hits"), "{text}");
        assert!(text.contains("4.0us"), "{text}");
    }
}
