//! In-tree observability for the Kishu reproduction: structured spans,
//! a counter/histogram metrics registry, and exporters (Chrome
//! `trace_event` JSON for `chrome://tracing`/Perfetto, plus a human text
//! summary). Zero registry dependencies — JSON rides on `kishu-testkit`,
//! honoring the workspace's hermetic-build invariant.
//!
//! # Design constraints
//!
//! The hard requirement (a ROADMAP invariant) is that **enabling tracing
//! changes no behavior**: no RNG draws, no reordering of `FaultStore`
//! decisions, no store operations moved across threads. The crate is built
//! so instrumented code cannot accidentally violate that:
//!
//! * A [`Trace`] handle is either *enabled* (holds shared state) or
//!   *disabled* (holds nothing). Disabled is the default; every recording
//!   call on a disabled handle is a no-op that touches no shared state.
//! * Finished spans are appended to a **per-thread buffer** and only
//!   drained into the shared record list when the thread's span stack
//!   empties (end of a top-level span, or end of a [`Trace::worker_scope`]
//!   on a pool worker). The hot path takes no locks per span; draining
//!   takes one lock per batch.
//! * [`SpanGuard::end`] always returns the measured duration — even on a
//!   disabled handle — so report fields (`checkpoint_time`,
//!   `CheckoutReport::wall_time`, per-phase nanosecond breakdowns) are
//!   *derived views over spans* rather than a second set of stopwatches.
//!   There is exactly one clock read per phase boundary, tracing on or
//!   off.
//!
//! # Thread attribution
//!
//! Spans carry a `tid`: `0` for the session thread (or any non-pool
//! thread), `w + 1` for pool worker `w` (via
//! [`kishu_testkit::pool::current_worker`]). Fan-out jobs run inside
//! [`Trace::worker_scope`], which parents their spans under a span id
//! captured on the session thread, so Chrome exports show per-worker
//! serialize/seal and verify/decode lanes nested under the session-side
//! phase.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use kishu_testkit::json::Json;

pub mod chrome;
pub mod metrics;

pub use metrics::{Histogram, MetricsRegistry};

/// Identifier of a span, unique within one [`Trace`]. Ids start at 1.
pub type SpanId = u64;

/// One finished span. `start_ns` is relative to the trace's epoch (the
/// moment the [`Trace`] was created); `tid` is the pool-worker attribution
/// (`0` = session thread, `w + 1` = pool worker `w`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace (allocation order, starting at 1).
    pub id: SpanId,
    /// Enclosing span at creation time, if any.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `"ckpt.serialize"`.
    pub name: String,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Thread attribution: `0` session thread, `w + 1` pool worker `w`.
    pub tid: u32,
    /// Free-form key/value annotations (blob ids, byte counts, fault
    /// kinds, ledger indices…).
    pub args: Vec<(String, String)>,
}

#[derive(Debug)]
struct TraceInner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: Mutex<MetricsRegistry>,
}

thread_local! {
    /// Stack of active span contexts on this thread: `(trace, span id)`.
    /// [`SpanGuard`]s push/pop; [`Trace::worker_scope`] pushes a base
    /// frame carrying the session-side parent id (`span` may be `None`
    /// for a scope with no parent).
    static STACK: RefCell<Vec<(Arc<TraceInner>, Option<SpanId>)>> =
        const { RefCell::new(Vec::new()) };
    /// Finished spans awaiting a drain into their trace's shared list.
    static BUFFER: RefCell<Vec<(Arc<TraceInner>, SpanRecord)>> =
        const { RefCell::new(Vec::new()) };
}

/// A cloneable handle to one trace, or a no-op placeholder.
///
/// `Trace::default()` / [`Trace::disabled`] record nothing and allocate
/// nothing; [`Trace::enabled`] starts a fresh trace whose spans and
/// metrics accumulate until exported. Cloning shares the underlying
/// trace.
#[derive(Debug, Clone, Default)]
pub struct Trace(Option<Arc<TraceInner>>);

impl Trace {
    /// A handle that records nothing. All calls are no-ops (but
    /// [`SpanGuard::end`] still measures wall time).
    pub fn disabled() -> Trace {
        Trace(None)
    }

    /// Start a fresh, recording trace. The epoch (t=0 of every span's
    /// `start_ns`) is now.
    pub fn enabled() -> Trace {
        Trace(Some(Arc::new(TraceInner {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            metrics: Mutex::new(MetricsRegistry::default()),
        })))
    }

    /// Is this handle recording?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open a span. The parent is the innermost span already open on
    /// *this thread* for *this trace* (so nesting needs no explicit
    /// plumbing); across pool workers, use [`Trace::worker_scope`] to
    /// seed the parent. Always returns a guard whose [`SpanGuard::end`]
    /// measures wall time; recording happens only when enabled.
    pub fn span(&self, name: &str) -> SpanGuard {
        let start = Instant::now();
        let Some(inner) = &self.0 else {
            return SpanGuard { start, open: None };
        };
        let parent = STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| Arc::ptr_eq(t, inner))
                .and_then(|(_, id)| *id)
        });
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| s.borrow_mut().push((inner.clone(), Some(id))));
        SpanGuard {
            start,
            open: Some(OpenSpan {
                inner: inner.clone(),
                id,
                parent,
                name: name.to_string(),
                args: Vec::new(),
            }),
        }
    }

    /// The id of the innermost span open on this thread for this trace.
    /// Capture it on the session thread and hand it to
    /// [`Trace::worker_scope`] inside pool jobs.
    pub fn current_span_id(&self) -> Option<SpanId> {
        let Some(inner) = &self.0 else { return None };
        STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| Arc::ptr_eq(t, inner))
                .and_then(|(_, id)| *id)
        })
    }

    /// Run `f` with this trace active on the current thread, parenting
    /// any spans it opens under `parent` (a span id captured on the
    /// spawning thread). On exit the scope is popped and this thread's
    /// span buffer is drained. Intended for `kishu_testkit::pool` jobs;
    /// a no-op wrapper when disabled.
    pub fn worker_scope<R>(&self, parent: Option<SpanId>, f: impl FnOnce() -> R) -> R {
        let Some(inner) = &self.0 else { return f() };
        STACK.with(|s| s.borrow_mut().push((inner.clone(), parent)));
        let out = f();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        flush_thread_buffer();
        out
    }

    /// Add `delta` to the named counter. No-op when disabled.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.0 {
            inner.metrics.lock().expect("metrics poisoned").counter(name, delta);
        }
    }

    /// Record `value` into the named log₂-bucketed histogram. No-op when
    /// disabled.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.0 {
            inner.metrics.lock().expect("metrics poisoned").observe(name, value);
        }
    }

    /// Snapshot every finished span recorded so far (call on the session
    /// thread after work completes — worker buffers drain when their
    /// `worker_scope` exits, the session buffer when its top-level span
    /// ends).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.0 {
            Some(inner) => inner.spans.lock().expect("spans poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.0 {
            Some(inner) => inner.metrics.lock().expect("metrics poisoned").clone(),
            None => MetricsRegistry::default(),
        }
    }

    /// Chrome `trace_event` JSON of everything recorded so far (see
    /// [`chrome::chrome_json`]).
    pub fn chrome_json(&self) -> Json {
        chrome::chrome_json(&self.spans(), &self.metrics().to_json())
    }

    /// Human-readable per-span-name and metrics summary.
    pub fn text_summary(&self) -> String {
        chrome::text_summary(&self.spans(), &self.metrics())
    }
}

/// Drain this thread's finished-span buffer into the owning traces'
/// shared lists, batching consecutive same-trace records under one lock.
fn flush_thread_buffer() {
    let drained: Vec<(Arc<TraceInner>, SpanRecord)> =
        BUFFER.with(|b| std::mem::take(&mut *b.borrow_mut()));
    let mut rest = drained;
    while let Some((inner, _)) = rest.first().cloned() {
        let (batch, keep): (Vec<_>, Vec<_>) =
            rest.into_iter().partition(|(t, _)| Arc::ptr_eq(t, &inner));
        inner
            .spans
            .lock()
            .expect("spans poisoned")
            .extend(batch.into_iter().map(|(_, r)| r));
        rest = keep;
    }
}

struct OpenSpan {
    inner: Arc<TraceInner>,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    args: Vec<(String, String)>,
}

/// An open span. Close it with [`SpanGuard::end`] to get the measured
/// duration back, or just let it drop. Guards must close in LIFO order
/// on a given thread (the natural order for lexically scoped guards).
pub struct SpanGuard {
    start: Instant,
    open: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attach a key/value annotation. No-op when the trace is disabled.
    pub fn arg(&mut self, key: &str, value: impl ToString) {
        if let Some(open) = &mut self.open {
            open.args.push((key.to_string(), value.to_string()));
        }
    }

    /// This span's id (to parent worker-side spans under), if recording.
    pub fn id(&self) -> Option<SpanId> {
        self.open.as_ref().map(|o| o.id)
    }

    /// Close the span and return its duration in nanoseconds. This is
    /// *the* clock read for the phase — callers derive report timing
    /// fields from the return value, so timing works identically with
    /// tracing off.
    pub fn end(mut self) -> u64 {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        self.close(dur_ns);
        dur_ns
    }

    fn close(&mut self, dur_ns: u64) {
        let Some(open) = self.open.take() else { return };
        let start_ns = self
            .start
            .checked_duration_since(open.inner.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let tid = kishu_testkit::pool::current_worker()
            .map(|w| w as u32 + 1)
            .unwrap_or(0);
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_ns,
            dur_ns,
            tid,
            args: open.args,
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop this guard's frame (LIFO discipline).
            debug_assert!(
                matches!(stack.last(), Some((_, Some(id))) if *id == record.id),
                "span guards must close in LIFO order"
            );
            stack.pop();
        });
        BUFFER.with(|b| b.borrow_mut().push((open.inner, record)));
        if STACK.with(|s| s.borrow().is_empty()) {
            flush_thread_buffer();
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.open.is_some() {
            let dur_ns = self.start.elapsed().as_nanos() as u64;
            self.close(dur_ns);
        }
    }
}

/// The trace active on the current thread (innermost stack frame), or a
/// disabled handle. Lets leaf code (`kishu-pickle`) record spans without
/// a threaded-through handle: inside a session span or a
/// [`Trace::worker_scope`] this is the session's trace, elsewhere it is
/// disabled.
pub fn current() -> Trace {
    STACK.with(|s| Trace(s.borrow().last().map(|(t, _)| t.clone())))
}

/// Open a span on the thread-current trace (see [`current`]).
pub fn current_span(name: &str) -> SpanGuard {
    current().span(name)
}

static GLOBAL: OnceLock<Trace> = OnceLock::new();

/// The process-global trace: enabled iff the `KISHU_TRACE` environment
/// variable is set non-empty (its value is the export path), unless
/// [`force_global_enabled`] ran first. Sessions clone this by default.
pub fn global() -> &'static Trace {
    GLOBAL.get_or_init(|| match std::env::var("KISHU_TRACE") {
        Ok(p) if !p.is_empty() => Trace::enabled(),
        _ => Trace::disabled(),
    })
}

/// Force the global trace on regardless of `KISHU_TRACE` (the `repro
/// trace` subcommand). Must run before the first [`global`] call to have
/// an effect; returns the global either way.
pub fn force_global_enabled() -> &'static Trace {
    GLOBAL.get_or_init(Trace::enabled)
}

/// The export path from `KISHU_TRACE`, if set non-empty.
pub fn global_path() -> Option<String> {
    match std::env::var("KISHU_TRACE") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_but_still_times() {
        let t = Trace::disabled();
        let mut sp = t.span("work");
        sp.arg("k", "v");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let dur = sp.end();
        assert!(dur >= 1_000_000, "end() must measure even when disabled");
        assert!(t.spans().is_empty());
        t.counter("c", 1);
        t.observe("h", 9);
        assert!(t.metrics().is_empty());
    }

    #[test]
    fn spans_nest_by_thread_stack() {
        let t = Trace::enabled();
        {
            let outer = t.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let mut inner = t.span("inner");
                inner.arg("bytes", 42);
                assert_eq!(t.current_span_id(), inner.id());
                let sp = inner.end();
                let _ = sp;
            }
            assert_eq!(t.current_span_id(), Some(outer_id));
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.args, vec![("bytes".to_string(), "42".to_string())]);
        assert_eq!(inner.tid, 0);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn worker_scope_parents_and_attributes_pool_spans() {
        let t = Trace::enabled();
        let phase = t.span("phase");
        let phase_id = phase.id();
        let trace = t.clone();
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                let t = trace.clone();
                move || {
                    t.worker_scope(phase_id, || {
                        let mut sp = t.span("job");
                        sp.arg("i", i);
                        sp.end()
                    })
                }
            })
            .collect();
        let durs = kishu_testkit::pool::run(4, jobs);
        assert_eq!(durs.len(), 8);
        phase.end();
        let spans = t.spans();
        let jobs: Vec<_> = spans.iter().filter(|s| s.name == "job").collect();
        assert_eq!(jobs.len(), 8, "all worker spans drained: {spans:?}");
        for j in &jobs {
            assert_eq!(j.parent, phase_id, "worker span parents under phase");
            assert!((1..=4).contains(&j.tid), "tid is worker+1: {}", j.tid);
        }
        // And the inline path attributes to the session thread.
        let t2 = Trace::enabled();
        let jobs: Vec<_> = (0..2)
            .map(|_| {
                let t = t2.clone();
                move || t.worker_scope(None, || t.span("inline").end())
            })
            .collect();
        kishu_testkit::pool::run(1, jobs);
        assert!(t2.spans().iter().all(|s| s.tid == 0));
    }

    #[test]
    fn thread_current_trace_reaches_leaf_code() {
        assert!(!current().is_enabled(), "no scope: disabled");
        let t = Trace::enabled();
        let outer = t.span("outer");
        {
            // What kishu-pickle does: no handle, just the thread context.
            let sp = current_span("pickle.dumps");
            assert!(sp.id().is_some());
        }
        outer.end();
        let spans = t.spans();
        let leaf = spans.iter().find(|s| s.name == "pickle.dumps").unwrap();
        assert_eq!(leaf.parent, Some(spans.iter().find(|s| s.name == "outer").unwrap().id));
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let t = Trace::enabled();
        t.counter("store.retry", 2);
        t.counter("store.retry", 3);
        t.observe("blob.bytes", 4096);
        t.observe("blob.bytes", 5000);
        let m = t.metrics();
        assert_eq!(m.counter_value("store.retry"), Some(5));
        let h = m.histogram("blob.bytes").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9096);
        assert_eq!(h.min, 4096);
        assert_eq!(h.max, 5000);
    }
}
